#!/usr/bin/env python3
"""Regenerate the whole paper: every table and figure, ASCII + CSV.

Runs the longitudinal study at a configurable scale, renders each figure
in the terminal (trend charts, heatmaps, stacked protocol bars, RTT CDF
tables) and exports the underlying data series as CSVs — the reproduction
counterpart of the paper's published data tables (footnote 6).

Run:  python examples/five_year_report.py [--scale small|medium] [--out DIR]
"""

import argparse
import time
from pathlib import Path

from repro.core.config import StudyConfig, small_study
from repro.core.study import LongitudinalStudy
from repro.figures import (
    fig02_ccdf,
    fig03_volume_trend,
    fig04_hourly_ratio,
    fig05_services,
    fig06_video_p2p,
    fig07_social,
    fig08_protocols,
    fig09_autoplay,
    fig10_rtt,
    fig11_infrastructure,
    table1,
)
from repro.reporting import ascii as render
from repro.reporting.export import (
    write_daily_series,
    write_distribution,
    write_monthly_series,
)
from repro.services import catalog
from repro.synthesis.population import Technology
from repro.synthesis.world import WorldConfig
from repro.tstat.flow import WebProtocol


def medium_study() -> StudyConfig:
    return StudyConfig(
        world=WorldConfig(seed=42, adsl_count=500, ftth_count=250),
        day_stride=4,
        flow_days_per_month=1,
        rtt_days_per_comparison_month=3,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("small", "medium"), default="small")
    parser.add_argument("--out", default="report_output")
    args = parser.parse_args()

    config = small_study() if args.scale == "small" else medium_study()
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)

    study = LongitudinalStudy(config)
    print(f"running the study at {args.scale} scale "
          f"({config.world.adsl_count} ADSL + {config.world.ftth_count} FTTH)...")
    started = time.time()
    data = study.run()
    print(f"done in {time.time() - started:.0f}s\n")

    # Table 1 ----------------------------------------------------------------
    print("\n".join(table1.report(table1.compute(study.rules))))

    # Figure 2 ----------------------------------------------------------------
    fig2 = fig02_ccdf.compute(data)
    print("\n" + "\n".join(fig02_ccdf.report(fig2)))
    write_distribution(
        out_dir / "fig02_ccdf.csv",
        {
            f"{year}-{technology.value}-{direction}": fig2.ccdf_series(
                year, technology, direction
            )
            for (year, technology, direction) in fig02_ccdf.CURVE_KEYS
        },
        x_label="bytes",
        y_label="ccdf",
    )

    # Figure 3 ----------------------------------------------------------------
    fig3 = fig03_volume_trend.compute(data)
    print("\n" + "\n".join(fig03_volume_trend.report(fig3)))
    adsl_down = fig3.get(Technology.ADSL, "down")
    print(render.line_chart(
        [value / 1e6 if value is not None else None for value in adsl_down.values],
        title="ADSL mean download, MB/day over 54 months (gaps = probe outages)",
        y_label="MB",
    ))
    write_monthly_series(
        out_dir / "fig03_volumes.csv",
        {
            f"{technology.value}-{direction}": fig3.get(technology, direction)
            for technology in Technology
            for direction in ("down", "up")
        },
    )

    # Figure 4 ----------------------------------------------------------------
    fig4 = fig04_hourly_ratio.compute(data)
    print("\n" + "\n".join(fig04_hourly_ratio.report(fig4)))

    # Figure 5 ----------------------------------------------------------------
    fig5 = fig05_services.compute(data)
    print("\n" + "\n".join(fig05_services.report(fig5)))
    print(render.heatmap(
        {
            service: fig5.popularity[service].values
            for service in fig5.services
        },
        title="Fig 5a: % of active ADSL subscribers per service (54 months)",
    ))
    write_monthly_series(out_dir / "fig05_popularity.csv", fig5.popularity)
    write_monthly_series(out_dir / "fig05_byteshare.csv", fig5.byte_share)

    # Figures 6 and 7 ----------------------------------------------------------
    fig6 = fig06_video_p2p.compute(data)
    print("\n" + "\n".join(fig06_video_p2p.report(fig6)))
    fig7 = fig07_social.compute(data)
    print("\n" + "\n".join(fig07_social.report(fig7)))
    for figure, name in ((fig6, "fig06"), (fig7, "fig07")):
        series = {}
        for service, panel in figure.panels.items():
            for technology in Technology:
                series[f"{service}-pop-{technology.value}"] = panel.popularity[technology]
                series[f"{service}-vol-{technology.value}"] = panel.volume[technology]
        write_monthly_series(out_dir / f"{name}_panels.csv", series)

    # Figure 8 ----------------------------------------------------------------
    fig8 = fig08_protocols.compute(data)
    print("\n" + "\n".join(fig08_protocols.report(fig8)))
    semester_bars = []
    for entry in fig8.shares:
        year, month = entry.period
        if month in (1, 7) and entry.shares:
            semester_bars.append(
                (f"{year}-{month:02d}", {p.value: s for p, s in entry.shares.items()})
            )
    print(render.stacked_bars(
        semester_bars,
        order=[p.value for p in (WebProtocol.HTTP, WebProtocol.TLS, WebProtocol.SPDY,
                                 WebProtocol.HTTP2, WebProtocol.QUIC, WebProtocol.FBZERO)],
        symbols={"http": "h", "tls": "T", "spdy": "s", "http/2": "2", "quic": "Q", "fb-zero": "Z"},
        title="Fig 8: web protocol shares (one bar per semester)",
    ))

    # Figure 9 ----------------------------------------------------------------
    fig9 = fig09_autoplay.compute(data)
    print("\n" + "\n".join(fig09_autoplay.report(fig9)))
    write_daily_series(out_dir / "fig09_facebook_2014.csv", fig9.daily, "bytes_per_user")

    # Figure 10 ----------------------------------------------------------------
    fig10 = fig10_rtt.compute(data)
    print("\n" + "\n".join(fig10_rtt.report(fig10)))
    curves = {}
    for service in (catalog.FACEBOOK, catalog.INSTAGRAM):
        for year in (2014, 2017):
            if fig10.curve(service, year):
                curves[f"{service}-{year}"] = fig10.cdf_series(service, year)
    print(render.cdf_plot(curves, title="Fig 10a: min-RTT CDFs (x in ms)"))
    write_distribution(out_dir / "fig10_rtt.csv", curves, x_label="rtt_ms", y_label="cdf")

    # Figure 11 ----------------------------------------------------------------
    fig11 = fig11_infrastructure.compute(data)
    print("\n" + "\n".join(fig11_infrastructure.report(fig11)))
    for service, panel in fig11.panels.items():
        print()
        print(render.ip_raster(
            panel.raster, max_rows=18,
            title=f"Fig 11 top: {service} server addresses over time",
        ))

    # Bonus: the "Internet of few giants" in one number ---------------------
    from repro.analytics.concentration import (
        giant_share_from_stats,
        hhi_from_stats,
        summarize,
    )

    giants = giant_share_from_stats(data.service_stats, data.months)
    hhi = hhi_from_stats(data.service_stats, data.months)
    summary = summarize(giants, hhi)
    if summary is not None:
        print(
            f"\nThe Internet of few giants (Section 6.2): the big players' share "
            f"of traffic grew from {summary.giant_share_start:.0%} to "
            f"{summary.giant_share_end:.0%} over the span "
            f"(HHI {summary.hhi_start:.3f} -> {summary.hhi_end:.3f})."
        )

    print(f"\nCSV exports written to {out_dir}/")


if __name__ == "__main__":
    main()
