#!/usr/bin/env python3
"""Calibration sweep: do the paper's shapes survive seed changes?

A reproduction whose figures only match the paper at one lucky seed would
be curve-fitting, not modelling.  This developer tool re-runs the shape
checks of every aggregate-tier figure across several seeds and reports
the pass rate per expectation — the same discipline the benchmarks apply
(`require_mostly_ok`), but across the randomness dimension.

Run:  python examples/calibration_sweep.py [--seeds 5] [--subs 250]
(budget roughly half a minute per seed at the default size)
"""

import argparse
import collections

from repro.core.config import StudyConfig
from repro.core.study import LongitudinalStudy
from repro.figures import (
    fig02_ccdf,
    fig03_volume_trend,
    fig05_services,
    fig06_video_p2p,
    fig07_social,
    fig08_protocols,
    fig09_autoplay,
)
from repro.synthesis.world import WorldConfig

MODULES = (
    fig02_ccdf,
    fig03_volume_trend,
    fig05_services,
    fig06_video_p2p,
    fig07_social,
    fig08_protocols,
    fig09_autoplay,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=4)
    parser.add_argument("--subs", type=int, default=250)
    args = parser.parse_args()

    results = collections.defaultdict(lambda: [0, 0])  # name -> [ok, total]
    for seed in range(1, args.seeds + 1):
        config = StudyConfig(
            world=WorldConfig(
                seed=seed * 101,
                adsl_count=args.subs,
                ftth_count=args.subs // 2,
            ),
            day_stride=5,
            flow_days_per_month=0,  # aggregate-tier figures only
            rtt_days_per_comparison_month=0,
        )
        print(f"seed {seed * 101}...")
        data = LongitudinalStudy(config).run()
        for module in MODULES:
            for line in module.report(module.compute(data)):
                if not line.startswith("["):
                    continue
                name = line.split("] ", 1)[1].split(":")[0]
                results[name][1] += 1
                if line.startswith("[OK "):
                    results[name][0] += 1

    print(f"\n{'expectation':<58}{'pass rate':>10}")
    print("-" * 68)
    flaky = 0
    for name, (ok, total) in sorted(results.items(), key=lambda kv: kv[1][0] / kv[1][1]):
        rate = ok / total
        marker = "  <-- watch" if rate < 1.0 else ""
        if rate < 1.0:
            flaky += 1
        print(f"{name:<58}{ok}/{total:>5}{marker}")
    print(f"\n{len(results)} expectations, {flaky} below 100% across seeds")


if __name__ == "__main__":
    main()
