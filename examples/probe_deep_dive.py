#!/usr/bin/env python3
"""Probe deep dive: a busy minute on the aggregation link.

Synthesizes a realistic mixed-protocol minute for a small neighbourhood of
subscribers (DNS lookups, HTTP, TLS with ALPN, gQUIC, FB-Zero, P2P and
opaque app traffic), streams it through the probe into an on-disk flow
log, reads the log back, and prints what an operator would look at: the
DPI protocol breakdown, the name-source mix (how many flows only
DN-Hunter could name), per-service RTT distances, and probe health
counters.

Run:  python examples/probe_deep_dive.py
"""

import collections
import tempfile
from pathlib import Path

import numpy as np

from repro.analytics.rtt import summarize_services
from repro.nettypes.ip import ip_to_int
from repro.services import catalog
from repro.synthesis.packetgen import FlowSpec, PacketSynthesizer
from repro.tstat.flow import WebProtocol
from repro.tstat.logs import load_flow_log
from repro.tstat.probe import Probe, ProbeConfig

#: (protocol, domain, server, port, rtt_ms, weight) — a 2017-ish mix.
TRAFFIC_MIX = [
    (WebProtocol.QUIC, "r{n}---sn-ab5l6nzr.googlevideo.com", "151.99.0.0", 443, 0.5, 22),
    (WebProtocol.FBZERO, "scontent-mxp1-{n}.fbcdn.net", "31.13.64.0", 443, 3.0, 12),
    (WebProtocol.HTTP2, "www.instagram.com", "31.13.80.0", 443, 3.0, 8),
    (WebProtocol.TLS, "www.netflix.com", "23.246.0.0", 443, 3.5, 6),
    (WebProtocol.TLS, "www.google.com", "74.125.0.0", 443, 3.2, 10),
    (WebProtocol.HTTP, "site-{n}.example-web.com", "104.16.0.0", 80, 30.0, 18),
    (WebProtocol.OTHER, "e{n}.whatsapp.net", "158.85.224.0", 5222, 104.0, 10),
    (WebProtocol.P2P, None, "8.26.0.0", 6881, 60.0, 6),
]


def build_specs(subscribers: int = 12, flows: int = 120, seed: int = 5):
    rng = np.random.default_rng(seed)
    weights = np.array([entry[5] for entry in TRAFFIC_MIX], dtype=float)
    weights /= weights.sum()
    specs = []
    for index in range(flows):
        protocol, domain, base_ip, port, rtt, _ = TRAFFIC_MIX[
            int(rng.choice(len(TRAFFIC_MIX), p=weights))
        ]
        if domain and "{n}" in domain:
            domain = domain.replace("{n}", str(int(rng.integers(1, 9))))
        client = ip_to_int("10.1.0.0") + 10 + int(rng.integers(0, subscribers))
        server = ip_to_int(base_ip) + int(rng.integers(1, 200))
        specs.append(
            FlowSpec(
                client_ip=client,
                server_ip=server,
                client_port=30000 + index,
                server_port=port,
                protocol=protocol,
                domain=domain,
                rtt_ms=rtt * float(rng.lognormal(0.0, 0.1)),
                bytes_down=int(rng.lognormal(9.5, 1.0)),
                bytes_up=int(rng.lognormal(7.0, 0.8)),
                start_ts=float(rng.uniform(0.0, 60.0)),
                with_dns=(protocol is WebProtocol.OTHER),
                teardown="rst" if rng.random() < 0.1 else "fin",
            )
        )
    return specs


def main() -> None:
    specs = build_specs()
    packets = PacketSynthesizer(seed=6).synthesize(specs)
    probe = Probe(ProbeConfig.for_pop("pop1", ["10.1.0.0/16"]))

    with tempfile.TemporaryDirectory() as workdir:
        log_path = Path(workdir) / "2017-06-14.pop1.tsv.gz"
        written = probe.run_to_log(packets, log_path)
        records = load_flow_log(log_path)

    print(f"captured {len(packets)} packets -> {written} flow records "
          f"({log_path.name}, read back {len(records)})\n")

    print("protocol breakdown (by bytes, as the probe labels them):")
    by_protocol = collections.Counter()
    for record in records:
        by_protocol[record.protocol.value] += record.total_bytes
    total = sum(by_protocol.values())
    for protocol, volume in by_protocol.most_common():
        print(f"  {protocol:<8} {100 * volume / total:5.1f}%")

    print("\nname sources (SNI / Host / QUIC / Zero / DN-Hunter / unnamed):")
    by_source = collections.Counter(record.name_source.value for record in records)
    for source, count in by_source.most_common():
        print(f"  {source:<6} {count}")

    print("\nper-service probe->server distance (min-RTT of TCP flows):")
    rules = catalog.default_ruleset()
    summaries = summarize_services(
        records, rules, [catalog.FACEBOOK, catalog.INSTAGRAM, catalog.NETFLIX,
                         catalog.GOOGLE, catalog.WHATSAPP]
    )
    print(f"  {'service':<12}{'flows':>6}{'median':>9}{'p90':>9}")
    for service, stats in sorted(summaries.items()):
        print(
            f"  {service:<12}{stats.flows:>6}{stats.median_ms:>8.1f}m{stats.p90_ms:>8.1f}m"
        )

    print("\nprobe health:")
    print(f"  decoder: {probe.decode_stats.total} frames, "
          f"{probe.decode_stats.malformed} malformed, "
          f"{probe.decode_stats.non_ipv4} non-IPv4")
    meter = probe.meter_stats
    print(f"  meter:   {meter.flows_created} flows "
          f"(fin={meter.flows_expired_fin} rst={meter.flows_expired_rst} "
          f"idle={meter.flows_expired_idle} flush={meter.flows_expired_flush})")
    print(f"  dn-hunter: {probe.dn_hunter.responses_seen} DNS responses, "
          f"{probe.dn_hunter.hits} hits / {probe.dn_hunter.misses} misses")
    print(f"  software:  {probe.capabilities.version}")


if __name__ == "__main__":
    main()
