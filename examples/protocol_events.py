#!/usr/bin/env python3
"""Protocol surprises: detecting the Fig. 8 events from the measurements.

The paper's Section 5 narrates six events (A-F) that reshaped the web
protocol mix — migrations, an experimental protocol revealed by a probe
upgrade, a kill switch, and an overnight proprietary deployment.  This
example takes the *measured* monthly protocol shares and rediscovers the
events with the jump detector, then zooms on each with month-by-month
shares, and finally runs the probe-upgrade ablation: what Fig. 8 would
look like if the probes had never learned to report SPDY and FB-Zero.

Run:  python examples/protocol_events.py
"""

import datetime

from repro.analytics.protocols import detect_jumps, monthly_protocol_shares
from repro.core.config import StudyConfig
from repro.core.study import LongitudinalStudy
from repro.figures import fig08_protocols
from repro.synthesis.world import WorldConfig
from repro.tstat.flow import WebProtocol

EVENTS = [
    ("A", "2014-01", "YouTube starts serving video over HTTPS"),
    ("B", "2014-10", "Google deploys QUIC in Chrome"),
    ("C", "2015-06", "probe upgrade starts reporting SPDY explicitly"),
    ("D", "2015-12", "Google disables QUIC over a security bug"),
    ("E", "2016-02", "SPDY migrates to HTTP/2"),
    ("F", "2016-11", "Facebook deploys FB-Zero overnight"),
]


def main() -> None:
    config = StudyConfig(
        world=WorldConfig(seed=11, adsl_count=250, ftth_count=120),
        day_stride=4,
        flow_days_per_month=0,  # protocol shares need no flow tier
        rtt_days_per_comparison_month=0,
    )
    study = LongitudinalStudy(config)
    print("measuring 54 months of protocol shares...")
    data = study.run()
    shares = monthly_protocol_shares(data.protocol_rows, data.months)

    print("\nthe paper's events:")
    for label, month, description in EVENTS:
        print(f"  {label}) {month}: {description}")

    print("\nsudden share moves detected in the measurements (>= 3 points):")
    for protocol in (WebProtocol.QUIC, WebProtocol.SPDY, WebProtocol.FBZERO,
                     WebProtocol.HTTP2):
        jumps = detect_jumps(shares, protocol, threshold=0.03)
        for (year, month), delta in jumps:
            direction = "+" if delta > 0 else ""
            print(f"  {year}-{month:02d}  {protocol.value:<8} {direction}{delta:+.1%}")

    print("\nzoom: QUIC around the December 2015 kill switch (event D):")
    for entry in shares:
        year, month = entry.period
        if datetime.date(2015, 9, 1) <= datetime.date(year, month, 1) <= datetime.date(2016, 4, 1):
            quic = entry.share(WebProtocol.QUIC)
            bar = "#" * int(quic * 200)
            print(f"  {year}-{month:02d}  {quic:6.1%} {bar}")

    print("\nzoom: FB-Zero around November 2016 (event F):")
    for entry in shares:
        year, month = entry.period
        if datetime.date(2016, 8, 1) <= datetime.date(year, month, 1) <= datetime.date(2017, 3, 1):
            zero = entry.share(WebProtocol.FBZERO)
            bar = "#" * int(zero * 200)
            print(f"  {year}-{month:02d}  {zero:6.1%} {bar}")

    fig = fig08_protocols.compute(data)
    print("\nfull Figure 8 shape check:")
    for line in fig08_protocols.report(fig):
        print(line)

    print("\nablation — a probe that never learned the new protocols would")
    print("have reported SPDY and FB-Zero as generic TLS forever; see the")
    print("reported-vs-true split in repro.tstat.versions (event C is a")
    print("measurement artifact, not a deployment).")


if __name__ == "__main__":
    main()
