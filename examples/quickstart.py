#!/usr/bin/env python3
"""Quickstart: watch ten seconds of traffic, then five years of it.

Part 1 deploys the passive probe on a handful of wire-format packets and
prints the flow records it exports — the paper's Section 2 pipeline in
miniature.  Part 2 runs a small LongitudinalStudy (the full five-year
methodology at toy scale) and prints the Figure 3 trend report.

Run:  python examples/quickstart.py
"""

from repro import LongitudinalStudy, small_study
from repro.figures import fig03_volume_trend
from repro.nettypes.ip import int_to_ip, ip_to_int
from repro.synthesis.packetgen import FlowSpec, PacketSynthesizer
from repro.tstat.flow import WebProtocol
from repro.tstat.probe import Probe, ProbeConfig


def part_one_probe() -> None:
    print("=" * 72)
    print("Part 1 — the probe: packets in, flow records out")
    print("=" * 72)
    subscriber = ip_to_int("10.1.0.7")
    specs = [
        FlowSpec(
            subscriber, ip_to_int("151.99.0.12"), 40001, 443,
            WebProtocol.QUIC, "r3---sn-ab5l6nzr.googlevideo.com",
            rtt_ms=0.5, bytes_down=48_000, bytes_up=2_000,
        ),
        FlowSpec(
            subscriber, ip_to_int("31.13.64.21"), 40002, 443,
            WebProtocol.FBZERO, "scontent-mxp1-1.fbcdn.net",
            rtt_ms=3.0, bytes_down=25_000, bytes_up=3_000, start_ts=1.0,
        ),
        FlowSpec(
            subscriber, ip_to_int("158.85.224.9"), 40003, 5222,
            WebProtocol.OTHER, "e4.whatsapp.net",
            rtt_ms=104.0, bytes_down=8_000, bytes_up=6_000,
            start_ts=2.0, with_dns=True,  # named via DN-Hunter
        ),
        FlowSpec(
            subscriber, ip_to_int("104.16.0.50"), 40004, 80,
            WebProtocol.HTTP, "news.example-site.org",
            rtt_ms=28.0, bytes_down=30_000, bytes_up=1_500, start_ts=3.0,
        ),
    ]
    packets = PacketSynthesizer(seed=1).synthesize(specs)
    probe = Probe(ProbeConfig.for_pop("pop1", ["10.1.0.0/16"]))
    records = probe.run(packets)

    print(f"\n{len(packets)} packets captured -> {len(records)} flow records\n")
    header = f"{'server':<18}{'port':>5}  {'proto':<8}{'name-src':<9}{'rtt-min':>8}  server name"
    print(header)
    print("-" * len(header))
    for record in sorted(records, key=lambda r: r.ts_start):
        rtt = f"{record.rtt.min_ms:.1f}ms" if record.rtt.samples else "-"
        print(
            f"{int_to_ip(record.server_ip):<18}{record.server_port:>5}  "
            f"{record.protocol.value:<8}{record.name_source.value:<9}{rtt:>8}  "
            f"{record.server_name or '-'}"
        )
    print(f"\nDN-Hunter cache hits: {probe.dn_hunter.hits}")
    print(f"anonymized subscribers seen: {len(probe.anonymizer)}")


def part_two_study() -> None:
    print()
    print("=" * 72)
    print("Part 2 — five years at the edge, toy scale")
    print("=" * 72)
    study = LongitudinalStudy(small_study())
    print("\nrunning the 54-month study (about half a minute)...")
    data = study.run()
    fig = fig03_volume_trend.compute(data)
    print()
    for line in fig03_volume_trend.report(fig):
        print(line)


if __name__ == "__main__":
    part_one_probe()
    part_two_study()
