#!/usr/bin/env python3
"""Capacity planning: turning the Fig. 3 trend into a forecast.

Section 3 motivates the per-subscriber consumption analysis as
"instrumental to understand costs of ISPs in terms of capacity and
forecasting trends" (and Section 7 nods at Cisco's VNI forecasts).  This
example does the ISP-planner exercise on the measured series: fit the
2013-2017 per-subscriber growth, extrapolate 12/24 months past the end of
the study, and translate the result into aggregation-link headroom for a
PoP of a given size.

Run:  python examples/capacity_forecast.py
"""

import numpy as np

from repro.core.config import small_study
from repro.core.study import LongitudinalStudy
from repro.figures import fig03_volume_trend
from repro.synthesis.population import Technology

MB = 1e6
GB = 1e9


def fit_and_forecast(series, horizon_months=24):
    """Least-squares linear fit over defined months; returns forecasts."""
    defined = series.defined()
    xs = np.array([index for index, (_, value) in enumerate(zip(series.months, series.values)) if value is not None], dtype=float)
    ys = np.array([value for value in series.values if value is not None], dtype=float)
    slope, intercept = np.polyfit(xs, ys, 1)
    last_index = len(series.months) - 1
    fitted_end = intercept + slope * last_index
    forecasts = {
        months_ahead: intercept + slope * (last_index + months_ahead)
        for months_ahead in (12, horizon_months)
    }
    return slope, fitted_end, forecasts


def busy_hour_gbps(mean_daily_bytes: float, subscribers: int) -> float:
    """Aggregate busy-hour demand, assuming the classic ~10% busy-hour share."""
    busy_hour_bytes = mean_daily_bytes * 0.10 * subscribers
    return busy_hour_bytes * 8 / 3600 / 1e9


def main() -> None:
    study = LongitudinalStudy(small_study())
    print("measuring the 54-month consumption series...")
    data = study.run()
    fig3 = fig03_volume_trend.compute(data)

    print(f"\n{'technology':<12}{'end (fitted)':>14}{'+12 months':>12}{'+24 months':>12}"
          f"{'growth/month':>14}")
    results = {}
    for technology in Technology:
        series = fig3.get(technology, "down")
        slope, fitted_end, forecasts = fit_and_forecast(series)
        results[technology] = (fitted_end, forecasts)
        print(
            f"{technology.value:<12}{fitted_end / MB:>12.0f}MB{forecasts[12] / MB:>10.0f}MB"
            f"{forecasts[24] / MB:>10.0f}MB{slope / MB:>12.1f}MB"
        )

    # Translate to PoP capacity: the paper's deployment sizes.
    print("\nbusy-hour demand for the paper's PoP population "
          "(10000 ADSL + 5000 FTTH):")
    for label, months in (("end of study", 0), ("+24 months", 24)):
        adsl = results[Technology.ADSL][1].get(months, results[Technology.ADSL][0])
        ftth = results[Technology.FTTH][1].get(months, results[Technology.FTTH][0])
        if months == 0:
            adsl = results[Technology.ADSL][0]
            ftth = results[Technology.FTTH][0]
        demand = busy_hour_gbps(adsl, 10_000) + busy_hour_gbps(ftth, 5_000)
        print(f"  {label:<14} ~{demand:5.1f} Gb/s across the aggregation links")

    print("\n(the probes of the paper captured multiple 10 Gb/s links per "
          "PoP — consistent with this envelope)")


if __name__ == "__main__":
    main()
