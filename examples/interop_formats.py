#!/usr/bin/env python3
"""Interop: pcap in, flow logs and IPFIX out — and the storage bill.

The paper's deployment keeps 31.9 TB of compressed flow logs for 247
billion flows (Section 2.2) precisely because storing packets is
impossible at ISP scale.  This example makes that trade-off concrete on
synthetic traffic: it records a capture to **pcap**, replays it through
the probe, exports the resulting flow records as the probe's native
**gzip flow log** and as **IPFIX**, verifies the IPFIX round trip, and
compares bytes-on-disk per flow across the three formats.

Run:  python examples/interop_formats.py
"""

import gzip
import tempfile
from pathlib import Path

import numpy as np

from repro.nettypes.ip import ip_to_int
from repro.packets.pcap import read_pcap, write_pcap
from repro.synthesis.packetgen import FlowSpec, PacketSynthesizer
from repro.tstat.flow import WebProtocol
from repro.tstat.ipfix import export_ipfix, parse_ipfix
from repro.tstat.logs import load_flow_log
from repro.tstat.probe import Probe, ProbeConfig


def build_specs(flows=150, seed=9):
    rng = np.random.default_rng(seed)
    protocols = [
        (WebProtocol.TLS, "shop-{n}.example-store.com", 443),
        (WebProtocol.HTTP, "news-{n}.example-press.org", 80),
        (WebProtocol.QUIC, "r{n}---sn.googlevideo.com", 443),
        (WebProtocol.FBZERO, "scontent-mxp1-{n}.fbcdn.net", 443),
    ]
    specs = []
    for index in range(flows):
        protocol, template, port = protocols[index % len(protocols)]
        domain = template.replace("{n}", str(int(rng.integers(1, 9))))
        specs.append(
            FlowSpec(
                client_ip=ip_to_int("10.1.0.0") + 5 + int(rng.integers(0, 20)),
                server_ip=ip_to_int("93.184.0.0") + int(rng.integers(1, 4000)),
                client_port=20000 + index,
                server_port=port,
                protocol=protocol,
                domain=domain,
                rtt_ms=float(rng.uniform(0.5, 40)),
                bytes_down=int(rng.lognormal(9.8, 0.8)),
                bytes_up=int(rng.lognormal(7.2, 0.6)),
                start_ts=float(rng.uniform(0, 120)),
            )
        )
    return specs


def main() -> None:
    specs = build_specs()
    packets = PacketSynthesizer(seed=10).synthesize(specs)

    with tempfile.TemporaryDirectory() as workdir:
        work = Path(workdir)

        # 1. Record the capture to pcap (what a tap would give us).
        pcap_path = work / "capture.pcap"
        write_pcap(pcap_path, packets)
        print(f"pcap:      {len(packets):>6} packets, "
              f"{pcap_path.stat().st_size:>10,} bytes")

        # 2. Replay through the probe, straight to a gzip flow log.
        probe = Probe(ProbeConfig.for_pop("pop1", ["10.1.0.0/16"]))
        log_path = work / "flows.tsv.gz"
        written = probe.run_to_log(read_pcap(pcap_path), log_path)
        records = load_flow_log(log_path)
        print(f"flow log:  {written:>6} records, "
              f"{log_path.stat().st_size:>10,} bytes (gzip TSV)")

        # 3. Export the same records as IPFIX and verify the round trip.
        message = export_ipfix(records, export_time=1_497_000_000, sequence=1)
        ipfix_path = work / "flows.ipfix"
        ipfix_path.write_bytes(message)
        gz_ipfix = gzip.compress(message)
        decoded = parse_ipfix(message)
        assert len(decoded) == len(records)
        assert decoded[0].server_name == records[0].server_name
        print(f"IPFIX:     {len(decoded):>6} records, "
              f"{len(message):>10,} bytes ({len(gz_ipfix):,} gzipped)")

        # 3b. And as legacy NetFlow v5 — note what the format *cannot* say.
        from repro.nettypes.ip import Prefix
        from repro.tstat.netflow import (
            export_netflow_v5,
            merge_biflows,
            parse_netflow_v5,
        )

        datagrams = export_netflow_v5(records)
        v5_bytes = sum(len(d) for d in datagrams)
        rows = [row for d in datagrams for row in parse_netflow_v5(d)]
        # The probe anonymizes subscribers to dense small integers, so the
        # collector's "subscriber side" is the low address range.
        rebuilt = merge_biflows(rows, [Prefix.parse("0.0.0.0/8")])
        named = sum(1 for r in rebuilt if r.server_name)
        print(f"NetFlow v5:{len(rebuilt):>6} biflows from {len(rows)} halves, "
              f"{v5_bytes:>10,} bytes — but {named} of them carry a server "
              f"name (v5 cannot say who the server was)")

        # 4. The punchline: bytes per flow in each representation.
        pcap_per_flow = pcap_path.stat().st_size / written
        log_per_flow = log_path.stat().st_size / written
        ipfix_per_flow = len(gz_ipfix) / written
        print("\nbytes on disk per flow:")
        print(f"  raw packets (pcap)    {pcap_per_flow:10.0f}")
        print(f"  probe flow log (gzip) {log_per_flow:10.0f}")
        print(f"  IPFIX (gzip)          {ipfix_per_flow:10.0f}")
        print(f"\nflow records compress the capture "
              f"x{pcap_per_flow / log_per_flow:.0f} — the difference between "
              f"an impossible archive and the paper's 31.9 TB for five years.")


if __name__ == "__main__":
    main()
