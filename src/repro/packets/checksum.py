"""The Internet checksum (RFC 1071) shared by the IPv4/TCP/UDP codecs."""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """One's-complement sum of 16-bit words, as used by IP, TCP and UDP.

    Odd-length input is padded with a zero byte, per RFC 1071.
    """
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for index in range(0, len(data), 2):
        total += (data[index] << 8) | data[index + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def pseudo_header(src: int, dst: int, protocol: int, length: int) -> bytes:
    """IPv4 pseudo-header used in TCP/UDP checksum computation."""
    return (
        src.to_bytes(4, "big")
        + dst.to_bytes(4, "big")
        + b"\x00"
        + protocol.to_bytes(1, "big")
        + length.to_bytes(2, "big")
    )
