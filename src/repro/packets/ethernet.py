"""Ethernet II frame codec.

The probes receive mirrored traffic from router span ports / optical
splitters as raw Ethernet frames; this is the outermost layer the capture
path decodes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806
ETHERTYPE_IPV6 = 0x86DD

HEADER_LEN = 14


class FrameError(ValueError):
    """Raised for truncated or malformed Ethernet frames."""


@dataclass(frozen=True)
class EthernetFrame:
    """A decoded Ethernet II frame."""

    dst_mac: bytes
    src_mac: bytes
    ethertype: int
    payload: bytes

    def __post_init__(self) -> None:
        if len(self.dst_mac) != 6 or len(self.src_mac) != 6:
            raise FrameError("MAC addresses must be 6 bytes")
        if not 0 <= self.ethertype <= 0xFFFF:
            raise FrameError(f"bad ethertype {self.ethertype:#x}")

    def encode(self) -> bytes:
        """Serialize to wire format."""
        return (
            self.dst_mac
            + self.src_mac
            + struct.pack("!H", self.ethertype)
            + self.payload
        )

    @classmethod
    def decode(cls, data: bytes) -> "EthernetFrame":
        """Parse a frame from wire format."""
        if len(data) < HEADER_LEN:
            raise FrameError(f"frame too short: {len(data)} bytes")
        (ethertype,) = struct.unpack_from("!H", data, 12)
        return cls(
            dst_mac=data[0:6],
            src_mac=data[6:12],
            ethertype=ethertype,
            payload=data[HEADER_LEN:],
        )


def mac_to_text(mac: bytes) -> str:
    """Format a MAC address as colon-separated hex."""
    return ":".join(f"{byte:02x}" for byte in mac)
