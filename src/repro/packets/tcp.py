"""TCP segment codec.

The probe's flow meter and RTT estimator consume these decoded segments:
sequence/acknowledgment numbers feed the SEQ/ACK matching that produces the
per-flow min/avg/max RTT the paper analyses in Section 6.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.packets.checksum import internet_checksum, pseudo_header
from repro.packets.ipv4 import PROTO_TCP, PacketError

FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_PSH = 0x08
FLAG_ACK = 0x10
FLAG_URG = 0x20

MIN_HEADER_LEN = 20
SEQ_MODULUS = 1 << 32


@dataclass(frozen=True)
class TcpSegment:
    """A decoded TCP segment."""

    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: int
    payload: bytes = b""
    window: int = 65535
    urgent: int = 0
    options: bytes = field(default=b"")

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 0xFFFF:
                raise PacketError(f"bad port {port}")
        if not 0 <= self.seq < SEQ_MODULUS or not 0 <= self.ack < SEQ_MODULUS:
            raise PacketError("sequence numbers must be 32-bit")
        if len(self.options) % 4:
            raise PacketError("TCP options must be 32-bit padded")
        if len(self.options) > 40:
            raise PacketError("TCP options longer than 40 bytes")

    @property
    def header_len(self) -> int:
        return MIN_HEADER_LEN + len(self.options)

    @property
    def syn(self) -> bool:
        return bool(self.flags & FLAG_SYN)

    @property
    def fin(self) -> bool:
        return bool(self.flags & FLAG_FIN)

    @property
    def rst(self) -> bool:
        return bool(self.flags & FLAG_RST)

    @property
    def has_ack(self) -> bool:
        return bool(self.flags & FLAG_ACK)

    def sequence_space(self) -> int:
        """Bytes of sequence space consumed (payload plus SYN/FIN flags)."""
        return len(self.payload) + int(self.syn) + int(self.fin)

    def end_seq(self) -> int:
        """Sequence number just past this segment's data."""
        return (self.seq + self.sequence_space()) % SEQ_MODULUS

    def encode(self, src_ip: int, dst_ip: int) -> bytes:
        """Serialize with a correct checksum over the IPv4 pseudo-header."""
        offset_flags = ((self.header_len // 4) << 12) | self.flags
        header = struct.pack(
            "!HHIIHHHH",
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            offset_flags,
            self.window,
            0,
            self.urgent,
        ) + self.options
        segment = header + self.payload
        pseudo = pseudo_header(src_ip, dst_ip, PROTO_TCP, len(segment))
        checksum = internet_checksum(pseudo + segment)
        return segment[:16] + struct.pack("!H", checksum) + segment[18:]

    @classmethod
    def decode(cls, data: bytes) -> "TcpSegment":
        """Parse from wire format (checksum not verified; probes trust NICs)."""
        if len(data) < MIN_HEADER_LEN:
            raise PacketError(f"TCP segment too short: {len(data)} bytes")
        (
            src_port,
            dst_port,
            seq,
            ack,
            offset_flags,
            window,
            _,
            urgent,
        ) = struct.unpack_from("!HHIIHHHH", data, 0)
        header_len = (offset_flags >> 12) * 4
        if header_len < MIN_HEADER_LEN or header_len > len(data):
            raise PacketError(f"bad TCP data offset {header_len}")
        return cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=offset_flags & 0x01FF,
            payload=data[header_len:],
            window=window,
            urgent=urgent,
            options=data[MIN_HEADER_LEN:header_len],
        )


def mss_option(mss: int) -> bytes:
    """Build an MSS option block padded to 32 bits (kind 2 + NOPs)."""
    return struct.pack("!BBH", 2, 4, mss)
