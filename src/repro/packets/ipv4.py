"""IPv4 header codec with checksum verification."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.packets.checksum import internet_checksum

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

MIN_HEADER_LEN = 20


class PacketError(ValueError):
    """Raised for malformed IPv4 packets."""


@dataclass(frozen=True)
class IPv4Packet:
    """A decoded IPv4 packet (options are preserved but not interpreted)."""

    src: int
    dst: int
    protocol: int
    payload: bytes
    ttl: int = 64
    identification: int = 0
    dscp: int = 0
    dont_fragment: bool = True
    options: bytes = field(default=b"")

    def __post_init__(self) -> None:
        if len(self.options) % 4:
            raise PacketError("IPv4 options must be 32-bit padded")
        if len(self.options) > 40:
            raise PacketError("IPv4 options longer than 40 bytes")
        if not 0 <= self.protocol <= 0xFF:
            raise PacketError(f"bad protocol {self.protocol}")
        if not 0 <= self.ttl <= 0xFF:
            raise PacketError(f"bad TTL {self.ttl}")

    @property
    def header_len(self) -> int:
        return MIN_HEADER_LEN + len(self.options)

    @property
    def total_len(self) -> int:
        return self.header_len + len(self.payload)

    def encode(self) -> bytes:
        """Serialize with a correct header checksum."""
        ihl = self.header_len // 4
        version_ihl = (4 << 4) | ihl
        flags_fragment = 0x4000 if self.dont_fragment else 0
        header = struct.pack(
            "!BBHHHBBHII",
            version_ihl,
            self.dscp << 2,
            self.total_len,
            self.identification,
            flags_fragment,
            self.ttl,
            self.protocol,
            0,
            self.src,
            self.dst,
        ) + self.options
        checksum = internet_checksum(header)
        return header[:10] + struct.pack("!H", checksum) + header[12:] + self.payload

    @classmethod
    def decode(cls, data: bytes, verify_checksum: bool = True) -> "IPv4Packet":
        """Parse from wire format; raises :class:`PacketError` on corruption."""
        if len(data) < MIN_HEADER_LEN:
            raise PacketError(f"packet too short: {len(data)} bytes")
        version_ihl = data[0]
        version = version_ihl >> 4
        if version != 4:
            raise PacketError(f"not IPv4 (version={version})")
        ihl = (version_ihl & 0x0F) * 4
        if ihl < MIN_HEADER_LEN or len(data) < ihl:
            raise PacketError(f"bad IHL {ihl}")
        (
            _,
            tos,
            total_len,
            identification,
            flags_fragment,
            ttl,
            protocol,
            _,
            src,
            dst,
        ) = struct.unpack_from("!BBHHHBBHII", data, 0)
        if total_len < ihl or total_len > len(data):
            raise PacketError(f"bad total length {total_len}")
        if verify_checksum and internet_checksum(data[:ihl]) != 0:
            raise PacketError("IPv4 header checksum mismatch")
        return cls(
            src=src,
            dst=dst,
            protocol=protocol,
            payload=data[ihl:total_len],
            ttl=ttl,
            identification=identification,
            dscp=tos >> 2,
            dont_fragment=bool(flags_fragment & 0x4000),
            options=data[MIN_HEADER_LEN:ihl],
        )
