"""Vectorized batch decoding of captured frames.

The per-packet :class:`~repro.packets.capture.FrameDecoder` peels one
frame at a time through frozen-dataclass codecs — convenient, but the
probe's hot loop pays a dataclass allocation and a pure-Python checksum
per packet.  This module packs a capture slice into one contiguous byte
buffer and validates/extracts every header field with NumPy gathers, so
the steady state costs a handful of vector ops per batch instead of
thousands of object constructions.

Semantics match ``FrameDecoder.decode`` by construction: any packet
that does not fit the vectorised fast path (short frame, non-IPv4, IP
options, checksum mismatch, truncated transport, exotic protocol) is
routed through the scalar decoder for that one packet, which keeps the
exact counters and error strings of the per-packet path.  Payload bytes
are never copied up front — :meth:`PacketBatch.payload` slices them out
of the shared buffer only when the meter's DPI/DNS stages ask.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Sequence

import numpy as np

from repro.packets.capture import CapturedPacket, FrameDecoder
from repro.packets.ethernet import ETHERTYPE_IPV4
from repro.packets.ipv4 import PROTO_TCP, PROTO_UDP
from repro.packets.tcp import TcpSegment

DEFAULT_BATCH_SIZE = 8192

_IPV4_NO_OPTIONS = 0x45  # version 4, IHL 20 in one byte
_ETH_HEADER = 14
_IP_HEADER = 20


@dataclass
class PacketBatch:
    """Columnar view of one decoded capture slice (meterable packets only).

    Rows keep capture order; packets the decoder rejected are absent.
    ``payload_overrides`` carries payloads of rows that went through the
    scalar fallback (their offsets into ``buffer`` are not meaningful).
    """

    buffer: bytes
    count: int
    timestamps: np.ndarray  # float64 capture seconds
    ip_src: np.ndarray  # int64 IPv4 addresses
    ip_dst: np.ndarray
    ip_total_len: np.ndarray  # int64, meter's byte accounting
    is_tcp: np.ndarray  # bool (False means UDP)
    src_port: np.ndarray
    dst_port: np.ndarray
    seq: np.ndarray  # TCP only; zero on UDP rows
    ack: np.ndarray
    flags: np.ndarray
    payload_off: np.ndarray  # into buffer; unused when overridden
    payload_len: np.ndarray
    payload_overrides: Dict[int, bytes] = field(default_factory=dict)

    def payload(self, row: int) -> bytes:
        """Transport payload of one row, sliced lazily from the buffer."""
        override = self.payload_overrides.get(row)
        if override is not None:
            return override
        offset = int(self.payload_off[row])
        return self.buffer[offset : offset + int(self.payload_len[row])]


def _empty_batch() -> PacketBatch:
    int_col = np.zeros(0, dtype=np.int64)
    return PacketBatch(
        buffer=b"",
        count=0,
        timestamps=np.zeros(0, dtype=np.float64),
        ip_src=int_col,
        ip_dst=int_col,
        ip_total_len=int_col,
        is_tcp=np.zeros(0, dtype=bool),
        src_port=int_col,
        dst_port=int_col,
        seq=int_col,
        ack=int_col,
        flags=int_col,
        payload_off=int_col,
        payload_len=int_col,
    )


def decode_batch(
    decoder: FrameDecoder, packets: Sequence[CapturedPacket]
) -> PacketBatch:
    """Decode a slice of captured frames into a :class:`PacketBatch`.

    Updates ``decoder.stats`` exactly as per-packet :meth:`FrameDecoder.decode`
    calls over the same slice would.
    """
    count = len(packets)
    if count == 0:
        return _empty_batch()
    stats = decoder.stats
    lengths = np.fromiter(
        (len(packet.data) for packet in packets), dtype=np.int64, count=count
    )
    starts = np.zeros(count, dtype=np.int64)
    np.cumsum(lengths[:-1], out=starts[1:])
    buffer = b"".join(packet.data for packet in packets)
    raw = np.frombuffer(buffer, dtype=np.uint8)
    if raw.size == 0:
        # Every frame is empty: all rows fail "frame too short" scalar-side.
        for packet in packets:
            decoder.decode(packet)
        return _empty_batch()
    limit = raw.size - 1

    def byte_at(offset: int) -> np.ndarray:
        # Clamped gather: out-of-extent rows read garbage but are only
        # ever consumed under a mask that already excludes them.
        return raw[np.minimum(starts + offset, limit)].astype(np.int64)

    def be16_at(offset: int) -> np.ndarray:
        return (byte_at(offset) << 8) | byte_at(offset + 1)

    def be32_at(offset: int) -> np.ndarray:
        return (be16_at(offset) << 16) | be16_at(offset + 2)

    # --- vectorised fast-path validation (mirrors FrameDecoder.decode) ---
    fast = lengths >= _ETH_HEADER + _IP_HEADER
    fast &= be16_at(12) == ETHERTYPE_IPV4
    fast &= byte_at(_ETH_HEADER) == _IPV4_NO_OPTIONS
    ip_total_len = be16_at(_ETH_HEADER + 2)
    fast &= (ip_total_len >= _IP_HEADER) & (ip_total_len <= lengths - _ETH_HEADER)
    protocol = byte_at(_ETH_HEADER + 9)
    proto_tcp = protocol == PROTO_TCP
    proto_udp = protocol == PROTO_UDP
    fast &= proto_tcp | proto_udp
    if decoder.verify_ip_checksum:
        ip_start = np.minimum(starts + _ETH_HEADER, max(limit - (_IP_HEADER - 1), 0))
        header = raw[ip_start[:, None] + np.arange(_IP_HEADER)]
        words = (header[:, 0::2].astype(np.int64) << 8) | header[:, 1::2]
        total = words.sum(axis=1)
        for _ in range(3):
            total = (total & 0xFFFF) + (total >> 16)
        fast &= total == 0xFFFF

    transport_start = starts + _ETH_HEADER + _IP_HEADER
    transport_len = ip_total_len - _IP_HEADER
    offset_flags = be16_at(_ETH_HEADER + _IP_HEADER + 12)
    tcp_header_len = (offset_flags >> 12) * 4
    fast &= ~proto_tcp | (
        (transport_len >= 20) & (tcp_header_len >= 20) & (tcp_header_len <= transport_len)
    )
    udp_length = be16_at(_ETH_HEADER + _IP_HEADER + 4)
    fast &= ~proto_udp | (
        (transport_len >= 8) & (udp_length >= 8) & (udp_length <= transport_len)
    )

    # --- column extraction (garbage on non-fast rows, fixed up below) ---
    timestamps = np.fromiter(
        (packet.timestamp for packet in packets), dtype=np.float64, count=count
    )
    ip_src = be32_at(_ETH_HEADER + 12)
    ip_dst = be32_at(_ETH_HEADER + 16)
    src_port = be16_at(_ETH_HEADER + _IP_HEADER)
    dst_port = be16_at(_ETH_HEADER + _IP_HEADER + 2)
    seq = np.where(proto_tcp, be32_at(_ETH_HEADER + _IP_HEADER + 4), 0)
    ack = np.where(proto_tcp, be32_at(_ETH_HEADER + _IP_HEADER + 8), 0)
    flags = np.where(proto_tcp, offset_flags & 0x01FF, 0)
    payload_off = transport_start + np.where(proto_tcp, tcp_header_len, 8)
    payload_len = np.where(
        proto_tcp, transport_len - tcp_header_len, udp_length - 8
    )
    is_tcp = proto_tcp.copy()

    stats.total += int(fast.sum())
    kept = fast.copy()
    overrides: Dict[int, bytes] = {}
    for index in np.nonzero(~fast)[0].tolist():
        # Scalar fallback: identical counters, error strings and, for
        # valid-but-unusual packets (IP options...), identical fields.
        decoded = decoder.decode(packets[index])
        if decoded is None:
            continue
        kept[index] = True
        transport = decoded.transport
        tcp = isinstance(transport, TcpSegment)
        timestamps[index] = decoded.timestamp
        ip_src[index] = decoded.ip.src
        ip_dst[index] = decoded.ip.dst
        ip_total_len[index] = decoded.ip.total_len
        is_tcp[index] = tcp
        src_port[index] = transport.src_port
        dst_port[index] = transport.dst_port
        seq[index] = transport.seq if tcp else 0
        ack[index] = transport.ack if tcp else 0
        flags[index] = transport.flags if tcp else 0
        payload_len[index] = len(transport.payload)
        overrides[index] = transport.payload

    keep_index = np.nonzero(kept)[0]
    position = np.cumsum(kept) - 1
    return PacketBatch(
        buffer=buffer,
        count=int(keep_index.size),
        timestamps=timestamps[keep_index],
        ip_src=ip_src[keep_index],
        ip_dst=ip_dst[keep_index],
        ip_total_len=ip_total_len[keep_index],
        is_tcp=is_tcp[keep_index],
        src_port=src_port[keep_index],
        dst_port=dst_port[keep_index],
        seq=seq[keep_index],
        ack=ack[keep_index],
        flags=flags[keep_index],
        payload_off=payload_off[keep_index],
        payload_len=payload_len[keep_index],
        payload_overrides={
            int(position[index]): data for index, data in overrides.items()
        },
    )


def iter_decoded_batches(
    decoder: FrameDecoder,
    packets: Iterable[CapturedPacket],
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Iterator[PacketBatch]:
    """Chunk a packet stream and decode each chunk as one batch."""
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    chunk: List[CapturedPacket] = []
    for packet in packets:
        chunk.append(packet)
        if len(chunk) >= batch_size:
            yield decode_batch(decoder, chunk)
            chunk = []
    if chunk:
        yield decode_batch(decoder, chunk)
