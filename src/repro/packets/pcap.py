"""Classic libpcap file format (.pcap) reader and writer.

The probes' capture path is file-format agnostic in this reproduction
(iterables of :class:`~repro.packets.capture.CapturedPacket`), but real
deployments exchange pcap traces constantly — for debugging DPI rules,
replaying incidents, and validating probe upgrades against recorded
traffic.  This module implements the classic format (magic 0xa1b2c3d4,
microsecond timestamps, LINKTYPE_ETHERNET), both byte orders on read.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import IO, Iterable, Iterator, List, Union

from repro.packets.capture import CapturedPacket

MAGIC_NATIVE = 0xA1B2C3D4
MAGIC_SWAPPED = 0xD4C3B2A1
VERSION_MAJOR = 2
VERSION_MINOR = 4
LINKTYPE_ETHERNET = 1

_GLOBAL_HEADER = struct.Struct("IHHiIII")
_RECORD_HEADER = struct.Struct("IIII")
_DEFAULT_SNAPLEN = 65535


class PcapError(ValueError):
    """Raised for malformed pcap files."""


def write_pcap(
    path: Union[str, Path],
    packets: Iterable[CapturedPacket],
    snaplen: int = _DEFAULT_SNAPLEN,
) -> int:
    """Write packets to a pcap file; returns the number written.

    Frames longer than ``snaplen`` are truncated with the original length
    recorded, exactly as a capturing NIC would.
    """
    count = 0
    with open(path, "wb") as handle:
        handle.write(
            _GLOBAL_HEADER.pack(
                MAGIC_NATIVE,
                VERSION_MAJOR,
                VERSION_MINOR,
                0,  # thiszone
                0,  # sigfigs
                snaplen,
                LINKTYPE_ETHERNET,
            )
        )
        for packet in packets:
            seconds = int(packet.timestamp)
            micros = int(round((packet.timestamp - seconds) * 1_000_000))
            if micros >= 1_000_000:
                seconds += 1
                micros -= 1_000_000
            captured = packet.data[:snaplen]
            handle.write(
                _RECORD_HEADER.pack(seconds, micros, len(captured), len(packet.data))
            )
            handle.write(captured)
            count += 1
    return count


def read_pcap(path: Union[str, Path]) -> Iterator[CapturedPacket]:
    """Stream packets from a pcap file (either byte order)."""
    with open(path, "rb") as handle:
        yield from _read_stream(handle, str(path))


def load_pcap(path: Union[str, Path]) -> List[CapturedPacket]:
    """Read a whole pcap file into memory."""
    return list(read_pcap(path))


def _read_stream(handle: IO[bytes], name: str) -> Iterator[CapturedPacket]:
    raw = handle.read(_GLOBAL_HEADER.size)
    if len(raw) < _GLOBAL_HEADER.size:
        raise PcapError(f"{name}: truncated global header")
    (magic,) = struct.unpack_from("I", raw, 0)
    if magic == MAGIC_NATIVE:
        endian = ""
    elif magic == MAGIC_SWAPPED:
        endian = ">" if struct.pack("I", 1) == struct.pack("<I", 1) else "<"
    else:
        # Try the opposite interpretation before giving up.
        (magic_be,) = struct.unpack_from(">I", raw, 0)
        if magic_be == MAGIC_NATIVE:
            endian = ">"
        else:
            raise PcapError(f"{name}: bad magic {magic:#x}")
    header = struct.unpack(endian + "IHHiIII" if endian else "IHHiIII", raw)
    _, major, _minor, _, _, _snaplen, linktype = header
    if major != VERSION_MAJOR:
        raise PcapError(f"{name}: unsupported version {major}")
    if linktype != LINKTYPE_ETHERNET:
        raise PcapError(f"{name}: unsupported linktype {linktype}")
    record = struct.Struct((endian or "") + "IIII")
    while True:
        raw = handle.read(record.size)
        if not raw:
            return
        if len(raw) < record.size:
            raise PcapError(f"{name}: truncated record header")
        seconds, micros, captured_len, original_len = record.unpack(raw)
        if captured_len > original_len or captured_len > 0x0FFFFFFF:
            raise PcapError(f"{name}: implausible record lengths")
        data = handle.read(captured_len)
        if len(data) < captured_len:
            raise PcapError(f"{name}: truncated packet data")
        yield CapturedPacket(timestamp=seconds + micros / 1_000_000, data=data)
