"""Capture-path types: timestamped frames and the layered decoder.

This is the software equivalent of the DPDK capture path in the paper's
probes: raw frames come in with a timestamp, and the decoder peels
Ethernet / IPv4 / TCP-or-UDP, handing the result to the flow meter.
Non-IPv4 and malformed packets are counted, not raised, because a probe
must survive anything the mirror port sends it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Optional, Union

from repro.packets.ethernet import ETHERTYPE_IPV4, EthernetFrame, FrameError
from repro.packets.ipv4 import PROTO_TCP, PROTO_UDP, IPv4Packet, PacketError
from repro.packets.tcp import TcpSegment
from repro.packets.udp import UdpDatagram


@dataclass(frozen=True)
class CapturedPacket:
    """A raw frame with its capture timestamp (seconds, float)."""

    timestamp: float
    data: bytes


@dataclass(frozen=True)
class DecodedPacket:
    """A fully decoded packet as consumed by the flow meter."""

    timestamp: float
    ip: IPv4Packet
    transport: Union[TcpSegment, UdpDatagram]

    @property
    def is_tcp(self) -> bool:
        return isinstance(self.transport, TcpSegment)

    @property
    def is_udp(self) -> bool:
        return isinstance(self.transport, UdpDatagram)

    @property
    def payload(self) -> bytes:
        return self.transport.payload


@dataclass
class DecodeStats:
    """Counters kept by the decoder; exported with probe health stats."""

    total: int = 0
    decoded: int = 0
    non_ipv4: int = 0
    non_tcp_udp: int = 0
    malformed: int = 0
    by_error: Dict[str, int] = field(default_factory=dict)

    def record_error(self, reason: str) -> None:
        self.malformed += 1
        self.by_error[reason] = self.by_error.get(reason, 0) + 1


class FrameDecoder:
    """Decodes captured frames into :class:`DecodedPacket`, keeping stats."""

    def __init__(self, verify_ip_checksum: bool = True) -> None:
        self.stats = DecodeStats()
        self._verify_ip_checksum = verify_ip_checksum

    @property
    def verify_ip_checksum(self) -> bool:
        return self._verify_ip_checksum

    def decode(self, packet: CapturedPacket) -> Optional[DecodedPacket]:
        """Decode one frame; returns ``None`` for anything non-meterable."""
        self.stats.total += 1
        try:
            frame = EthernetFrame.decode(packet.data)
        except FrameError as exc:
            self.stats.record_error(str(exc))
            return None
        if frame.ethertype != ETHERTYPE_IPV4:
            self.stats.non_ipv4 += 1
            return None
        try:
            ip = IPv4Packet.decode(frame.payload, self._verify_ip_checksum)
        except PacketError as exc:
            self.stats.record_error(str(exc))
            return None
        transport: Union[TcpSegment, UdpDatagram]
        try:
            if ip.protocol == PROTO_TCP:
                transport = TcpSegment.decode(ip.payload)
            elif ip.protocol == PROTO_UDP:
                transport = UdpDatagram.decode(ip.payload)
            else:
                self.stats.non_tcp_udp += 1
                return None
        except PacketError as exc:
            self.stats.record_error(str(exc))
            return None
        return DecodedPacket(timestamp=packet.timestamp, ip=ip, transport=transport)

    def decode_stream(
        self, packets: Iterable[CapturedPacket]
    ) -> Iterator[DecodedPacket]:
        """Decode a stream, silently skipping what :meth:`decode` rejects."""
        for packet in packets:
            decoded = self.decode(packet)
            if decoded is not None:
                yield decoded


def build_frame(
    timestamp: float,
    ip: IPv4Packet,
    src_mac: bytes = b"\x02\x00\x00\x00\x00\x01",
    dst_mac: bytes = b"\x02\x00\x00\x00\x00\x02",
) -> CapturedPacket:
    """Wrap an IPv4 packet into a captured Ethernet frame (test/generator aid)."""
    frame = EthernetFrame(
        dst_mac=dst_mac, src_mac=src_mac, ethertype=ETHERTYPE_IPV4, payload=ip.encode()
    )
    return CapturedPacket(timestamp=timestamp, data=frame.encode())
