"""UDP datagram codec (DNS and QUIC ride on it)."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.packets.checksum import internet_checksum, pseudo_header
from repro.packets.ipv4 import PROTO_UDP, PacketError

HEADER_LEN = 8


@dataclass(frozen=True)
class UdpDatagram:
    """A decoded UDP datagram."""

    src_port: int
    dst_port: int
    payload: bytes = b""

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 0xFFFF:
                raise PacketError(f"bad port {port}")
        if HEADER_LEN + len(self.payload) > 0xFFFF:
            raise PacketError("UDP payload too large")

    def encode(self, src_ip: int, dst_ip: int) -> bytes:
        """Serialize with a correct checksum over the IPv4 pseudo-header."""
        length = HEADER_LEN + len(self.payload)
        header = struct.pack("!HHHH", self.src_port, self.dst_port, length, 0)
        pseudo = pseudo_header(src_ip, dst_ip, PROTO_UDP, length)
        checksum = internet_checksum(pseudo + header + self.payload)
        if checksum == 0:
            checksum = 0xFFFF
        return header[:6] + struct.pack("!H", checksum) + self.payload

    @classmethod
    def decode(cls, data: bytes) -> "UdpDatagram":
        """Parse from wire format."""
        if len(data) < HEADER_LEN:
            raise PacketError(f"UDP datagram too short: {len(data)} bytes")
        src_port, dst_port, length, _ = struct.unpack_from("!HHHH", data, 0)
        if length < HEADER_LEN or length > len(data):
            raise PacketError(f"bad UDP length {length}")
        return cls(src_port=src_port, dst_port=dst_port, payload=data[HEADER_LEN:length])
