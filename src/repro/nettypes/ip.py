"""IPv4 value types used throughout the probe and the world model.

Addresses are carried as plain ``int`` in hot paths (the probe meters
millions of flows); this module provides the conversions, validation and the
:class:`Prefix` type used by the routing trie and the anonymizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

IPV4_BITS = 32
IPV4_MAX = (1 << IPV4_BITS) - 1


class AddressError(ValueError):
    """Raised for malformed dotted-quad strings or out-of-range integers."""


def ip_to_int(text: str) -> int:
    """Parse a dotted-quad IPv4 address into its 32-bit integer value.

    >>> ip_to_int("10.0.0.1")
    167772161
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressError(f"not a dotted quad: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
            raise AddressError(f"bad octet {part!r} in {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Format a 32-bit integer as a dotted-quad string.

    >>> int_to_ip(167772161)
    '10.0.0.1'
    """
    if not 0 <= value <= IPV4_MAX:
        raise AddressError(f"not a 32-bit address: {value!r}")
    return ".".join(
        str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0)
    )


@dataclass(frozen=True)
class Prefix:
    """An IPv4 prefix (CIDR block) with canonical (masked) network address."""

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= IPV4_BITS:
            raise AddressError(f"bad prefix length {self.length}")
        if not 0 <= self.network <= IPV4_MAX:
            raise AddressError(f"bad network {self.network}")
        masked = self.network & self.mask()
        if masked != self.network:
            raise AddressError(
                f"{int_to_ip(self.network)}/{self.length} has host bits set"
            )

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``a.b.c.d/len`` notation.

        >>> Prefix.parse("192.168.0.0/16")
        Prefix(network=3232235520, length=16)
        """
        if "/" not in text:
            raise AddressError(f"missing /length in {text!r}")
        addr, _, length_text = text.partition("/")
        if not length_text.isdigit():
            raise AddressError(f"bad prefix length in {text!r}")
        return cls(ip_to_int(addr), int(length_text))

    def mask(self) -> int:
        """Netmask of this prefix as a 32-bit integer."""
        if self.length == 0:
            return 0
        return (IPV4_MAX << (IPV4_BITS - self.length)) & IPV4_MAX

    def contains(self, address: int) -> bool:
        """True if ``address`` falls inside this prefix."""
        return (address & self.mask()) == self.network

    def size(self) -> int:
        """Number of addresses covered by the prefix."""
        return 1 << (IPV4_BITS - self.length)

    def first(self) -> int:
        """Lowest address in the prefix (the network address)."""
        return self.network

    def last(self) -> int:
        """Highest address in the prefix (the broadcast address)."""
        return self.network | (~self.mask() & IPV4_MAX)

    def nth(self, index: int) -> int:
        """The ``index``-th address inside the prefix (0 = network address)."""
        if not 0 <= index < self.size():
            raise IndexError(f"host index {index} outside /{self.length}")
        return self.network + index

    def hosts(self) -> Iterator[int]:
        """Iterate every address in the prefix (network address included)."""
        return iter(range(self.first(), self.last() + 1))

    def __str__(self) -> str:
        return f"{int_to_ip(self.network)}/{self.length}"


def is_private(address: int) -> bool:
    """True for RFC 1918 addresses (used for subscriber-side addressing)."""
    return any(block.contains(address) for block in _PRIVATE_BLOCKS)


_PRIVATE_BLOCKS = (
    Prefix.parse("10.0.0.0/8"),
    Prefix.parse("172.16.0.0/12"),
    Prefix.parse("192.168.0.0/16"),
)
