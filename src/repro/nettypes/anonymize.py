"""Consistent, prefix-preserving client-address anonymization.

The paper's probes anonymize subscriber IP addresses *immediately* and
*consistently*: the same customer always maps to the same pseudonym so that
per-subscription longitudinal statistics remain possible, while the real
address never leaves the probe (Section 2.1).

:class:`PrefixPreservingAnonymizer` implements the Crypt-PAn construction
(Xu et al.): every bit of the output is the input bit XOR-ed with a keyed
pseudorandom function of the preceding input bits, which preserves prefix
relationships — two addresses sharing a k-bit prefix map to pseudonyms
sharing a k-bit prefix.  :class:`TableAnonymizer` is the simpler
pseudonym-counter variant used when prefix structure need not survive.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Dict

from repro.nettypes.ip import IPV4_BITS, IPV4_MAX


class PrefixPreservingAnonymizer:
    """Crypt-PAn style one-to-one, prefix-preserving IPv4 mapping.

    The mapping is deterministic given ``key`` and is cached per input
    address because the probe sees the same subscribers every day.
    """

    def __init__(self, key: bytes) -> None:
        if not key:
            raise ValueError("anonymization key must be non-empty")
        self._key = key
        self._cache: Dict[int, int] = {}

    def _prf_bit(self, prefix_bits: int, length: int) -> int:
        """Keyed PRF of the ``length``-bit prefix, reduced to one bit."""
        message = length.to_bytes(1, "big") + prefix_bits.to_bytes(4, "big")
        digest = hmac.new(self._key, message, hashlib.sha256).digest()
        return digest[0] & 1

    def anonymize(self, address: int) -> int:
        """Map a real address to its stable pseudonym."""
        if not 0 <= address <= IPV4_MAX:
            raise ValueError(f"not a 32-bit address: {address!r}")
        cached = self._cache.get(address)
        if cached is not None:
            return cached
        result = 0
        for bit_index in range(IPV4_BITS):
            shift = IPV4_BITS - 1 - bit_index
            prefix = address >> (shift + 1) if shift < 31 else 0
            flip = self._prf_bit(prefix, bit_index)
            original_bit = (address >> shift) & 1
            result = (result << 1) | (original_bit ^ flip)
        self._cache[address] = result
        return result

    def __call__(self, address: int) -> int:
        return self.anonymize(address)


class TableAnonymizer:
    """Sequential-pseudonym anonymizer (address -> opaque counter).

    Matches what the probes export for subscriber identifiers in the flow
    logs: a dense integer id, assigned in order of first appearance, with no
    structural information left.
    """

    def __init__(self) -> None:
        self._table: Dict[int, int] = {}

    def anonymize(self, address: int) -> int:
        pseudonym = self._table.get(address)
        if pseudonym is None:
            pseudonym = len(self._table)
            self._table[address] = pseudonym
        return pseudonym

    def __call__(self, address: int) -> int:
        return self.anonymize(address)

    def __len__(self) -> int:
        return len(self._table)
