"""Server-side infrastructure: who serves each service, from where, when.

Encodes the Section 6 ground truth:

* **RTT tiers** — each deployment sits at a fixed network distance from
  the PoP (sub-millisecond in-PoP caches, 3 ms national edge, 10-30 ms
  European metros, ~100 ms transatlantic), producing the stepped CDFs of
  Fig. 10;
* **CDN migrations** — Facebook and Instagram move from shared Akamai /
  transit-hosted caches onto the dedicated Facebook CDN through 2014-2015
  (Fig. 11a/b/d/e); YouTube is always dedicated but pushes caches into the
  ISP from the end of 2015 (Fig. 11c/f);
* **address pools** — deployments draw server addresses from
  :class:`AddressPool`\\ s; two services drawing from the same pool produce
  the *shared* addresses of Fig. 11's blue dots; pools slowly rotate
  addresses so new IPs keep appearing over the years;
* **domain evolution** — youtube.com → googlevideo.com → gvt1.com,
  akamaihd.net → fbcdn.net / cdninstagram.com (Fig. 11g-i).

IP pool sizes are scaled-down from the paper's tens of thousands by the
world's ``ip_scale`` (DESIGN.md §5); relative shapes are preserved.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nettypes.ip import Prefix
from repro.routing import asns
from repro.routing.asns import AutonomousSystem
from repro.routing.rib import RibArchive, RibEntry, RibSnapshot
from repro.services import catalog
from repro.synthesis import curves
from repro.synthesis.curves import Curve
from repro.synthesis.studycalendar import STUDY_END, STUDY_START, study_months

D = datetime.date


@dataclass(frozen=True)
class AddressPool:
    """A rotating pool of server addresses, owned by one AS."""

    name: str
    asn: AutonomousSystem
    prefixes: Tuple[Prefix, ...]
    rotation_per_day: float = 0.3  # new addresses appearing over time

    def capacity(self) -> int:
        return sum(prefix.size() for prefix in self.prefixes)

    def nth(self, index: int) -> int:
        """The ``index``-th address of the pool (wrapping)."""
        index %= self.capacity()
        for prefix in self.prefixes:
            if index < prefix.size():
                return prefix.nth(index)
            index -= prefix.size()
        raise AssertionError("unreachable")

    def address_for(self, slot: int, day: datetime.date) -> int:
        """Address serving ``slot`` on ``day``; drifts as the pool rotates."""
        drift = int((day.toordinal() - STUDY_START.toordinal()) * self.rotation_per_day)
        return self.nth(slot + drift)

    def addresses_for(self, slots: np.ndarray, day: datetime.date) -> np.ndarray:
        """Vectorized :meth:`address_for` over an array of slots."""
        drift = int((day.toordinal() - STUDY_START.toordinal()) * self.rotation_per_day)
        indices = (np.asarray(slots, dtype=np.int64) + drift) % self.capacity()
        sizes = np.array([prefix.size() for prefix in self.prefixes], dtype=np.int64)
        bounds = np.cumsum(sizes)
        which = np.searchsorted(bounds, indices, side="right")
        networks = np.array(
            [prefix.network for prefix in self.prefixes], dtype=np.int64
        )
        return networks[which] + (indices - (bounds - sizes)[which])


@dataclass(frozen=True)
class Deployment:
    """One tier serving a service: a pool slice at a given distance."""

    name: str
    pool: AddressPool
    rtt_ms: float
    share: Curve  # fraction of the service's traffic served here
    active_slots: Curve  # distinct addresses used per day (scaled)
    domains: Tuple[Tuple[str, Curve], ...]  # weighted FQDN templates
    rtt_sigma: float = 0.08  # lognormal spread of per-flow min RTT
    slot_offset: int = 0  # region of the pool (separates co-pool tenants)

    def domain_on(self, day: datetime.date, rng: np.random.Generator) -> str:
        weights = [(template, curve(day)) for template, curve in self.domains]
        weights = [(template, max(0.0, weight)) for template, weight in weights]
        total = sum(weight for _, weight in weights)
        if total <= 0:
            template = self.domains[0][0]
        else:
            pick = rng.random() * total
            cumulative = 0.0
            template = weights[-1][0]
            for candidate, weight in weights:
                cumulative += weight
                if pick <= cumulative:
                    template = candidate
                    break
        return _fill_template(template, rng)

    def domains_on(
        self,
        day: datetime.date,
        rng: np.random.Generator,
        count: int,
        emit: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``count`` domain draws at once (vectorized :meth:`domain_on`).

        ``emit`` (bool mask over ``count``) keeps every RNG draw but
        skips the Python string construction for positions that the
        caller will discard — sharded expansion stays draw-aligned with
        the unsharded stream while paying only for its own flows.
        """
        weights = [max(0.0, curve(day)) for _, curve in self.domains]
        total = sum(weights)
        if total <= 0:
            picks = np.zeros(count, dtype=np.int64)
        else:
            cumulative = np.cumsum(weights)
            picks = np.minimum(
                np.searchsorted(cumulative, rng.random(count) * total),
                len(weights) - 1,
            )
        out = np.empty(count, dtype=object)
        for index, (template, _) in enumerate(self.domains):
            mask = picks == index
            hits = int(np.count_nonzero(mask))
            if hits:
                out[mask] = _fill_templates(
                    template,
                    rng,
                    hits,
                    emit=None if emit is None else emit[mask],
                )
        return out

    def sample_rtt_ms(self, rng: np.random.Generator) -> float:
        return float(self.rtt_ms * rng.lognormal(0.0, self.rtt_sigma))

    def sample_rtts_ms(
        self, rng: np.random.Generator, count: int
    ) -> np.ndarray:
        return self.rtt_ms * rng.lognormal(0.0, self.rtt_sigma, count)


@dataclass(frozen=True)
class ServerChoice:
    """A concrete server picked for one flow."""

    ip: int
    domain: str
    rtt_ms: float
    asn: AutonomousSystem
    deployment: str
    pool: str


class ServiceInfrastructure:
    """The deployments of one service, with share-weighted selection."""

    def __init__(self, service: str, deployments: Sequence[Deployment]) -> None:
        if not deployments:
            raise ValueError(f"{service}: at least one deployment required")
        self.service = service
        self.deployments = tuple(deployments)

    def shares_on(self, day: datetime.date) -> List[Tuple[Deployment, float]]:
        weights = [
            (deployment, max(0.0, deployment.share(day)))
            for deployment in self.deployments
        ]
        total = sum(weight for _, weight in weights)
        if total <= 0.0:
            return []
        return [(deployment, weight / total) for deployment, weight in weights]

    def pick_server(
        self, day: datetime.date, rng: np.random.Generator
    ) -> ServerChoice:
        shares = self.shares_on(day)
        if not shares:
            raise ValueError(f"{self.service}: no deployment active on {day}")
        pick = rng.random()
        cumulative = 0.0
        deployment = shares[-1][0]
        for candidate, share in shares:
            cumulative += share
            if pick <= cumulative:
                deployment = candidate
                break
        slots = max(1, int(deployment.active_slots(day)))
        slot = deployment.slot_offset + int(rng.integers(0, slots))
        ip = deployment.pool.address_for(slot, day)
        return ServerChoice(
            ip=ip,
            domain=deployment.domain_on(day, rng),
            rtt_ms=deployment.sample_rtt_ms(rng),
            asn=deployment.pool.asn,
            deployment=deployment.name,
            pool=deployment.pool.name,
        )

    def pick_servers(
        self,
        day: datetime.date,
        rng: np.random.Generator,
        count: int,
        emit: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Pick ``count`` servers at once: ``(ips, domains, rtts_ms)``.

        The batched form of :meth:`pick_server` for the born-columnar
        flow expansion — identical share weighting, slot ranges, domain
        mixes, and RTT distributions, with the per-flow draws grouped by
        deployment so address/domain/RTT generation vectorizes.  ``emit``
        restricts domain *string* construction (never the draws) to the
        flagged positions; see :meth:`Deployment.domains_on`.
        """
        shares = self.shares_on(day)
        if not shares:
            raise ValueError(f"{self.service}: no deployment active on {day}")
        cumulative = np.cumsum([share for _, share in shares])
        picks = np.minimum(
            np.searchsorted(cumulative, rng.random(count)), len(shares) - 1
        )
        ips = np.empty(count, dtype=np.int64)
        domains = np.empty(count, dtype=object)
        rtts = np.empty(count, dtype=np.float64)
        for index, (deployment, _) in enumerate(shares):
            mask = picks == index
            hits = int(np.count_nonzero(mask))
            if not hits:
                continue
            slots = max(1, int(deployment.active_slots(day)))
            drawn = deployment.slot_offset + rng.integers(0, slots, hits)
            ips[mask] = deployment.pool.addresses_for(drawn, day)
            domains[mask] = deployment.domains_on(
                day, rng, hits, emit=None if emit is None else emit[mask]
            )
            rtts[mask] = deployment.sample_rtts_ms(rng, hits)
        return ips, domains, rtts


def _fill_template(template: str, rng: np.random.Generator) -> str:
    if "{n}" in template:
        template = template.replace("{n}", str(int(rng.integers(1, 9))))
    if "{a}" in template:
        template = template.replace("{a}", chr(ord("a") + int(rng.integers(0, 8))))
    return template


def _fill_templates(
    template: str,
    rng: np.random.Generator,
    count: int,
    emit: Optional[np.ndarray] = None,
) -> List[Optional[str]]:
    """``count`` independent fills of one domain template.

    The RNG draws are always full-width; ``emit`` only gates the string
    construction, leaving ``None`` at positions the caller discards.
    """
    digits = rng.integers(1, 9, count) if "{n}" in template else None
    letters = rng.integers(0, 8, count) if "{a}" in template else None
    if digits is None and letters is None:
        return [template] * count
    if emit is None:
        positions = range(count)
        filled: List[Optional[str]] = [None] * count
    else:
        # Shard path: visit only the emitted positions, so string work
        # is O(shard) even though the draws above stay full-width.
        positions = np.nonzero(emit)[0].tolist()
        filled = [None] * count
    for position in positions:
        name = template
        if digits is not None:
            name = name.replace("{n}", str(int(digits[position])))
        if letters is not None:
            name = name.replace("{a}", chr(ord("a") + int(letters[position])))
        filled[position] = name
    return filled


# ---------------------------------------------------------------------------
# The concrete world: pools.


def _pool(
    name: str, asn: AutonomousSystem, *prefixes: str, rotation: float = 0.3
) -> AddressPool:
    return AddressPool(
        name=name,
        asn=asn,
        prefixes=tuple(Prefix.parse(text) for text in prefixes),
        rotation_per_day=rotation,
    )


@dataclass(frozen=True)
class WorldPools:
    """Every address pool of the synthetic Internet."""

    akamai_edge: AddressPool
    akamai_metro: AddressPool
    akamai_eu: AddressPool
    telianet_eu: AddressPool
    gtt_eu: AddressPool
    us_transit: AddressPool
    facebook_cdn_edge: AddressPool
    facebook_us: AddressPool
    google_edge: AddressPool
    google_eu: AddressPool
    youtube_edge: AddressPool
    isp_cache: AddressPool
    netflix_oca: AddressPool
    whatsapp_us: AddressPool
    generic_hosting: AddressPool
    cloud_misc: AddressPool


def build_default_pools() -> WorldPools:
    return WorldPools(
        akamai_edge=_pool("akamai-edge", asns.AKAMAI, "23.192.0.0/20"),
        akamai_metro=_pool("akamai-metro", asns.AKAMAI, "2.16.0.0/20"),
        akamai_eu=_pool("akamai-eu", asns.AKAMAI, "95.100.0.0/20"),
        telianet_eu=_pool("telianet-eu", asns.TELIANET, "80.239.128.0/20"),
        gtt_eu=_pool("gtt-eu", asns.GTT, "77.67.0.0/20"),
        us_transit=_pool("us-transit", asns.LEVEL3, "8.26.0.0/20"),
        facebook_cdn_edge=_pool(
            "facebook-cdn-edge", asns.FACEBOOK, "31.13.64.0/19", rotation=0.15
        ),
        facebook_us=_pool("facebook-us", asns.FACEBOOK, "66.220.144.0/20"),
        google_edge=_pool("google-edge", asns.GOOGLE, "74.125.0.0/19"),
        google_eu=_pool("google-eu", asns.GOOGLE, "216.58.192.0/20"),
        youtube_edge=_pool(
            "youtube-edge", asns.YOUTUBE, "208.65.128.0/19", rotation=1.2
        ),
        isp_cache=_pool("isp-cache", asns.ISP, "151.99.0.0/20", rotation=0.05),
        netflix_oca=_pool("netflix-oca", asns.NETFLIX, "23.246.0.0/20"),
        whatsapp_us=_pool("whatsapp-us", asns.FACEBOOK, "158.85.224.0/20"),
        generic_hosting=_pool("generic-hosting", asns.OTHER, "104.16.0.0/18", rotation=1.0),
        cloud_misc=_pool("cloud-misc", asns.AMAZON, "52.84.0.0/20"),
    )


# ---------------------------------------------------------------------------
# The concrete world: per-service deployments.


def build_default_infrastructure(
    pools: Optional[WorldPools] = None, ip_scale: float = 0.05
) -> Dict[str, ServiceInfrastructure]:
    """The per-service deployment map (Fig. 10 and Fig. 11 ground truth).

    ``ip_scale`` scales the paper's daily-active-IP counts down to the
    synthetic population's size.
    """
    pools = pools or build_default_pools()
    s = ip_scale

    def ips(*knots: Tuple[datetime.date, float]) -> Curve:
        scaled_knots = tuple((day, max(1.0, value * s)) for day, value in knots)
        return curves.PiecewiseLinear(scaled_knots)

    infra: Dict[str, ServiceInfrastructure] = {}

    # -- Facebook: shared CDNs -> own CDN (completed end 2015) -------------
    fb_migration = curves.piecewise(
        (D(2013, 7, 1), 0.45), (D(2015, 1, 1), 0.75), (D(2015, 12, 1), 0.995), (D(2016, 7, 1), 1.0)
    )
    fb_on_akamai = curves.piecewise(
        (D(2013, 7, 1), 0.55), (D(2015, 1, 1), 0.25), (D(2015, 12, 1), 0.005), (D(2016, 7, 1), 0.0)
    )
    fb_domains_own = (
        ("www.facebook.com", curves.constant(0.3)),
        ("scontent-mxp1-{n}.fbcdn.net", curves.constant(0.5)),
        ("static.fbcdn.net", curves.constant(0.2)),
    )
    fb_domains_akamai = (
        ("fbstatic-{a}.akamaihd.net", curves.constant(0.6)),
        ("fbcdn-profile-{a}.akamaihd.net", curves.constant(0.4)),
    )
    infra[catalog.FACEBOOK] = ServiceInfrastructure(
        catalog.FACEBOOK,
        [
            Deployment(
                "fb-cdn-edge",
                pools.facebook_cdn_edge,
                rtt_ms=3.0,
                share=curves.multiplied(fb_migration, curves.piecewise((D(2013, 7, 1), 0.25), (D(2017, 12, 31), 0.85))),
                active_slots=ips((D(2013, 7, 1), 300), (D(2015, 6, 1), 800), (D(2016, 7, 1), 950), (D(2017, 12, 31), 990)),
                domains=fb_domains_own,
            ),
            Deployment(
                "fb-us",
                pools.facebook_us,
                rtt_ms=95.0,
                share=curves.multiplied(fb_migration, curves.piecewise((D(2013, 7, 1), 0.75), (D(2017, 12, 31), 0.15))),
                active_slots=ips((D(2013, 7, 1), 250), (D(2017, 12, 31), 60)),
                domains=(("www.facebook.com", curves.constant(1.0)),),
            ),
            Deployment(
                "fb-akamai-edge",
                pools.akamai_edge,
                rtt_ms=3.0,
                share=curves.multiplied(fb_on_akamai, curves.constant(0.15)),
                active_slots=ips((D(2013, 7, 1), 700), (D(2015, 6, 1), 250), (D(2016, 7, 1), 5)),
                domains=fb_domains_akamai,
            ),
            Deployment(
                "fb-akamai-metro",
                pools.akamai_metro,
                rtt_ms=10.0,
                share=curves.multiplied(fb_on_akamai, curves.constant(0.35)),
                active_slots=ips((D(2013, 7, 1), 1400), (D(2015, 6, 1), 500), (D(2016, 7, 1), 5)),
                domains=fb_domains_akamai,
            ),
            Deployment(
                "fb-akamai-eu",
                pools.akamai_eu,
                rtt_ms=22.0,
                share=curves.multiplied(fb_on_akamai, curves.constant(0.50)),
                active_slots=ips((D(2013, 7, 1), 1500), (D(2015, 6, 1), 500), (D(2016, 7, 1), 5)),
                domains=fb_domains_akamai,
            ),
        ],
    )

    # -- Instagram: Telia/GTT/Akamai -> Facebook CDN (2014 -> end 2015) ----
    ig_migrated = curves.piecewise(
        (D(2013, 7, 1), 0.0), (D(2014, 6, 1), 0.15), (D(2015, 3, 1), 0.6), (D(2015, 12, 1), 1.0)
    )
    ig_legacy = curves.piecewise(
        (D(2013, 7, 1), 1.0), (D(2014, 6, 1), 0.85), (D(2015, 3, 1), 0.4), (D(2015, 12, 1), 0.0)
    )
    ig_domains_new = (
        ("scontent-mxp1-{n}.cdninstagram.com", curves.constant(0.7)),
        ("www.instagram.com", curves.constant(0.3)),
    )
    ig_domains_old = (
        ("instagram.c10r.akamaihd.net", curves.constant(0.5)),
        ("photos-{a}.ak.instagram.com", curves.constant(0.5)),
    )
    infra[catalog.INSTAGRAM] = ServiceInfrastructure(
        catalog.INSTAGRAM,
        [
            Deployment(
                "ig-fb-cdn-edge",
                pools.facebook_cdn_edge,
                rtt_ms=3.0,
                share=curves.multiplied(ig_migrated, curves.piecewise((D(2014, 1, 1), 0.55), (D(2017, 12, 31), 0.85))),
                active_slots=ips((D(2014, 1, 1), 100), (D(2016, 1, 1), 280), (D(2017, 12, 31), 300)),
                domains=ig_domains_new,
                slot_offset=4000,  # Instagram gets its own fbcdn address range
            ),
            Deployment(
                "ig-fb-us",
                pools.facebook_us,
                rtt_ms=95.0,
                share=curves.multiplied(ig_migrated, curves.piecewise((D(2014, 1, 1), 0.45), (D(2017, 12, 31), 0.15))),
                active_slots=ips((D(2014, 1, 1), 40), (D(2017, 12, 31), 25)),
                domains=ig_domains_new,
                slot_offset=2000,
            ),
            Deployment(
                "ig-akamai-edge",
                pools.akamai_edge,
                rtt_ms=3.0,
                share=curves.multiplied(ig_legacy, curves.constant(0.10)),
                active_slots=ips((D(2013, 7, 1), 250), (D(2015, 6, 1), 60)),
                domains=ig_domains_old,
            ),
            Deployment(
                "ig-telia",
                pools.telianet_eu,
                rtt_ms=12.0,
                share=curves.multiplied(ig_legacy, curves.constant(0.35)),
                active_slots=ips((D(2013, 7, 1), 900), (D(2015, 6, 1), 200)),
                domains=ig_domains_old,
            ),
            Deployment(
                "ig-gtt",
                pools.gtt_eu,
                rtt_ms=25.0,
                share=curves.multiplied(ig_legacy, curves.constant(0.35)),
                active_slots=ips((D(2013, 7, 1), 900), (D(2015, 6, 1), 200)),
                domains=ig_domains_old,
            ),
            Deployment(
                "ig-us-transit",
                pools.us_transit,
                rtt_ms=110.0,
                share=curves.multiplied(ig_legacy, curves.constant(0.20)),
                active_slots=ips((D(2013, 7, 1), 400), (D(2015, 6, 1), 100)),
                domains=ig_domains_old,
            ),
        ],
    )

    # -- YouTube: always dedicated; ISP caches from end 2015 ----------------
    yt_domains = (
        ("www.youtube.com", curves.piecewise((D(2013, 7, 1), 1.0), (D(2014, 1, 1), 0.9), (D(2014, 7, 1), 0.15), (D(2017, 12, 31), 0.08))),
        ("r{n}---sn-ab5l6nzr.googlevideo.com", curves.launched(D(2014, 1, 10), curves.piecewise((D(2014, 1, 10), 0.1), (D(2014, 7, 1), 0.8), (D(2017, 12, 31), 0.75)))),
        ("redirector.gvt1.com", curves.launched(D(2015, 3, 1), curves.piecewise((D(2015, 3, 1), 0.02), (D(2016, 1, 1), 0.12), (D(2017, 12, 31), 0.17)))),
    )
    isp_cache_share = curves.launched(
        D(2015, 10, 1),
        curves.piecewise((D(2015, 10, 1), 0.05), (D(2016, 6, 1), 0.55), (D(2017, 12, 31), 0.80)),
    )
    infra[catalog.YOUTUBE] = ServiceInfrastructure(
        catalog.YOUTUBE,
        [
            Deployment(
                "yt-isp-cache",
                pools.isp_cache,
                rtt_ms=0.45,
                share=isp_cache_share,
                active_slots=ips((D(2015, 10, 1), 100), (D(2016, 6, 1), 12000), (D(2017, 12, 31), 30000)),
                domains=yt_domains,
                rtt_sigma=0.15,
            ),
            Deployment(
                "yt-edge",
                pools.youtube_edge,
                rtt_ms=3.0,
                share=curves.piecewise(
                    (D(2013, 7, 1), 0.80), (D(2015, 10, 1), 0.82), (D(2016, 6, 1), 0.38), (D(2017, 12, 31), 0.17)
                ),
                active_slots=ips((D(2013, 7, 1), 9000), (D(2015, 10, 1), 22000), (D(2017, 12, 31), 37000)),
                domains=yt_domains,
            ),
            Deployment(
                "yt-eu",
                pools.google_eu,
                rtt_ms=16.0,
                share=curves.piecewise((D(2013, 7, 1), 0.20), (D(2016, 6, 1), 0.07), (D(2017, 12, 31), 0.03)),
                active_slots=ips((D(2013, 7, 1), 1500), (D(2017, 12, 31), 900)),
                domains=yt_domains,
            ),
        ],
    )

    # -- Google search: 3 ms edge, no in-PoP penetration --------------------
    google_domains = (
        ("www.google.com", curves.constant(0.6)),
        ("www.google.it", curves.constant(0.25)),
        ("ssl.gstatic.com", curves.constant(0.15)),
    )
    infra[catalog.GOOGLE] = ServiceInfrastructure(
        catalog.GOOGLE,
        [
            Deployment(
                "google-edge",
                pools.google_edge,
                rtt_ms=3.2,
                share=curves.piecewise((D(2013, 7, 1), 0.55), (D(2017, 12, 31), 0.85)),
                active_slots=ips((D(2013, 7, 1), 800), (D(2017, 12, 31), 1500)),
                domains=google_domains,
            ),
            Deployment(
                "google-eu",
                pools.google_eu,
                rtt_ms=16.0,
                share=curves.piecewise((D(2013, 7, 1), 0.45), (D(2017, 12, 31), 0.15)),
                active_slots=ips((D(2013, 7, 1), 700), (D(2017, 12, 31), 400)),
                domains=google_domains,
            ),
        ],
    )

    # -- Netflix: OCAs reach the edge with the UHD era ----------------------
    infra[catalog.NETFLIX] = ServiceInfrastructure(
        catalog.NETFLIX,
        [
            Deployment(
                "nflx-oca-edge",
                pools.netflix_oca,
                rtt_ms=3.5,
                share=curves.launched(D(2015, 10, 22), curves.piecewise((D(2015, 10, 22), 0.4), (D(2017, 12, 31), 0.85))),
                active_slots=ips((D(2015, 10, 22), 100), (D(2017, 12, 31), 600)),
                domains=(
                    ("ipv4-c{n}-mxp001.nflxvideo.net", curves.constant(0.85)),
                    ("www.netflix.com", curves.constant(0.15)),
                ),
            ),
            Deployment(
                "nflx-eu",
                pools.cloud_misc,
                rtt_ms=28.0,
                share=curves.launched(D(2015, 10, 22), curves.piecewise((D(2015, 10, 22), 0.6), (D(2017, 12, 31), 0.15))),
                active_slots=ips((D(2015, 10, 22), 150), (D(2017, 12, 31), 80)),
                domains=(("www.netflix.com", curves.constant(1.0)),),
            ),
        ],
    )

    # -- WhatsApp: the centralized hold-out (Fig. 10 discussion) ------------
    infra[catalog.WHATSAPP] = ServiceInfrastructure(
        catalog.WHATSAPP,
        [
            Deployment(
                "wa-us",
                pools.whatsapp_us,
                rtt_ms=104.0,
                share=curves.constant(1.0),
                active_slots=ips((D(2013, 7, 1), 150), (D(2017, 12, 31), 400)),
                domains=(
                    ("e{n}.whatsapp.net", curves.constant(0.8)),
                    ("www.whatsapp.com", curves.constant(0.2)),
                ),
            )
        ],
    )

    # -- The residual web: generic hosting + shared Akamai + cloud ----------
    infra[catalog.OTHER] = ServiceInfrastructure(
        catalog.OTHER,
        [
            Deployment(
                "web-hosting",
                pools.generic_hosting,
                rtt_ms=30.0,
                share=curves.constant(0.55),
                active_slots=ips((D(2013, 7, 1), 8000), (D(2017, 12, 31), 15000)),
                domains=(("site-{n}.example-web.com", curves.constant(1.0)),),
                rtt_sigma=0.5,
            ),
            Deployment(
                "web-akamai-edge",
                pools.akamai_edge,
                rtt_ms=3.0,
                share=curves.piecewise((D(2013, 7, 1), 0.15), (D(2017, 12, 31), 0.25)),
                active_slots=ips((D(2013, 7, 1), 1200), (D(2017, 12, 31), 2500)),
                domains=(("cdn-{n}.akamaihd.net", curves.constant(1.0)),),
            ),
            Deployment(
                "web-akamai-metro",
                pools.akamai_metro,
                rtt_ms=10.0,
                share=curves.constant(0.10),
                active_slots=ips((D(2013, 7, 1), 1200), (D(2017, 12, 31), 1800)),
                domains=(("cdn-{n}.akamaihd.net", curves.constant(1.0)),),
            ),
            Deployment(
                "web-cloud",
                pools.cloud_misc,
                rtt_ms=24.0,
                share=curves.piecewise((D(2013, 7, 1), 0.10), (D(2017, 12, 31), 0.20)),
                active_slots=ips((D(2013, 7, 1), 800), (D(2017, 12, 31), 2600)),
                domains=(("d{n}.cloudfront-like.net", curves.constant(1.0)),),
                rtt_sigma=0.3,
            ),
        ],
    )

    # -- Everything else: generic hosting with a service-branded domain -----
    generic_services = {
        catalog.BING: "www.bing.com",
        catalog.DUCKDUCKGO: "duckduckgo.com",
        catalog.TWITTER: "abs.twimg.com",
        catalog.LINKEDIN: "static.licdn.com",
        catalog.ADULT: "cdn{n}.phncdn.com",
        catalog.SPOTIFY: "audio-fa.scdn.co",
        catalog.SKYPE: "a.config.skype.com",
        catalog.TELEGRAM: "core.t.me",
        catalog.SNAPCHAT: "app.snapchat.com",
        catalog.AMAZON: "images-eu.ssl-images-amazon.com",
        catalog.EBAY: "i.ebayimg.ebaystatic.com",
        catalog.PEER_TO_PEER: "",  # peers have no domain
    }
    for service, domain in generic_services.items():
        infra[service] = ServiceInfrastructure(
            service,
            [
                Deployment(
                    f"{service.lower()}-hosting",
                    pools.generic_hosting if service != catalog.PEER_TO_PEER else pools.us_transit,
                    rtt_ms=35.0 if service != catalog.PEER_TO_PEER else 60.0,
                    share=curves.constant(1.0),
                    active_slots=ips((D(2013, 7, 1), 300), (D(2017, 12, 31), 600)),
                    domains=((domain or "peer.invalid", curves.constant(1.0)),),
                    rtt_sigma=0.4,
                )
            ],
        )
    return infra


# ---------------------------------------------------------------------------
# RIB emission: monthly snapshots covering every pool.


def build_rib_archive(
    pools: Optional[WorldPools] = None,
    start: datetime.date = STUDY_START,
    end: datetime.date = STUDY_END,
) -> RibArchive:
    """Monthly RIB snapshots mapping every pool prefix to its origin AS."""
    pools = pools or build_default_pools()
    pool_list: List[AddressPool] = [
        getattr(pools, field_name) for field_name in pools.__dataclass_fields__
    ]
    archive = RibArchive()
    for month in study_months(start, end):
        entries = [
            RibEntry(prefix=prefix, origin=pool.asn.number)
            for pool in pool_list
            for prefix in pool.prefixes
        ]
        archive.add(RibSnapshot(month, entries))
    return archive
