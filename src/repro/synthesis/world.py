"""The assembled world model: population + services + infrastructure.

A :class:`World` is the complete ground truth the synthetic measurements
are drawn from.  Everything is parameterized by :class:`WorldConfig` and a
single seed; any day can be regenerated independently and reproducibly
(per-day child seeds are spawned from the root seed, DESIGN.md §6).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.routing.rib import RibArchive
from repro.services import catalog
from repro.synthesis.infrastructure import (
    ServiceInfrastructure,
    WorldPools,
    build_default_infrastructure,
    build_default_pools,
    build_rib_archive,
)
from repro.synthesis.population import Population, PopulationConfig
from repro.synthesis.servicemodels import ServiceModel, build_default_services
from repro.synthesis.studycalendar import STUDY_END, STUDY_START
from repro.tstat.outages import OutageCalendar, default_outages


@dataclass(frozen=True)
class WorldConfig:
    """Sizing knobs of the synthetic world."""

    seed: int = 2018
    adsl_count: int = 400
    ftth_count: int = 200
    start: datetime.date = STUDY_START
    end: datetime.date = STUDY_END
    ip_scale: float = 0.05  # scales the paper's daily-active-IP counts
    adoption_overshoot: float = 1.6  # adopters vs daily users (see flowgen)
    with_outages: bool = True

    def population_config(self) -> PopulationConfig:
        return PopulationConfig(
            adsl_count=self.adsl_count,
            ftth_count=self.ftth_count,
            start=self.start,
            end=self.end,
        )


class World:
    """The synthetic ISP vantage and the Internet behind it."""

    def __init__(self, config: Optional[WorldConfig] = None) -> None:
        self.config = config or WorldConfig()
        self.population = Population(
            self.config.population_config(), seed=self.config.seed
        )
        self.services: Tuple[ServiceModel, ...] = build_default_services()
        self.pools: WorldPools = build_default_pools()
        self.infrastructure: Dict[str, ServiceInfrastructure] = (
            build_default_infrastructure(self.pools, ip_scale=self.config.ip_scale)
        )
        self.rib: RibArchive = build_rib_archive(
            self.pools, self.config.start, self.config.end
        )
        self.outages: OutageCalendar = (
            default_outages() if self.config.with_outages else OutageCalendar()
        )
        self._service_index = {
            service.name: index for index, service in enumerate(self.services)
        }
        self._affinity = self._build_affinities()

    def service(self, name: str) -> ServiceModel:
        return self.services[self._service_index[name]]

    def service_names(self) -> Tuple[str, ...]:
        return tuple(service.name for service in self.services)

    def infrastructure_for(self, service: str) -> ServiceInfrastructure:
        found = self.infrastructure.get(service)
        if found is None:
            found = self.infrastructure[catalog.OTHER]
        return found

    def day_rng(self, day: datetime.date, stream: int = 0) -> np.random.Generator:
        """A fresh generator for (day, stream), independent of other days."""
        return np.random.default_rng(
            np.random.SeedSequence([self.config.seed, day.toordinal(), stream])
        )

    # -- per-(subscriber, service) persistent randomness --------------------

    def _build_affinities(self) -> Dict[str, np.ndarray]:
        """Adoption ranks and volume affinities, one row per subscriber."""
        rng = np.random.default_rng(
            np.random.SeedSequence([self.config.seed, 0xAFF])
        )
        count = len(self.population)
        ranks = rng.random((count, len(self.services)))
        volume_affinity = np.empty((count, len(self.services)))
        for index, service in enumerate(self.services):
            sigma = service.affinity_sigma
            volume_affinity[:, index] = rng.lognormal(
                mean=-0.5 * sigma * sigma, sigma=sigma, size=count
            )
        return {"rank": ranks, "volume": volume_affinity}

    def adoption_rank(self, subscriber_id: int, service: str) -> float:
        """Fixed adoption percentile of a subscriber for a service."""
        return float(
            self._affinity["rank"][subscriber_id, self._service_index[service]]
        )

    def volume_affinity(self, subscriber_id: int, service: str) -> float:
        """Fixed per-subscriber volume multiplier for a service (mean 1)."""
        return float(
            self._affinity["volume"][subscriber_id, self._service_index[service]]
        )

    def affinity_columns(self, service: str) -> Tuple[np.ndarray, np.ndarray]:
        """(adoption ranks, volume affinities) for every subscriber."""
        index = self._service_index[service]
        return (
            self._affinity["rank"][:, index],
            self._affinity["volume"][:, index],
        )
