"""Curve primitives for the world model.

Every longitudinal quantity in the ground truth — service popularity,
per-user volume, protocol shares, CDN traffic shares, IP pool sizes — is a
function of the calendar date.  This module provides the few shapes needed
to encode the paper's dynamics: piecewise-linear trends, logistic adoption,
sudden steps (protocol launches), and temporary dips (the QUIC kill
switch), plus composition.
"""

from __future__ import annotations

import datetime
import math
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

Curve = Callable[[datetime.date], float]


def _ordinal(day: datetime.date) -> float:
    return float(day.toordinal())


def constant(value: float) -> Curve:
    """A flat curve."""
    return lambda day: value


@dataclass(frozen=True)
class PiecewiseLinear:
    """Linear interpolation through (date, value) knots, clamped outside."""

    knots: Tuple[Tuple[datetime.date, float], ...]

    def __post_init__(self) -> None:
        if not self.knots:
            raise ValueError("at least one knot required")
        dates = [knot[0] for knot in self.knots]
        if dates != sorted(dates):
            raise ValueError("knots must be sorted by date")
        if len(set(dates)) != len(dates):
            raise ValueError("duplicate knot dates")

    def __call__(self, day: datetime.date) -> float:
        knots = self.knots
        if day <= knots[0][0]:
            return knots[0][1]
        if day >= knots[-1][0]:
            return knots[-1][1]
        for index in range(1, len(knots)):
            right_date, right_value = knots[index]
            if day <= right_date:
                left_date, left_value = knots[index - 1]
                span = _ordinal(right_date) - _ordinal(left_date)
                fraction = (_ordinal(day) - _ordinal(left_date)) / span
                return left_value + fraction * (right_value - left_value)
        return knots[-1][1]  # unreachable, defensive


def piecewise(*knots: Tuple[datetime.date, float]) -> Curve:
    """Shorthand constructor for :class:`PiecewiseLinear`."""
    return PiecewiseLinear(tuple(knots))


def logistic(
    midpoint: datetime.date,
    ceiling: float,
    steepness_days: float,
    floor: float = 0.0,
) -> Curve:
    """Logistic adoption: ``floor`` → ``ceiling`` centred on ``midpoint``.

    ``steepness_days`` is the time scale of the transition (smaller is
    sharper).
    """
    if steepness_days <= 0:
        raise ValueError("steepness_days must be positive")
    mid = _ordinal(midpoint)

    def curve(day: datetime.date) -> float:
        z = (_ordinal(day) - mid) / steepness_days
        return floor + (ceiling - floor) / (1.0 + math.exp(-z))

    return curve


def step(when: datetime.date, before: float, after: float) -> Curve:
    """A hard step on ``when`` (the paper's 'sudden changes')."""
    return lambda day: before if day < when else after


def launched(when: datetime.date, curve_after: Curve) -> Curve:
    """Zero before a launch date, ``curve_after`` from then on."""
    return lambda day: 0.0 if day < when else curve_after(day)


def dip(
    base: Curve, start: datetime.date, end: datetime.date, factor: float
) -> Curve:
    """Multiply ``base`` by ``factor`` inside [start, end) — e.g. the
    December-2015 QUIC disable (event D)."""
    return lambda day: base(day) * (factor if start <= day < end else 1.0)


def scaled(base: Curve, factor: float) -> Curve:
    return lambda day: base(day) * factor


def added(*curves: Curve) -> Curve:
    return lambda day: sum(curve(day) for curve in curves)


def multiplied(*curves: Curve) -> Curve:
    def curve(day: datetime.date) -> float:
        product = 1.0
        for factor in curves:
            product *= factor(day)
        return product

    return curve


def clamped(base: Curve, low: float = 0.0, high: float = 1.0) -> Curve:
    return lambda day: min(high, max(low, base(day)))


def normalized_mix(
    components: Sequence[Tuple[str, Curve]]
) -> Callable[[datetime.date], List[Tuple[str, float]]]:
    """Turn weighted component curves into a share mix summing to 1.

    Components whose weight is ≤ 0 on a date are dropped.  If every weight
    is zero the mix is empty.
    """

    def mix(day: datetime.date) -> List[Tuple[str, float]]:
        weights = [(name, curve(day)) for name, curve in components]
        weights = [(name, weight) for name, weight in weights if weight > 0.0]
        total = sum(weight for _, weight in weights)
        if total <= 0.0:
            return []
        return [(name, weight / total) for name, weight in weights]

    return mix
