"""Ground-truth service models: who uses what, how much, over which protocol.

Each :class:`ServiceModel` encodes one service's five-year dynamics as
curves over the calendar:

* ``popularity`` — probability that an active subscriber uses the service
  on a given day (per access technology), the quantity of Fig. 5a/6/7 top;
* ``volume_down`` — mean bytes downloaded per using subscriber per day
  (Fig. 5b/6/7 bottom, Fig. 9);
* ``upload_ratio`` — upload volume as a fraction of download;
* ``protocol_mix`` — the on-the-wire protocol shares (Fig. 8);
* ``flows_per_day`` — flow count scale, feeding the activity criterion.

The calibration constants come straight from the paper's figures; the
per-experiment index of DESIGN.md lists the shape each one must reproduce.
The residual ``Other`` service closes the gap between the named services
and the Fig. 3 per-subscriber totals (300 → 700 MB/day on ADSL).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.services import catalog
from repro.synthesis import curves
from repro.synthesis.curves import Curve
from repro.synthesis.population import Technology
from repro.tstat.flow import WebProtocol

MB = 1_000_000.0
D = datetime.date

ProtocolMix = Callable[[datetime.date], List[Tuple[WebProtocol, float]]]

# ---------------------------------------------------------------------------
# Event dates (Sections 4-5 of the paper).

YOUTUBE_HTTPS_MIGRATION_START = D(2014, 1, 15)  # event A
YOUTUBE_HTTPS_MIGRATION_END = D(2014, 10, 1)
QUIC_LAUNCH = D(2014, 10, 1)  # event B
SPDY_REVEAL = D(2015, 6, 1)  # event C (probe upgrade, see tstat.versions)
QUIC_DISABLE_START = D(2015, 12, 5)  # event D
QUIC_DISABLE_END = D(2016, 1, 12)
HTTP2_MIGRATION = D(2016, 2, 1)  # event E
FBZERO_LAUNCH = D(2016, 11, 10)  # event F
FACEBOOK_AUTOPLAY = D(2014, 3, 10)  # Fig. 9
NETFLIX_ITALY_LAUNCH = D(2015, 10, 22)
NETFLIX_UHD_LAUNCH = D(2016, 10, 15)


@dataclass(frozen=True)
class ThirdPartyContact:
    """Unintentional traffic from embedded objects (Section 4.1).

    Social buttons, telemetry beacons and embedded players make active
    subscribers contact a service's domains without ever visiting it;
    the per-service visit thresholds exist to filter exactly this.
    Byte volumes must stay below the service's threshold.
    """

    probability: float  # P(an active non-user touches the service that day)
    min_bytes: int
    max_bytes: int

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability out of range")
        if not 0 < self.min_bytes <= self.max_bytes:
            raise ValueError("bad byte range")


@dataclass(frozen=True)
class ServiceModel:
    """One service's ground-truth longitudinal behaviour."""

    name: str
    popularity: Dict[Technology, Curve]
    volume_down: Dict[Technology, Curve]
    upload_ratio: Dict[Technology, Curve]
    protocol_mix: ProtocolMix
    flows_per_day: Curve
    volume_sigma: float = 0.9  # lognormal spread of per-day volume
    affinity_sigma: float = 0.7  # persistent per-subscriber preference
    holiday_messaging_boost: bool = False  # WhatsApp-style wish spikes
    third_party: Optional[ThirdPartyContact] = None  # embedded-object noise

    def mean_volume_down(self, technology: Technology, day: datetime.date) -> float:
        return self.volume_down[technology](day)

    def mean_volume_up(self, technology: Technology, day: datetime.date) -> float:
        return self.volume_down[technology](day) * self.upload_ratio[technology](day)


def _per_tech(adsl: Curve, ftth: Curve = None) -> Dict[Technology, Curve]:
    """Build the per-technology map; FTTH defaults to the ADSL curve."""
    return {
        Technology.ADSL: adsl,
        Technology.FTTH: ftth if ftth is not None else adsl,
    }


def _fixed_mix(*shares: Tuple[WebProtocol, float]) -> ProtocolMix:
    total = sum(share for _, share in shares)
    normalized = [(protocol, share / total) for protocol, share in shares]
    return lambda day: list(normalized)


def _mix(components: Sequence[Tuple[WebProtocol, Curve]]) -> ProtocolMix:
    named = curves.normalized_mix(
        [(protocol.value, curve) for protocol, curve in components]
    )

    def mix(day: datetime.date) -> List[Tuple[WebProtocol, float]]:
        return [(WebProtocol(name), share) for name, share in named(day)]

    return mix


def _google_quic_share(ceiling: float) -> Curve:
    """QUIC adoption with launch (B) and the kill-switch dip (D)."""
    ramp = curves.launched(
        QUIC_LAUNCH,
        curves.piecewise(
            (QUIC_LAUNCH, 0.02),
            (D(2015, 6, 1), 0.55 * ceiling),
            (D(2016, 6, 1), 0.85 * ceiling),
            (D(2017, 12, 31), ceiling),
        ),
    )
    return curves.dip(ramp, QUIC_DISABLE_START, QUIC_DISABLE_END, 0.02)


def _spdy_then_http2(peak: float) -> Tuple[Tuple[WebProtocol, Curve], ...]:
    """A SPDY share that migrates to HTTP/2 around event E."""
    spdy = curves.piecewise(
        (D(2013, 7, 1), 0.4 * peak),
        (D(2014, 6, 1), peak),
        (HTTP2_MIGRATION, peak),
        (D(2016, 6, 1), 0.0),
    )
    http2 = curves.piecewise(
        (HTTP2_MIGRATION, 0.0),
        (D(2016, 6, 1), peak),
        (D(2017, 12, 31), 1.3 * peak),
    )
    return ((WebProtocol.SPDY, spdy), (WebProtocol.HTTP2, http2))


# ---------------------------------------------------------------------------
# Per-service builders.  Volumes in bytes/day per using subscriber.


def _google() -> ServiceModel:
    pop = curves.piecewise((D(2013, 7, 1), 0.60), (D(2017, 12, 31), 0.60))
    vol = curves.piecewise((D(2013, 7, 1), 12 * MB), (D(2017, 12, 31), 20 * MB))
    spdy, http2 = _spdy_then_http2(0.30)
    mix = _mix(
        [
            (WebProtocol.HTTP, curves.piecewise((D(2013, 7, 1), 0.20), (D(2015, 1, 1), 0.03), (D(2017, 12, 31), 0.01))),
            (WebProtocol.TLS, curves.piecewise((D(2013, 7, 1), 0.50), (D(2017, 12, 31), 0.25))),
            spdy,
            http2,
            (WebProtocol.QUIC, _google_quic_share(0.40)),
        ]
    )
    return ServiceModel(
        name=catalog.GOOGLE,
        popularity=_per_tech(pop),
        volume_down=_per_tech(vol),
        upload_ratio=_per_tech(curves.constant(0.06)),
        protocol_mix=mix,
        flows_per_day=curves.constant(35.0),
        volume_sigma=0.8,
        third_party=ThirdPartyContact(probability=0.55, min_bytes=2_000, max_bytes=15_000),
    )


def _bing() -> ServiceModel:
    # Constant growth driven by Windows telemetry on bing.com domains.
    pop = curves.piecewise((D(2013, 7, 1), 0.13), (D(2017, 12, 31), 0.45))
    vol = curves.piecewise((D(2013, 7, 1), 1.2 * MB), (D(2017, 12, 31), 2.5 * MB))
    return ServiceModel(
        name=catalog.BING,
        popularity=_per_tech(pop),
        volume_down=_per_tech(vol),
        upload_ratio=_per_tech(curves.constant(0.10)),
        protocol_mix=_fixed_mix((WebProtocol.TLS, 0.9), (WebProtocol.HTTP, 0.1)),
        flows_per_day=curves.constant(12.0),
        volume_sigma=0.6,
    )


def _duckduckgo() -> ServiceModel:
    pop = curves.piecewise((D(2013, 7, 1), 0.001), (D(2017, 12, 31), 0.003))
    return ServiceModel(
        name=catalog.DUCKDUCKGO,
        popularity=_per_tech(pop),
        volume_down=_per_tech(curves.constant(1.0 * MB)),
        upload_ratio=_per_tech(curves.constant(0.08)),
        protocol_mix=_fixed_mix((WebProtocol.TLS, 1.0)),
        flows_per_day=curves.constant(10.0),
        volume_sigma=0.6,
    )


def _facebook_volume() -> Curve:
    """Fig. 9: auto-play roughly triples the 35 MB/day of early 2014."""
    return curves.piecewise(
        (D(2013, 7, 1), 30 * MB),
        (FACEBOOK_AUTOPLAY, 35 * MB),
        (D(2014, 4, 15), 70 * MB),  # first roll-out month
        (D(2014, 5, 25), 71 * MB),  # apparent pause during May
        (D(2014, 7, 10), 90 * MB),  # second wave
        (D(2015, 12, 31), 100 * MB),
        (D(2017, 12, 31), 112 * MB),
    )


def _facebook() -> ServiceModel:
    pop = curves.piecewise((D(2013, 7, 1), 0.50), (D(2017, 12, 31), 0.57))
    spdy, http2 = _spdy_then_http2(0.40)
    zero = curves.launched(
        FBZERO_LAUNCH,
        curves.piecewise((FBZERO_LAUNCH, 0.60), (D(2017, 3, 1), 0.68), (D(2017, 12, 31), 0.72)),
    )
    mix = _mix(
        [
            (WebProtocol.HTTP, curves.piecewise((D(2013, 7, 1), 0.10), (D(2015, 1, 1), 0.01))),
            (WebProtocol.TLS, curves.piecewise((D(2013, 7, 1), 0.50), (D(2016, 10, 1), 0.20), (D(2017, 12, 31), 0.10))),
            spdy,
            http2,
            (WebProtocol.FBZERO, zero),
        ]
    )
    return ServiceModel(
        name=catalog.FACEBOOK,
        popularity=_per_tech(pop),
        volume_down=_per_tech(_facebook_volume()),
        upload_ratio=_per_tech(curves.constant(0.09)),
        protocol_mix=mix,
        flows_per_day=curves.constant(45.0),
        volume_sigma=0.9,
        third_party=ThirdPartyContact(probability=0.65, min_bytes=8_000, max_bytes=150_000),
    )


def _instagram() -> ServiceModel:
    pop = curves.piecewise(
        (D(2013, 7, 1), 0.04),
        (D(2015, 1, 1), 0.10),
        (D(2016, 1, 1), 0.18),
        (D(2017, 1, 1), 0.27),
        (D(2017, 12, 31), 0.35),
    )
    vol_adsl = curves.piecewise(
        (D(2013, 7, 1), 5 * MB),
        (D(2015, 1, 1), 20 * MB),
        (D(2016, 1, 1), 45 * MB),
        (D(2017, 1, 1), 80 * MB),
        (D(2017, 12, 31), 120 * MB),
    )
    vol_ftth = curves.piecewise(
        (D(2013, 7, 1), 6 * MB),
        (D(2015, 1, 1), 26 * MB),
        (D(2016, 1, 1), 70 * MB),
        (D(2017, 1, 1), 130 * MB),
        (D(2017, 12, 31), 200 * MB),
    )
    spdy, http2 = _spdy_then_http2(0.25)
    mix = _mix(
        [
            (WebProtocol.TLS, curves.piecewise((D(2013, 7, 1), 0.75), (D(2017, 12, 31), 0.35))),
            spdy,
            http2,
        ]
    )
    return ServiceModel(
        name=catalog.INSTAGRAM,
        popularity=_per_tech(pop),
        volume_down=_per_tech(vol_adsl, vol_ftth),
        upload_ratio=_per_tech(
            curves.piecewise((D(2013, 7, 1), 0.10), (D(2017, 12, 31), 0.15)),
            curves.piecewise((D(2013, 7, 1), 0.12), (D(2017, 12, 31), 0.20)),
        ),
        protocol_mix=mix,
        flows_per_day=curves.constant(30.0),
        volume_sigma=1.0,
    )


def _twitter() -> ServiceModel:
    pop = curves.piecewise((D(2013, 7, 1), 0.11), (D(2017, 12, 31), 0.16))
    return ServiceModel(
        name=catalog.TWITTER,
        popularity=_per_tech(pop),
        volume_down=_per_tech(curves.piecewise((D(2013, 7, 1), 6 * MB), (D(2017, 12, 31), 12 * MB))),
        upload_ratio=_per_tech(curves.constant(0.08)),
        protocol_mix=_fixed_mix((WebProtocol.TLS, 0.8), (WebProtocol.HTTP2, 0.2)),
        flows_per_day=curves.constant(20.0),
        third_party=ThirdPartyContact(probability=0.25, min_bytes=5_000, max_bytes=80_000),
    )


def _linkedin() -> ServiceModel:
    pop = curves.piecewise((D(2013, 7, 1), 0.035), (D(2017, 12, 31), 0.08))
    return ServiceModel(
        name=catalog.LINKEDIN,
        popularity=_per_tech(pop),
        volume_down=_per_tech(curves.constant(3 * MB)),
        upload_ratio=_per_tech(curves.constant(0.08)),
        protocol_mix=_fixed_mix((WebProtocol.TLS, 1.0)),
        flows_per_day=curves.constant(12.0),
    )


def _youtube() -> ServiceModel:
    pop = curves.piecewise((D(2013, 7, 1), 0.38), (D(2016, 1, 1), 0.43), (D(2017, 12, 31), 0.45))
    vol = curves.piecewise(
        (D(2013, 7, 1), 230 * MB),
        (D(2015, 1, 1), 300 * MB),
        (D(2016, 6, 1), 370 * MB),
        (D(2017, 12, 31), 460 * MB),
    )
    # Event A: the HTTPS migration through 2014.
    http_share = curves.piecewise(
        (D(2013, 7, 1), 1.0),
        (YOUTUBE_HTTPS_MIGRATION_START, 1.0),
        (YOUTUBE_HTTPS_MIGRATION_END, 0.04),
        (D(2017, 12, 31), 0.01),
    )
    tls_share = curves.piecewise(
        (D(2013, 7, 1), 0.0),
        (YOUTUBE_HTTPS_MIGRATION_START, 0.0),
        (YOUTUBE_HTTPS_MIGRATION_END, 0.9),
        (D(2016, 1, 1), 0.60),
        (D(2017, 12, 31), 0.50),
    )
    mix = _mix(
        [
            (WebProtocol.HTTP, http_share),
            (WebProtocol.TLS, tls_share),
            (WebProtocol.QUIC, _google_quic_share(0.50)),
        ]
    )
    return ServiceModel(
        name=catalog.YOUTUBE,
        popularity=_per_tech(pop),
        volume_down=_per_tech(vol),  # "no differences between ADSL and FTTH"
        upload_ratio=_per_tech(
            curves.piecewise((D(2013, 7, 1), 0.02), (D(2017, 12, 31), 0.03)),
            curves.piecewise((D(2013, 7, 1), 0.03), (D(2017, 12, 31), 0.06)),
        ),
        protocol_mix=mix,
        flows_per_day=curves.constant(25.0),
        volume_sigma=1.1,
        third_party=ThirdPartyContact(probability=0.40, min_bytes=20_000, max_bytes=380_000),
    )


def _netflix() -> ServiceModel:
    pop_ftth = curves.launched(
        NETFLIX_ITALY_LAUNCH,
        curves.piecewise(
            (NETFLIX_ITALY_LAUNCH, 0.005),
            (D(2016, 6, 1), 0.04),
            (D(2017, 1, 1), 0.07),
            (D(2017, 12, 31), 0.10),
        ),
    )
    pop_adsl = curves.launched(
        NETFLIX_ITALY_LAUNCH,
        curves.piecewise(
            (NETFLIX_ITALY_LAUNCH, 0.004),
            (D(2016, 6, 1), 0.025),
            (D(2017, 1, 1), 0.04),
            (D(2017, 12, 31), 0.058),
        ),
    )
    vol_adsl = curves.launched(
        NETFLIX_ITALY_LAUNCH,
        curves.piecewise(
            (NETFLIX_ITALY_LAUNCH, 480 * MB),
            (D(2016, 10, 1), 600 * MB),
            (D(2017, 12, 31), 620 * MB),
        ),
    )
    # UHD (October 2016) pushes FTTH close to 1 GB/day.
    vol_ftth = curves.launched(
        NETFLIX_ITALY_LAUNCH,
        curves.piecewise(
            (NETFLIX_ITALY_LAUNCH, 500 * MB),
            (NETFLIX_UHD_LAUNCH, 620 * MB),
            (D(2017, 3, 1), 850 * MB),
            (D(2017, 12, 31), 980 * MB),
        ),
    )
    return ServiceModel(
        name=catalog.NETFLIX,
        popularity=_per_tech(pop_adsl, pop_ftth),
        volume_down=_per_tech(vol_adsl, vol_ftth),
        upload_ratio=_per_tech(curves.constant(0.015)),
        protocol_mix=_fixed_mix((WebProtocol.TLS, 1.0)),
        flows_per_day=curves.constant(18.0),
        volume_sigma=0.6,  # binge vs single-episode days
        affinity_sigma=0.45,  # adopter persistence, tame at small populations
    )


def _adult() -> ServiceModel:
    pop = curves.constant(0.10)
    mix = _mix(
        [
            (WebProtocol.HTTP, curves.piecewise((D(2013, 7, 1), 0.9), (D(2017, 12, 31), 0.25))),
            (WebProtocol.TLS, curves.piecewise((D(2013, 7, 1), 0.1), (D(2017, 12, 31), 0.75))),
        ]
    )
    return ServiceModel(
        name=catalog.ADULT,
        popularity=_per_tech(pop),
        volume_down=_per_tech(curves.constant(60 * MB)),
        upload_ratio=_per_tech(curves.constant(0.02)),
        protocol_mix=mix,
        flows_per_day=curves.constant(15.0),
        volume_sigma=1.1,
    )


def _spotify() -> ServiceModel:
    pop = curves.piecewise((D(2013, 7, 1), 0.015), (D(2017, 12, 31), 0.10))
    return ServiceModel(
        name=catalog.SPOTIFY,
        popularity=_per_tech(pop),
        volume_down=_per_tech(curves.piecewise((D(2013, 7, 1), 18 * MB), (D(2017, 12, 31), 30 * MB))),
        upload_ratio=_per_tech(curves.constant(0.03)),
        protocol_mix=_fixed_mix((WebProtocol.TLS, 1.0)),
        flows_per_day=curves.constant(14.0),
    )


def _skype() -> ServiceModel:
    pop = curves.piecewise((D(2013, 7, 1), 0.12), (D(2017, 12, 31), 0.045))
    return ServiceModel(
        name=catalog.SKYPE,
        popularity=_per_tech(pop),
        volume_down=_per_tech(curves.constant(10 * MB)),
        upload_ratio=_per_tech(curves.constant(0.70)),  # symmetric calls
        protocol_mix=_fixed_mix((WebProtocol.OTHER, 0.8), (WebProtocol.TLS, 0.2)),
        flows_per_day=curves.constant(12.0),
    )


def _whatsapp() -> ServiceModel:
    pop = curves.piecewise(
        (D(2013, 7, 1), 0.18),
        (D(2015, 1, 1), 0.38),
        (D(2016, 1, 1), 0.50),
        (D(2017, 1, 1), 0.57),
        (D(2017, 12, 31), 0.60),  # near saturation
    )
    vol = curves.piecewise(
        (D(2013, 7, 1), 1.2 * MB),
        (D(2015, 1, 1), 3 * MB),
        (D(2016, 6, 1), 6.5 * MB),
        (D(2017, 12, 31), 10.5 * MB),
    )
    return ServiceModel(
        name=catalog.WHATSAPP,
        popularity=_per_tech(pop),
        volume_down=_per_tech(vol),
        upload_ratio=_per_tech(curves.constant(0.45)),  # people send media too
        protocol_mix=_fixed_mix((WebProtocol.TLS, 0.6), (WebProtocol.OTHER, 0.4)),
        flows_per_day=curves.constant(22.0),
        volume_sigma=0.9,
        holiday_messaging_boost=True,
    )


def _telegram() -> ServiceModel:
    pop = curves.piecewise((D(2013, 7, 1), 0.004), (D(2015, 1, 1), 0.02), (D(2017, 12, 31), 0.06))
    return ServiceModel(
        name=catalog.TELEGRAM,
        popularity=_per_tech(pop),
        volume_down=_per_tech(curves.piecewise((D(2013, 7, 1), 1 * MB), (D(2017, 12, 31), 4 * MB))),
        upload_ratio=_per_tech(curves.constant(0.40)),
        protocol_mix=_fixed_mix((WebProtocol.TLS, 0.5), (WebProtocol.OTHER, 0.5)),
        flows_per_day=curves.constant(15.0),
        holiday_messaging_boost=True,
    )


def _snapchat() -> ServiceModel:
    """Rise through 2015, peak 2016, volume collapse with sticky installs."""
    pop = curves.piecewise(
        (D(2013, 7, 1), 0.002),
        (D(2014, 9, 1), 0.01),
        (D(2015, 6, 1), 0.05),
        (D(2016, 3, 1), 0.10),  # the peak year
        (D(2017, 1, 1), 0.095),
        (D(2017, 12, 31), 0.085),  # "popularity is mostly unaffected"
    )
    vol = curves.piecewise(
        (D(2013, 7, 1), 2 * MB),
        (D(2015, 1, 1), 25 * MB),
        (D(2015, 10, 1), 70 * MB),
        (D(2016, 4, 1), 100 * MB),  # up to 100 MB daily!
        (D(2016, 12, 1), 60 * MB),
        (D(2017, 7, 1), 25 * MB),
        (D(2017, 12, 31), 18 * MB),  # hardly used anymore
    )
    return ServiceModel(
        name=catalog.SNAPCHAT,
        popularity=_per_tech(pop),
        volume_down=_per_tech(vol),
        upload_ratio=_per_tech(curves.constant(0.35)),
        protocol_mix=_fixed_mix((WebProtocol.TLS, 1.0)),
        flows_per_day=curves.constant(18.0),
        volume_sigma=1.0,
    )


def _amazon() -> ServiceModel:
    pop = curves.piecewise((D(2013, 7, 1), 0.05), (D(2017, 12, 31), 0.16))
    mix = _mix(
        [
            (WebProtocol.HTTP, curves.piecewise((D(2013, 7, 1), 0.4), (D(2016, 1, 1), 0.05))),
            (WebProtocol.TLS, curves.piecewise((D(2013, 7, 1), 0.6), (D(2016, 1, 1), 0.85))),
            (WebProtocol.HTTP2, curves.launched(D(2016, 6, 1), curves.constant(0.25))),
        ]
    )
    return ServiceModel(
        name=catalog.AMAZON,
        popularity=_per_tech(pop),
        volume_down=_per_tech(curves.piecewise((D(2013, 7, 1), 6 * MB), (D(2017, 12, 31), 12 * MB))),
        upload_ratio=_per_tech(curves.constant(0.06)),
        protocol_mix=mix,
        flows_per_day=curves.constant(18.0),
    )


def _ebay() -> ServiceModel:
    pop = curves.piecewise((D(2013, 7, 1), 0.08), (D(2017, 12, 31), 0.06))
    mix = _mix(
        [
            (WebProtocol.HTTP, curves.piecewise((D(2013, 7, 1), 0.6), (D(2016, 6, 1), 0.1))),
            (WebProtocol.TLS, curves.piecewise((D(2013, 7, 1), 0.4), (D(2016, 6, 1), 0.9))),
        ]
    )
    return ServiceModel(
        name=catalog.EBAY,
        popularity=_per_tech(pop),
        volume_down=_per_tech(curves.constant(5 * MB)),
        upload_ratio=_per_tech(curves.constant(0.06)),
        protocol_mix=mix,
        flows_per_day=curves.constant(14.0),
    )


def _peer_to_peer() -> ServiceModel:
    """The hardcore-but-shrinking P2P community of Fig. 6a."""
    pop_adsl = curves.piecewise(
        (D(2013, 7, 1), 0.145),
        (D(2015, 1, 1), 0.115),
        (D(2016, 6, 1), 0.09),
        (D(2017, 12, 31), 0.05),
    )
    pop_ftth = curves.piecewise(
        (D(2013, 7, 1), 0.15),
        (D(2015, 1, 1), 0.115),
        (D(2016, 1, 1), 0.08),  # FTTH users abandon earlier
        (D(2017, 12, 31), 0.045),
    )
    # ~400 MB of P2P data *exchanged* (down + up) by the hardcore group.
    vol_adsl = curves.piecewise(
        (D(2013, 7, 1), 230 * MB),
        (D(2016, 10, 1), 225 * MB),  # volume holds until end of 2016...
        (D(2017, 12, 31), 140 * MB),  # ...then starts to decrease
    )
    vol_ftth = curves.piecewise(
        (D(2013, 7, 1), 240 * MB),
        (D(2016, 3, 1), 215 * MB),  # FTTH volume decline starts earlier
        (D(2017, 12, 31), 130 * MB),
    )
    upload_adsl = curves.piecewise(
        (D(2013, 7, 1), 0.95),  # seeding, capped by the 1 Mb/s uplink
        (D(2017, 12, 31), 0.75),
    )
    upload_ftth = curves.piecewise(
        (D(2013, 7, 1), 1.9),  # fiber uplink allows over-unity seeding
        (D(2017, 12, 31), 1.2),
    )
    return ServiceModel(
        name=catalog.PEER_TO_PEER,
        popularity=_per_tech(pop_adsl, pop_ftth),
        volume_down=_per_tech(vol_adsl, vol_ftth),
        upload_ratio=_per_tech(upload_adsl, upload_ftth),
        protocol_mix=_fixed_mix((WebProtocol.P2P, 1.0)),
        flows_per_day=curves.constant(80.0),
        volume_sigma=1.2,
        affinity_sigma=0.9,  # a distinct hardcore community
    )


def _other() -> ServiceModel:
    """Residual web: closes the Fig. 3 totals (300 → 700 MB/day ADSL).

    Its protocol mix carries the web-wide slow HTTPS migration: HTTP falls
    from dominating 2013 to ~25 % of web traffic at the end of 2017.
    """
    vol_adsl = curves.piecewise(
        (D(2013, 7, 1), 118 * MB),
        (D(2014, 4, 1), 140 * MB),
        (D(2015, 1, 1), 185 * MB),
        (D(2016, 6, 1), 265 * MB),
        (D(2017, 4, 1), 330 * MB),
        (D(2017, 12, 31), 345 * MB),
    )
    vol_ftth = curves.piecewise(
        (D(2013, 7, 1), 136 * MB),
        (D(2014, 4, 1), 161 * MB),
        (D(2015, 1, 1), 213 * MB),
        (D(2016, 6, 1), 305 * MB),
        (D(2017, 4, 1), 380 * MB),
        (D(2017, 12, 31), 397 * MB),
    )
    mix = _mix(
        [
            (
                WebProtocol.HTTP,
                curves.piecewise(
                    (D(2013, 7, 1), 0.82),
                    (D(2015, 1, 1), 0.68),
                    (D(2016, 6, 1), 0.52),
                    (D(2017, 12, 31), 0.40),
                ),
            ),
            (
                WebProtocol.TLS,
                curves.piecewise(
                    (D(2013, 7, 1), 0.18),
                    (D(2015, 1, 1), 0.30),
                    (D(2016, 6, 1), 0.42),
                    (D(2017, 12, 31), 0.48),
                ),
            ),
            (
                WebProtocol.HTTP2,
                curves.launched(
                    HTTP2_MIGRATION,
                    curves.piecewise((HTTP2_MIGRATION, 0.0), (D(2017, 12, 31), 0.12)),
                ),
            ),
        ]
    )
    # Upload grows with cloud storage / user-generated content (Section 3.2);
    # ADSL uploads stay tighter, pinned by the 1 Mb/s uplink.
    upload_adsl = curves.piecewise((D(2013, 7, 1), 0.05), (D(2017, 12, 31), 0.06))
    upload_ftth = curves.piecewise((D(2013, 7, 1), 0.08), (D(2017, 12, 31), 0.13))
    return ServiceModel(
        name=catalog.OTHER,
        popularity=_per_tech(curves.constant(1.0)),  # everyone browses
        volume_down=_per_tech(vol_adsl, vol_ftth),
        upload_ratio=_per_tech(upload_adsl, upload_ftth),
        protocol_mix=mix,
        flows_per_day=curves.constant(60.0),
        volume_sigma=1.35,
        affinity_sigma=0.6,
    )


def build_default_services() -> Tuple[ServiceModel, ...]:
    """Every modelled service, the Fig. 5 set plus the residual."""
    return (
        _google(),
        _bing(),
        _duckduckgo(),
        _facebook(),
        _instagram(),
        _twitter(),
        _linkedin(),
        _youtube(),
        _netflix(),
        _adult(),
        _spotify(),
        _skype(),
        _whatsapp(),
        _telegram(),
        _snapchat(),
        _amazon(),
        _ebay(),
        _peer_to_peer(),
        _other(),
    )
