"""Traffic generation: drawing measurements from the world model.

Three fidelity tiers (DESIGN.md §5), all deterministic per (seed, day):

* :meth:`TrafficGenerator.generate_day` — the **aggregate tier**: per
  (subscriber, service) daily usage rows plus per-service protocol volume
  rows.  This is exactly the output schema of the stage-1 aggregation job,
  and what the 54-month analyses consume.
* :meth:`TrafficGenerator.generate_hourly` — 10-minute-bin volumes for the
  hour-of-day analysis (Fig. 4).
* :meth:`TrafficGenerator.expand_flows_batch` — the **flow tier**: usage
  rows expanded into one columnar :class:`~repro.tstat.flowbatch.FlowBatch`
  with server addresses, domains, per-flow protocols (as labelled by that
  day's probe software) and RTT summaries.  Used by the RTT and
  infrastructure analyses; :meth:`TrafficGenerator.expand_flows` is the
  row-view wrapper returning the identical :class:`FlowRecord` list.

Generation is vectorized per (day, service) over the subscriber axis.
"""

from __future__ import annotations

import datetime
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dataflow.columnar import ColumnSpec, ColumnarCodec
from repro.dataflow.datalake import LineCodec, tsv_codec
from repro.services import catalog
from repro.synthesis import studycalendar
from repro.synthesis.population import Technology
from repro.synthesis.studycalendar import BINS_PER_DAY
from repro.synthesis.world import World
from repro.telemetry import runtime as telemetry
from repro.tstat.flow import (
    FlowRecord,
    NameSource,
    WebProtocol,
)
from repro.tstat.flowbatch import (
    PROTOCOLS,
    TCP_CODE,
    UDP_CODE,
    FlowBatch,
    FlowBatchBuilder,
    StringTable,
    name_source_code,
    protocol_code,
)
from repro.tstat.versions import capabilities_on

_HEAVINESS_NORM = math.exp(-0.5 * 0.6 * 0.6)  # normalize lognormal(0, 0.6) to mean 1
_HOLIDAY_VOLUME_BOOST = 2.5
_HOLIDAY_USE_BOOST = 1.25
_BACKGROUND_FLOWS = 4
_BACKGROUND_BYTES_DOWN = 8_000
_BACKGROUND_BYTES_UP = 2_000


@dataclass(frozen=True)
class DailyUsage:
    """Stage-1 schema: one (day, subscriber, service) aggregate."""

    day: datetime.date
    subscriber_id: int
    technology: Technology
    pop: str
    service: str
    bytes_down: int
    bytes_up: int
    flows: int


@dataclass(frozen=True)
class ProtocolUsage:
    """Per-day traffic of one service over one *reported* protocol label."""

    day: datetime.date
    service: str
    protocol: WebProtocol
    total_bytes: int


@dataclass(frozen=True)
class HourlyVolume:
    """Downloaded bytes of one technology in one 10-minute bin."""

    day: datetime.date
    technology: Technology
    bin_index: int
    bytes_down: int


@dataclass
class DayShardContext:
    """Full-day sidecar carried by a *sharded* :class:`DayTraffic`.

    Sharded generation replays every RNG stream at full population width
    (DESIGN.md §15) and restricts only row *emission* to the shard's
    ``[lo, hi)`` subscriber range.  The context captures the full-day
    usage skeleton — one entry per canonical usage row, in the exact
    order the unsharded generator would have emitted them — so the flow
    tier can reproduce the unsharded draw sequence without materializing
    the other shards' row objects.
    """

    lo: int
    hi: int
    services: Tuple[str, ...]  # distinct services, first-appearance order
    row_service: np.ndarray  # int64 codes into ``services``
    row_subscriber: np.ndarray  # int64
    row_ftth: np.ndarray  # bool
    row_pop: np.ndarray  # str
    row_bytes_down: np.ndarray  # int64
    row_bytes_up: np.ndarray  # int64
    row_flows: np.ndarray  # int64
    emit_positions: np.ndarray  # skeleton positions of this shard's usage rows
    tech_bytes_down: Dict[Technology, int]  # full-day downloads per technology

    @property
    def row_count(self) -> int:
        return int(self.row_flows.size)


@dataclass(frozen=True)
class DayTraffic:
    """Everything the aggregate tier produces for one day."""

    day: datetime.date
    usage: Tuple[DailyUsage, ...]
    protocols: Tuple[ProtocolUsage, ...]
    shard_ctx: Optional[DayShardContext] = None


_USAGE_LINES: LineCodec[DailyUsage] = tsv_codec(
    from_fields=lambda fields: DailyUsage(
        day=datetime.date.fromisoformat(fields[0]),
        subscriber_id=int(fields[1]),
        technology=Technology(fields[2]),
        pop=fields[3],
        service=fields[4],
        bytes_down=int(fields[5]),
        bytes_up=int(fields[6]),
        flows=int(fields[7]),
    ),
    to_fields=lambda row: [
        row.day.isoformat(),
        str(row.subscriber_id),
        row.technology.value,
        row.pop,
        row.service,
        str(row.bytes_down),
        str(row.bytes_up),
        str(row.flows),
    ],
)

USAGE_CODEC: ColumnarCodec[DailyUsage] = ColumnarCodec(
    encode=_USAGE_LINES.encode,
    decode=_USAGE_LINES.decode,
    columns=[
        ColumnSpec("day", "date"),
        ColumnSpec("subscriber_id", "int"),
        ColumnSpec("technology", "str"),
        ColumnSpec("pop", "str"),
        ColumnSpec("service", "str"),
        ColumnSpec("bytes_down", "int"),
        ColumnSpec("bytes_up", "int"),
        ColumnSpec("flows", "int"),
    ],
    to_row=lambda row: (
        row.day,
        row.subscriber_id,
        row.technology.value,
        row.pop,
        row.service,
        row.bytes_down,
        row.bytes_up,
        row.flows,
    ),
    from_row=lambda row: DailyUsage(
        day=row[0],
        subscriber_id=row[1],
        technology=Technology(row[2]),
        pop=row[3],
        service=row[4],
        bytes_down=row[5],
        bytes_up=row[6],
        flows=row[7],
    ),
    zone_columns=("service", "pop", "technology"),
    day_column="day",
)

_PROTOCOL_LINES: LineCodec[ProtocolUsage] = tsv_codec(
    from_fields=lambda fields: ProtocolUsage(
        day=datetime.date.fromisoformat(fields[0]),
        service=fields[1],
        protocol=WebProtocol(fields[2]),
        total_bytes=int(fields[3]),
    ),
    to_fields=lambda row: [
        row.day.isoformat(),
        row.service,
        row.protocol.value,
        str(row.total_bytes),
    ],
)

PROTOCOL_CODEC: ColumnarCodec[ProtocolUsage] = ColumnarCodec(
    encode=_PROTOCOL_LINES.encode,
    decode=_PROTOCOL_LINES.decode,
    columns=[
        ColumnSpec("day", "date"),
        ColumnSpec("service", "str"),
        ColumnSpec("protocol", "str"),
        ColumnSpec("total_bytes", "int"),
    ],
    to_row=lambda row: (
        row.day,
        row.service,
        row.protocol.value,
        row.total_bytes,
    ),
    from_row=lambda row: ProtocolUsage(
        day=row[0],
        service=row[1],
        protocol=WebProtocol(row[2]),
        total_bytes=row[3],
    ),
    zone_columns=("service", "protocol"),
    day_column="day",
)


class TrafficGenerator:
    """Draws daily traffic from a :class:`World`."""

    def __init__(self, world: World) -> None:
        self.world = world
        subscribers = world.population.subscribers
        self._count = len(subscribers)
        self._ids = np.arange(self._count)
        self._is_ftth = np.array(
            [sub.technology is Technology.FTTH for sub in subscribers]
        )
        self._business = np.array([sub.business for sub in subscribers])
        self._pops = np.array([sub.pop for sub in subscribers])
        self._activity = np.array([sub.activity for sub in subscribers])
        self._heaviness = (
            np.array([sub.heaviness for sub in subscribers]) * _HEAVINESS_NORM
        )
        self._join = np.array([sub.join_date.toordinal() for sub in subscribers])
        self._leave = np.array(
            [
                sub.leave_date.toordinal() if sub.leave_date else 10_000_000
                for sub in subscribers
            ]
        )
        self._subscribers = subscribers

    # -- aggregate tier ------------------------------------------------------

    def generate_day(
        self,
        day: datetime.date,
        shard: Optional[Tuple[int, int]] = None,
    ) -> DayTraffic:
        """Usage and protocol rows for one day (empty during full outage).

        With ``shard=(lo, hi)`` every RNG stream is drawn at full
        population width — exactly as the unsharded path draws it — but
        only rows whose subscriber falls in ``[lo, hi)`` are emitted, and
        the returned traffic carries a :class:`DayShardContext` skeleton
        of the *full* day.  The union of all shards' usage rows is
        bit-identical to the unsharded output.
        """
        rng = self.world.day_rng(day, stream=0)
        ordinal = day.toordinal()
        subscribed = (self._join <= ordinal) & (self._leave >= ordinal)
        probe_up = np.array(
            [not self.world.outages.is_down(pop, day) for pop in self._pops]
        )
        observed = subscribed & probe_up
        if not observed.any():
            return DayTraffic(day=day, usage=(), protocols=())

        sharded = shard is not None
        if sharded:
            shard_lo, shard_hi = shard
            blocks: List[Tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
            block_services: Dict[str, int] = {}
            emit_positions: List[int] = []
            skeleton_offset = 0

        active = observed & (rng.random(self._count) < self._activity)
        usage_rows: List[DailyUsage] = []
        protocol_totals: Dict[Tuple[str, WebProtocol], int] = {}
        capabilities = capabilities_on(day)
        weekly = studycalendar.weekly_factor(day)
        holiday = studycalendar.is_christmas_period(day) or studycalendar.is_new_year(
            day
        )
        # season_factor takes only two values per day (business / residential);
        # the np.where below reproduces the former per-index Python loop
        # bit-for-bit at vector speed.
        season_business = studycalendar.season_factor(day, 1.0)
        season_residential = studycalendar.season_factor(day, 0.0)

        for service in self.world.services:
            ranks, volume_affinity = self.world.affinity_columns(service.name)
            pop_adsl = service.popularity[Technology.ADSL](day)
            pop_ftth = service.popularity[Technology.FTTH](day)
            popularity = np.where(self._is_ftth, pop_ftth, pop_adsl)
            overshoot = (
                1.0
                if service.name == catalog.OTHER
                else self.world.config.adoption_overshoot
            )
            adoption = np.minimum(1.0, popularity * overshoot)
            with np.errstate(divide="ignore", invalid="ignore"):
                use_probability = np.where(
                    adoption > 0, popularity / np.maximum(adoption, 1e-12), 0.0
                )
            if holiday and service.holiday_messaging_boost:
                use_probability = np.minimum(1.0, use_probability * _HOLIDAY_USE_BOOST)
            users = (
                active
                & (ranks < adoption)
                & (rng.random(self._count) < use_probability)
            )
            indices = np.nonzero(users)[0]
            if indices.size == 0:
                continue

            vol_adsl = service.volume_down[Technology.ADSL](day)
            vol_ftth = service.volume_down[Technology.FTTH](day)
            mean_down = np.where(self._is_ftth[indices], vol_ftth, vol_adsl)
            season = np.where(
                self._business[indices], season_business, season_residential
            )
            sigma = service.volume_sigma
            noise = rng.lognormal(-0.5 * sigma * sigma, sigma, indices.size)
            base = (
                mean_down
                * self._heaviness[indices]
                * volume_affinity[indices]
                * weekly
                * season
            )
            down = base * noise
            if holiday and service.holiday_messaging_boost:
                down = down * _HOLIDAY_VOLUME_BOOST
            ratio_adsl = service.upload_ratio[Technology.ADSL](day)
            ratio_ftth = service.upload_ratio[Technology.FTTH](day)
            ratios = np.where(self._is_ftth[indices], ratio_ftth, ratio_adsl)
            # Uploads follow the subscriber's base rate with milder daily
            # noise than downloads: seeding and cloud sync are steadier
            # than bursty video fetching (and ADSL's uplink clips bursts).
            up = base * ratios * rng.lognormal(-0.18, 0.6, indices.size)
            if holiday and service.holiday_messaging_boost:
                up = up * _HOLIDAY_VOLUME_BOOST
            flow_mean = max(1.0, service.flows_per_day(day))
            flows = np.maximum(1, rng.poisson(flow_mean, indices.size))

            down_int = np.maximum(1_000, down).astype(np.int64)
            up_int = np.maximum(200, up).astype(np.int64)
            if not sharded:
                for position, index in enumerate(indices):
                    usage_rows.append(
                        DailyUsage(
                            day=day,
                            subscriber_id=int(index),
                            technology=Technology.FTTH
                            if self._is_ftth[index]
                            else Technology.ADSL,
                            pop=str(self._pops[index]),
                            service=service.name,
                            bytes_down=int(down_int[position]),
                            bytes_up=int(up_int[position]),
                            flows=int(flows[position]),
                        )
                    )
            else:
                local = np.nonzero(
                    (indices >= shard_lo) & (indices < shard_hi)
                )[0]
                for position in local.tolist():
                    index = int(indices[position])
                    usage_rows.append(
                        DailyUsage(
                            day=day,
                            subscriber_id=index,
                            technology=Technology.FTTH
                            if self._is_ftth[index]
                            else Technology.ADSL,
                            pop=str(self._pops[index]),
                            service=service.name,
                            bytes_down=int(down_int[position]),
                            bytes_up=int(up_int[position]),
                            flows=int(flows[position]),
                        )
                    )
                emit_positions.extend((skeleton_offset + local).tolist())
                code = block_services.setdefault(service.name, len(block_services))
                blocks.append(
                    (code, indices, down_int, up_int, flows.astype(np.int64))
                )
                skeleton_offset += indices.size
            service_total = int(down_int.sum() + up_int.sum())

            # Embedded-object noise: active non-users touch the service's
            # domains with volumes below its visit threshold (Section 4.1).
            if service.third_party is not None:
                contact = service.third_party
                nonusers = np.nonzero(active & ~users)[0]
                touched = nonusers[rng.random(nonusers.size) < contact.probability]
                if touched.size:
                    tp_down = rng.integers(
                        contact.min_bytes, contact.max_bytes + 1, touched.size
                    )
                    tp_up = np.maximum(100, tp_down // 8)
                    tp_flows = rng.integers(1, 4, touched.size)
                    if not sharded:
                        for position, index in enumerate(touched):
                            usage_rows.append(
                                DailyUsage(
                                    day=day,
                                    subscriber_id=int(index),
                                    technology=Technology.FTTH
                                    if self._is_ftth[index]
                                    else Technology.ADSL,
                                    pop=str(self._pops[index]),
                                    service=service.name,
                                    bytes_down=int(tp_down[position]),
                                    bytes_up=int(tp_up[position]),
                                    flows=int(tp_flows[position]),
                                )
                            )
                    else:
                        local = np.nonzero(
                            (touched >= shard_lo) & (touched < shard_hi)
                        )[0]
                        for position in local.tolist():
                            index = int(touched[position])
                            usage_rows.append(
                                DailyUsage(
                                    day=day,
                                    subscriber_id=index,
                                    technology=Technology.FTTH
                                    if self._is_ftth[index]
                                    else Technology.ADSL,
                                    pop=str(self._pops[index]),
                                    service=service.name,
                                    bytes_down=int(tp_down[position]),
                                    bytes_up=int(tp_up[position]),
                                    flows=int(tp_flows[position]),
                                )
                            )
                        emit_positions.extend((skeleton_offset + local).tolist())
                        code = block_services.setdefault(
                            service.name, len(block_services)
                        )
                        blocks.append(
                            (code, touched, tp_down.astype(np.int64), tp_up, tp_flows.astype(np.int64))
                        )
                        skeleton_offset += touched.size
                    service_total += int(tp_down.sum() + tp_up.sum())

            for protocol, share in service.protocol_mix(day):
                label = capabilities.reported_label(protocol)
                key = (service.name, label)
                protocol_totals[key] = protocol_totals.get(key, 0) + int(
                    service_total * share
                )

        # Subscribed-but-inactive lines still emit background chatter that
        # must fail the Section 3 activity criterion.
        background = np.nonzero(observed & ~active)[0]
        if not sharded:
            for index in background:
                usage_rows.append(
                    DailyUsage(
                        day=day,
                        subscriber_id=int(index),
                        technology=Technology.FTTH
                        if self._is_ftth[index]
                        else Technology.ADSL,
                        pop=str(self._pops[index]),
                        service=catalog.OTHER,
                        bytes_down=int(rng.integers(1_000, _BACKGROUND_BYTES_DOWN)),
                        bytes_up=int(rng.integers(100, _BACKGROUND_BYTES_UP)),
                        flows=int(rng.integers(1, _BACKGROUND_FLOWS + 1)),
                    )
                )
        elif background.size:
            # The three scalar draws per inactive line interleave on one
            # sequential stream, so every shard replays them full-width
            # and emits only its own range.
            bg_down = np.empty(background.size, dtype=np.int64)
            bg_up = np.empty(background.size, dtype=np.int64)
            bg_flows = np.empty(background.size, dtype=np.int64)
            for position, index in enumerate(background):
                bytes_down = int(rng.integers(1_000, _BACKGROUND_BYTES_DOWN))
                bytes_up = int(rng.integers(100, _BACKGROUND_BYTES_UP))
                flow_count = int(rng.integers(1, _BACKGROUND_FLOWS + 1))
                bg_down[position] = bytes_down
                bg_up[position] = bytes_up
                bg_flows[position] = flow_count
                if shard_lo <= index < shard_hi:
                    usage_rows.append(
                        DailyUsage(
                            day=day,
                            subscriber_id=int(index),
                            technology=Technology.FTTH
                            if self._is_ftth[index]
                            else Technology.ADSL,
                            pop=str(self._pops[index]),
                            service=catalog.OTHER,
                            bytes_down=bytes_down,
                            bytes_up=bytes_up,
                            flows=flow_count,
                        )
                    )
                    emit_positions.append(skeleton_offset + position)
            code = block_services.setdefault(catalog.OTHER, len(block_services))
            blocks.append((code, background, bg_down, bg_up, bg_flows))
            skeleton_offset += background.size

        protocol_rows = tuple(
            ProtocolUsage(day=day, service=service, protocol=protocol, total_bytes=total)
            for (service, protocol), total in sorted(
                protocol_totals.items(), key=lambda item: (item[0][0], item[0][1].value)
            )
        )
        telemetry.count("usage_rows_generated", len(usage_rows))
        if not sharded:
            return DayTraffic(
                day=day, usage=tuple(usage_rows), protocols=protocol_rows
            )
        return DayTraffic(
            day=day,
            usage=tuple(usage_rows),
            protocols=protocol_rows,
            shard_ctx=self._build_shard_context(
                shard_lo, shard_hi, blocks, block_services, emit_positions
            ),
        )

    def _build_shard_context(
        self,
        lo: int,
        hi: int,
        blocks: List[Tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]],
        block_services: Dict[str, int],
        emit_positions: List[int],
    ) -> DayShardContext:
        """Assemble the full-day usage skeleton from per-service blocks."""
        if blocks:
            row_service = np.concatenate(
                [np.full(block[1].size, block[0], dtype=np.int64) for block in blocks]
            )
            row_subscriber = np.concatenate([block[1] for block in blocks]).astype(
                np.int64
            )
            row_down = np.concatenate([block[2] for block in blocks])
            row_up = np.concatenate([block[3] for block in blocks])
            row_flows = np.concatenate([block[4] for block in blocks])
        else:
            row_service = np.empty(0, dtype=np.int64)
            row_subscriber = np.empty(0, dtype=np.int64)
            row_down = np.empty(0, dtype=np.int64)
            row_up = np.empty(0, dtype=np.int64)
            row_flows = np.empty(0, dtype=np.int64)
        row_ftth = self._is_ftth[row_subscriber]
        tech_bytes_down = {
            Technology.ADSL: int(row_down[~row_ftth].sum()),
            Technology.FTTH: int(row_down[row_ftth].sum()),
        }
        return DayShardContext(
            lo=lo,
            hi=hi,
            services=tuple(block_services),
            row_service=row_service,
            row_subscriber=row_subscriber,
            row_ftth=row_ftth,
            row_pop=self._pops[row_subscriber],
            row_bytes_down=row_down,
            row_bytes_up=row_up,
            row_flows=row_flows,
            emit_positions=np.asarray(emit_positions, dtype=np.int64),
            tech_bytes_down=tech_bytes_down,
        )

    # -- hourly tier -----------------------------------------------------------

    def generate_hourly(
        self, day: datetime.date, traffic: Optional[DayTraffic] = None
    ) -> List[HourlyVolume]:
        """Distribute the day's downloads over 10-minute bins (Fig. 4)."""
        traffic = traffic if traffic is not None else self.generate_day(day)
        if traffic.shard_ctx is not None:
            # Sharded traffic only carries this shard's rows; the context
            # holds the full-day totals so every shard derives identical
            # hourly volumes (the lead shard contributes them at fan-in).
            totals = {
                Technology.ADSL: traffic.shard_ctx.tech_bytes_down[Technology.ADSL],
                Technology.FTTH: traffic.shard_ctx.tech_bytes_down[Technology.FTTH],
            }
        else:
            totals = {Technology.ADSL: 0, Technology.FTTH: 0}
            for row in traffic.usage:
                totals[row.technology] += row.bytes_down
        rng = self.world.day_rng(day, stream=1)
        volumes: List[HourlyVolume] = []
        for technology, total in totals.items():
            profile = studycalendar.diurnal_profile(day.year, technology.value)
            noise = rng.lognormal(-0.02, 0.2, BINS_PER_DAY)
            weights = np.array(profile) * noise
            weights /= weights.sum()
            for bin_index, weight in enumerate(weights):
                volumes.append(
                    HourlyVolume(
                        day=day,
                        technology=technology,
                        bin_index=bin_index,
                        bytes_down=int(total * weight),
                    )
                )
        return volumes

    # -- flow tier ---------------------------------------------------------------

    def expand_flows(
        self,
        day: datetime.date,
        traffic: Optional[DayTraffic] = None,
        max_flows_per_usage: int = 8,
    ) -> List[FlowRecord]:
        """Expand usage rows into probe-grade flow records (row view).

        Compatibility wrapper over :meth:`expand_flows_batch`: the study's
        hot path consumes the columnar batch directly, and this method
        materializes the identical record list from it.
        """
        return self.expand_flows_batch(
            day, traffic, max_flows_per_usage=max_flows_per_usage
        ).to_records()

    def expand_flows_batch(
        self,
        day: datetime.date,
        traffic: Optional[DayTraffic] = None,
        max_flows_per_usage: int = 8,
    ) -> FlowBatch:
        """Expand usage rows into one columnar :class:`FlowBatch`.

        Per-flow totals sum exactly to the usage row's bytes; the flow
        *count* is capped (``max_flows_per_usage``) to bound record volume,
        mirroring the scale substitution of DESIGN.md §5.  The expansion
        is **born columnar**: every per-flow quantity is one NumPy draw
        over all of the day's flows (grouped by service for protocol
        mixes and server selection, by deployment inside
        :meth:`~repro.synthesis.infrastructure.ServiceInfrastructure.
        pick_servers`), and the batch columns are assembled directly —
        no per-flow Python loop, no intermediate records.
        ``expand_flows`` materializes the identical row view from this
        batch.
        """
        traffic = traffic if traffic is not None else self.generate_day(day)
        usage = traffic.usage
        if not usage:
            batch = FlowBatchBuilder().build()
            telemetry.count("flows_expanded", 0)
            return batch
        rng = self.world.day_rng(day, stream=2)
        capabilities = capabilities_on(day)
        midnight = datetime.datetime.combine(day, datetime.time()).timestamp()

        row_count = len(usage)
        flows_per_row = np.fromiter(
            (row.flows for row in usage), np.int64, row_count
        )
        counts = np.clip(flows_per_row, 1, max_flows_per_usage)
        starts = np.zeros(row_count, dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        total = int(counts.sum())
        row_of = np.repeat(np.arange(row_count), counts)

        bytes_down_rows = np.fromiter(
            (row.bytes_down for row in usage), np.int64, row_count
        )
        bytes_up_rows = np.fromiter(
            (row.bytes_up for row in usage), np.int64, row_count
        )
        subscriber_rows = np.fromiter(
            (row.subscriber_id for row in usage), np.int64, row_count
        )
        ftth_rows = np.fromiter(
            (row.technology is Technology.FTTH for row in usage),
            bool, row_count,
        )

        # Per-usage-row Dirichlet(0.8) byte-split weights; the integer
        # remainder goes to each row's first flow (as _integer_split does).
        gamma = rng.standard_gamma(0.8, total)
        weights = gamma / np.add.reduceat(gamma, starts)[row_of]
        down = np.floor(bytes_down_rows[row_of] * weights).astype(np.int64)
        down[starts] += bytes_down_rows - np.add.reduceat(down, starts)
        up = np.floor(bytes_up_rows[row_of] * weights).astype(np.int64)
        up[starts] += bytes_up_rows - np.add.reduceat(up, starts)
        packets_down = np.maximum(1, down // 1400)
        packets_up = np.maximum(1, up // 700 + packets_down // 2)

        # Start bins via inverse-CDF over each technology's diurnal curve.
        uniforms = rng.random(total)
        bins = np.empty(total, dtype=np.int64)
        for technology in Technology:
            mask = ftth_rows[row_of] == (technology is Technology.FTTH)
            if not mask.any():
                continue
            cdf = np.cumsum(
                studycalendar.diurnal_profile(day.year, technology.value)
            )
            cdf /= cdf[-1]
            bins[mask] = np.minimum(
                np.searchsorted(cdf, uniforms[mask], side="right"),
                BINS_PER_DAY - 1,
            )
        seconds_per_bin = 86_400 // BINS_PER_DAY
        ts_start = midnight + bins * seconds_per_bin + rng.uniform(0, 600, total)

        # Protocol mixes and server picks, grouped by service
        # (first-appearance order over the usage rows).
        service_index: Dict[str, int] = {}
        for row in usage:
            if row.service not in service_index:
                service_index[row.service] = len(service_index)
        row_service = np.fromiter(
            (service_index[row.service] for row in usage), np.int64, row_count
        )
        flow_service = row_service[row_of]
        true_protocol = np.empty(total, dtype=np.int64)  # codes into PROTOCOLS
        ips = np.empty(total, dtype=np.int64)
        domains = np.empty(total, dtype=object)
        rtt_draw = np.empty(total, dtype=np.float64)
        for service_name, code in service_index.items():
            mask = flow_service == code
            hits = int(np.count_nonzero(mask))
            service = self.world.service(service_name)
            infra = self.world.infrastructure_for(service_name)
            mix = service.protocol_mix(day)
            if not mix:
                true_protocol[mask] = protocol_code(WebProtocol.OTHER)
            else:
                shares = np.array([share for _, share in mix], dtype=np.float64)
                cumulative = np.cumsum(shares / shares.sum())
                picks = np.minimum(
                    np.searchsorted(cumulative, rng.random(hits), side="right"),
                    len(mix) - 1,
                )
                mix_codes = np.fromiter(
                    (protocol_code(protocol) for protocol, _ in mix),
                    np.int64, len(mix),
                )
                true_protocol[mask] = mix_codes[picks]
            ips[mask], domains[mask], rtt_draw[mask] = infra.pick_servers(
                day, rng, hits
            )

        # Protocol-derived columns via 9-entry lookup tables.
        label_of = np.fromiter(
            (
                protocol_code(capabilities.reported_label(protocol))
                for protocol in PROTOCOLS
            ),
            np.int64, len(PROTOCOLS),
        )
        port_of = np.fromiter(
            (_server_port(protocol) for protocol in PROTOCOLS),
            np.int64, len(PROTOCOLS),
        )
        quic = true_protocol == protocol_code(WebProtocol.QUIC)
        p2p = true_protocol == protocol_code(WebProtocol.P2P)
        other = true_protocol == protocol_code(WebProtocol.OTHER)
        transport = np.where(quic, UDP_CODE, TCP_CODE).astype(np.int64)

        duration = np.minimum(
            3600.0, 1.0 + rng.lognormal(0.0, 1.0, total) * (down / 1e6)
        )
        client_port = rng.integers(1024, 65535, total)

        # Flow names: P2P flows are nameless, HTTP/QUIC/FBZERO expose the
        # domain via their own mechanism, OTHER resolves via DNS 70% of
        # the time, everything else carries the SNI.
        source_of = np.full(
            len(PROTOCOLS), name_source_code(NameSource.SNI), dtype=np.int64
        )
        source_of[protocol_code(WebProtocol.P2P)] = name_source_code(NameSource.NONE)
        source_of[protocol_code(WebProtocol.HTTP)] = name_source_code(NameSource.HOST)
        source_of[protocol_code(WebProtocol.QUIC)] = name_source_code(NameSource.QUIC)
        source_of[protocol_code(WebProtocol.FBZERO)] = name_source_code(NameSource.ZERO)
        name_source = source_of[true_protocol]
        named = ~p2p
        other_hits = int(np.count_nonzero(other))
        if other_hits:
            resolved = rng.random(other_hits) < 0.7
            name_source[other] = np.where(
                resolved,
                name_source_code(NameSource.DNS),
                name_source_code(NameSource.NONE),
            )
            unresolved = np.zeros(total, dtype=bool)
            unresolved[other] = ~resolved
            named &= ~unresolved

        # RTT summaries: sampled on TCP non-P2P flows, jittery on P2P,
        # absent on QUIC (Tstat cannot sample UDP handshakes).
        rtt_samples = np.zeros(total, dtype=np.int64)
        rtt_min = np.zeros(total, dtype=np.float64)
        rtt_avg = np.zeros(total, dtype=np.float64)
        rtt_max = np.zeros(total, dtype=np.float64)
        sampled = ~quic & ~p2p
        sampled_hits = int(np.count_nonzero(sampled))
        if sampled_hits:
            rtt_samples[sampled] = np.clip(packets_up[sampled] // 4, 1, 50)
            minimum = rtt_draw[sampled]
            average = minimum * (1.0 + rng.lognormal(-1.5, 0.8, sampled_hits))
            rtt_min[sampled] = minimum
            rtt_avg[sampled] = average
            rtt_max[sampled] = average * (
                1.0 + rng.lognormal(-1.0, 0.8, sampled_hits)
            )
        p2p_hits = int(np.count_nonzero(p2p))
        if p2p_hits:
            # Peers are far and jittery; Tstat still samples TCP P2P flows.
            minimum = rtt_draw[p2p] * rng.lognormal(0.0, 0.5, p2p_hits)
            rtt_samples[p2p] = 5
            rtt_min[p2p] = minimum
            rtt_avg[p2p] = minimum * 1.6
            rtt_max[p2p] = minimum * 3.0

        # Intern names and vantages (first-appearance order, as the
        # builder path produced).
        names_table = StringTable()
        intern_name = names_table.intern
        name_id = np.fromiter(
            (
                intern_name(domain if use else None)
                for domain, use in zip(domains.tolist(), named.tolist())
            ),
            np.int64, total,
        )
        vantage_table = StringTable()
        row_vantage = np.fromiter(
            (vantage_table.intern(row.pop) for row in usage),
            np.int64, row_count,
        )

        batch = FlowBatch(
            client_id=subscriber_rows[row_of],
            server_ip=ips,
            client_port=client_port.astype(np.int64),
            server_port=port_of[true_protocol],
            transport=transport,
            ts_start=ts_start,
            ts_end=ts_start + duration,
            packets_up=packets_up,
            packets_down=packets_down,
            bytes_up=up,
            bytes_down=down,
            protocol=label_of[true_protocol],
            name_id=name_id,
            name_source=name_source,
            rtt_samples=rtt_samples,
            rtt_min=rtt_min,
            rtt_avg=rtt_avg,
            rtt_max=rtt_max,
            vantage_id=row_vantage[row_of],
            names=names_table.values(),
            vantages=vantage_table.values(),
        )
        telemetry.count("flows_expanded", len(batch))
        return batch

    def expand_flows_batch_shard(
        self,
        day: datetime.date,
        ctx: DayShardContext,
        max_flows_per_usage: int = 8,
    ) -> Tuple[FlowBatch, np.ndarray]:
        """Shard view of :meth:`expand_flows_batch`.

        Replays the unsharded flow expansion's RNG draws at full day
        width from the skeleton in ``ctx``, then slices every column to
        the flows whose subscriber falls in the shard's range.  Returns
        the shard's batch plus each flow's position in the full-day flow
        sequence, so order-sensitive consumers (RTT sample lists) can
        restore the unsharded ordering at fan-in.
        """
        rng = self.world.day_rng(day, stream=2)
        capabilities = capabilities_on(day)
        midnight = datetime.datetime.combine(day, datetime.time()).timestamp()

        row_count = ctx.row_count
        if row_count == 0:
            batch = FlowBatchBuilder().build()
            telemetry.count("flows_expanded", 0)
            return batch, np.empty(0, dtype=np.int64)
        counts = np.clip(ctx.row_flows, 1, max_flows_per_usage)
        starts = np.zeros(row_count, dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        total = int(counts.sum())
        row_of = np.repeat(np.arange(row_count), counts)

        bytes_down_rows = ctx.row_bytes_down
        bytes_up_rows = ctx.row_bytes_up
        ftth_rows = ctx.row_ftth
        emit_rows = (ctx.row_subscriber >= ctx.lo) & (ctx.row_subscriber < ctx.hi)
        emit = emit_rows[row_of]

        gamma = rng.standard_gamma(0.8, total)
        weights = gamma / np.add.reduceat(gamma, starts)[row_of]
        down = np.floor(bytes_down_rows[row_of] * weights).astype(np.int64)
        down[starts] += bytes_down_rows - np.add.reduceat(down, starts)
        up = np.floor(bytes_up_rows[row_of] * weights).astype(np.int64)
        up[starts] += bytes_up_rows - np.add.reduceat(up, starts)
        packets_down = np.maximum(1, down // 1400)
        packets_up = np.maximum(1, up // 700 + packets_down // 2)

        uniforms = rng.random(total)
        bins = np.empty(total, dtype=np.int64)
        for technology in Technology:
            mask = ftth_rows[row_of] == (technology is Technology.FTTH)
            if not mask.any():
                continue
            cdf = np.cumsum(
                studycalendar.diurnal_profile(day.year, technology.value)
            )
            cdf /= cdf[-1]
            bins[mask] = np.minimum(
                np.searchsorted(cdf, uniforms[mask], side="right"),
                BINS_PER_DAY - 1,
            )
        seconds_per_bin = 86_400 // BINS_PER_DAY
        ts_start = midnight + bins * seconds_per_bin + rng.uniform(0, 600, total)

        service_index: Dict[str, int] = {
            name: code for code, name in enumerate(ctx.services)
        }
        flow_service = ctx.row_service[row_of]
        true_protocol = np.empty(total, dtype=np.int64)
        ips = np.empty(total, dtype=np.int64)
        domains = np.empty(total, dtype=object)
        rtt_draw = np.empty(total, dtype=np.float64)
        for service_name, code in service_index.items():
            mask = flow_service == code
            hits = int(np.count_nonzero(mask))
            service = self.world.service(service_name)
            infra = self.world.infrastructure_for(service_name)
            mix = service.protocol_mix(day)
            if not mix:
                true_protocol[mask] = protocol_code(WebProtocol.OTHER)
            else:
                shares = np.array([share for _, share in mix], dtype=np.float64)
                cumulative = np.cumsum(shares / shares.sum())
                picks = np.minimum(
                    np.searchsorted(cumulative, rng.random(hits), side="right"),
                    len(mix) - 1,
                )
                mix_codes = np.fromiter(
                    (protocol_code(protocol) for protocol, _ in mix),
                    np.int64, len(mix),
                )
                true_protocol[mask] = mix_codes[picks]
            ips[mask], domains[mask], rtt_draw[mask] = infra.pick_servers(
                day, rng, hits, emit=emit[mask]
            )

        label_of = np.fromiter(
            (
                protocol_code(capabilities.reported_label(protocol))
                for protocol in PROTOCOLS
            ),
            np.int64, len(PROTOCOLS),
        )
        port_of = np.fromiter(
            (_server_port(protocol) for protocol in PROTOCOLS),
            np.int64, len(PROTOCOLS),
        )
        quic = true_protocol == protocol_code(WebProtocol.QUIC)
        p2p = true_protocol == protocol_code(WebProtocol.P2P)
        other = true_protocol == protocol_code(WebProtocol.OTHER)
        transport = np.where(quic, UDP_CODE, TCP_CODE).astype(np.int64)

        duration = np.minimum(
            3600.0, 1.0 + rng.lognormal(0.0, 1.0, total) * (down / 1e6)
        )
        client_port = rng.integers(1024, 65535, total)

        source_of = np.full(
            len(PROTOCOLS), name_source_code(NameSource.SNI), dtype=np.int64
        )
        source_of[protocol_code(WebProtocol.P2P)] = name_source_code(NameSource.NONE)
        source_of[protocol_code(WebProtocol.HTTP)] = name_source_code(NameSource.HOST)
        source_of[protocol_code(WebProtocol.QUIC)] = name_source_code(NameSource.QUIC)
        source_of[protocol_code(WebProtocol.FBZERO)] = name_source_code(NameSource.ZERO)
        name_source = source_of[true_protocol]
        named = ~p2p
        other_hits = int(np.count_nonzero(other))
        if other_hits:
            resolved = rng.random(other_hits) < 0.7
            name_source[other] = np.where(
                resolved,
                name_source_code(NameSource.DNS),
                name_source_code(NameSource.NONE),
            )
            unresolved = np.zeros(total, dtype=bool)
            unresolved[other] = ~resolved
            named &= ~unresolved

        rtt_samples = np.zeros(total, dtype=np.int64)
        rtt_min = np.zeros(total, dtype=np.float64)
        rtt_avg = np.zeros(total, dtype=np.float64)
        rtt_max = np.zeros(total, dtype=np.float64)
        sampled = ~quic & ~p2p
        sampled_hits = int(np.count_nonzero(sampled))
        if sampled_hits:
            rtt_samples[sampled] = np.clip(packets_up[sampled] // 4, 1, 50)
            minimum = rtt_draw[sampled]
            average = minimum * (1.0 + rng.lognormal(-1.5, 0.8, sampled_hits))
            rtt_min[sampled] = minimum
            rtt_avg[sampled] = average
            rtt_max[sampled] = average * (
                1.0 + rng.lognormal(-1.0, 0.8, sampled_hits)
            )
        p2p_hits = int(np.count_nonzero(p2p))
        if p2p_hits:
            minimum = rtt_draw[p2p] * rng.lognormal(0.0, 0.5, p2p_hits)
            rtt_samples[p2p] = 5
            rtt_min[p2p] = minimum
            rtt_avg[p2p] = minimum * 1.6
            rtt_max[p2p] = minimum * 3.0

        # All draws above ran full-width; everything below is shard-local.
        positions = np.nonzero(emit)[0]
        shard_total = int(positions.size)
        sub_named = named[positions]
        sub_domains = domains[positions]
        names_table = StringTable()
        intern_name = names_table.intern
        name_id = np.fromiter(
            (
                intern_name(domain if use else None)
                for domain, use in zip(sub_domains.tolist(), sub_named.tolist())
            ),
            np.int64, shard_total,
        )
        vantage_table = StringTable()
        row_vantage = np.fromiter(
            (vantage_table.intern(str(pop)) for pop in ctx.row_pop[row_of[positions]]),
            np.int64, shard_total,
        )

        batch = FlowBatch(
            client_id=ctx.row_subscriber[row_of[positions]],
            server_ip=ips[positions],
            client_port=client_port[positions].astype(np.int64),
            server_port=port_of[true_protocol[positions]],
            transport=transport[positions],
            ts_start=ts_start[positions],
            ts_end=ts_start[positions] + duration[positions],
            packets_up=packets_up[positions],
            packets_down=packets_down[positions],
            bytes_up=up[positions],
            bytes_down=down[positions],
            protocol=label_of[true_protocol[positions]],
            name_id=name_id,
            name_source=name_source[positions],
            rtt_samples=rtt_samples[positions],
            rtt_min=rtt_min[positions],
            rtt_avg=rtt_avg[positions],
            rtt_max=rtt_max[positions],
            vantage_id=row_vantage,
            names=names_table.values(),
            vantages=vantage_table.values(),
        )
        telemetry.count("flows_expanded", len(batch))
        return batch, positions


def _integer_split(total: int, weights: np.ndarray) -> np.ndarray:
    """Split ``total`` into integer parts proportional to ``weights``."""
    parts = np.floor(total * weights).astype(np.int64)
    parts[0] += total - int(parts.sum())
    return parts


def _server_port(protocol: WebProtocol) -> int:
    if protocol is WebProtocol.HTTP:
        return 80
    if protocol is WebProtocol.P2P:
        return 6881
    if protocol is WebProtocol.OTHER:
        return 5228
    return 443
