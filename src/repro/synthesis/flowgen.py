"""Traffic generation: drawing measurements from the world model.

Three fidelity tiers (DESIGN.md §5), all deterministic per (seed, day):

* :meth:`TrafficGenerator.generate_day` — the **aggregate tier**: per
  (subscriber, service) daily usage rows plus per-service protocol volume
  rows.  This is exactly the output schema of the stage-1 aggregation job,
  and what the 54-month analyses consume.
* :meth:`TrafficGenerator.generate_hourly` — 10-minute-bin volumes for the
  hour-of-day analysis (Fig. 4).
* :meth:`TrafficGenerator.expand_flows_batch` — the **flow tier**: usage
  rows expanded into one columnar :class:`~repro.tstat.flowbatch.FlowBatch`
  with server addresses, domains, per-flow protocols (as labelled by that
  day's probe software) and RTT summaries.  Used by the RTT and
  infrastructure analyses; :meth:`TrafficGenerator.expand_flows` is the
  row-view wrapper returning the identical :class:`FlowRecord` list.

Generation is vectorized per (day, service) over the subscriber axis.
"""

from __future__ import annotations

import datetime
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dataflow.datalake import LineCodec, tsv_codec
from repro.services import catalog
from repro.synthesis import studycalendar
from repro.synthesis.population import Technology
from repro.synthesis.studycalendar import BINS_PER_DAY
from repro.synthesis.world import World
from repro.telemetry import runtime as telemetry
from repro.tstat.flow import (
    FlowRecord,
    NameSource,
    Transport,
    WebProtocol,
)
from repro.tstat.flowbatch import (
    FlowBatch,
    FlowBatchBuilder,
    name_source_code,
    protocol_code,
    transport_code,
)
from repro.tstat.versions import capabilities_on

_HEAVINESS_NORM = math.exp(-0.5 * 0.6 * 0.6)  # normalize lognormal(0, 0.6) to mean 1
_HOLIDAY_VOLUME_BOOST = 2.5
_HOLIDAY_USE_BOOST = 1.25
_BACKGROUND_FLOWS = 4
_BACKGROUND_BYTES_DOWN = 8_000
_BACKGROUND_BYTES_UP = 2_000


@dataclass(frozen=True)
class DailyUsage:
    """Stage-1 schema: one (day, subscriber, service) aggregate."""

    day: datetime.date
    subscriber_id: int
    technology: Technology
    pop: str
    service: str
    bytes_down: int
    bytes_up: int
    flows: int


@dataclass(frozen=True)
class ProtocolUsage:
    """Per-day traffic of one service over one *reported* protocol label."""

    day: datetime.date
    service: str
    protocol: WebProtocol
    total_bytes: int


@dataclass(frozen=True)
class HourlyVolume:
    """Downloaded bytes of one technology in one 10-minute bin."""

    day: datetime.date
    technology: Technology
    bin_index: int
    bytes_down: int


@dataclass(frozen=True)
class DayTraffic:
    """Everything the aggregate tier produces for one day."""

    day: datetime.date
    usage: Tuple[DailyUsage, ...]
    protocols: Tuple[ProtocolUsage, ...]


USAGE_CODEC: LineCodec[DailyUsage] = tsv_codec(
    from_fields=lambda fields: DailyUsage(
        day=datetime.date.fromisoformat(fields[0]),
        subscriber_id=int(fields[1]),
        technology=Technology(fields[2]),
        pop=fields[3],
        service=fields[4],
        bytes_down=int(fields[5]),
        bytes_up=int(fields[6]),
        flows=int(fields[7]),
    ),
    to_fields=lambda row: [
        row.day.isoformat(),
        str(row.subscriber_id),
        row.technology.value,
        row.pop,
        row.service,
        str(row.bytes_down),
        str(row.bytes_up),
        str(row.flows),
    ],
)

PROTOCOL_CODEC: LineCodec[ProtocolUsage] = tsv_codec(
    from_fields=lambda fields: ProtocolUsage(
        day=datetime.date.fromisoformat(fields[0]),
        service=fields[1],
        protocol=WebProtocol(fields[2]),
        total_bytes=int(fields[3]),
    ),
    to_fields=lambda row: [
        row.day.isoformat(),
        row.service,
        row.protocol.value,
        str(row.total_bytes),
    ],
)


class TrafficGenerator:
    """Draws daily traffic from a :class:`World`."""

    def __init__(self, world: World) -> None:
        self.world = world
        subscribers = world.population.subscribers
        self._count = len(subscribers)
        self._ids = np.arange(self._count)
        self._is_ftth = np.array(
            [sub.technology is Technology.FTTH for sub in subscribers]
        )
        self._business = np.array([sub.business for sub in subscribers])
        self._pops = np.array([sub.pop for sub in subscribers])
        self._activity = np.array([sub.activity for sub in subscribers])
        self._heaviness = (
            np.array([sub.heaviness for sub in subscribers]) * _HEAVINESS_NORM
        )
        self._join = np.array([sub.join_date.toordinal() for sub in subscribers])
        self._leave = np.array(
            [
                sub.leave_date.toordinal() if sub.leave_date else 10_000_000
                for sub in subscribers
            ]
        )
        self._subscribers = subscribers

    # -- aggregate tier ------------------------------------------------------

    def generate_day(self, day: datetime.date) -> DayTraffic:
        """Usage and protocol rows for one day (empty during full outage)."""
        rng = self.world.day_rng(day, stream=0)
        ordinal = day.toordinal()
        subscribed = (self._join <= ordinal) & (self._leave >= ordinal)
        probe_up = np.array(
            [not self.world.outages.is_down(pop, day) for pop in self._pops]
        )
        observed = subscribed & probe_up
        if not observed.any():
            return DayTraffic(day=day, usage=(), protocols=())

        active = observed & (rng.random(self._count) < self._activity)
        usage_rows: List[DailyUsage] = []
        protocol_totals: Dict[Tuple[str, WebProtocol], int] = {}
        capabilities = capabilities_on(day)
        weekly = studycalendar.weekly_factor(day)
        holiday = studycalendar.is_christmas_period(day) or studycalendar.is_new_year(
            day
        )

        for service in self.world.services:
            ranks, volume_affinity = self.world.affinity_columns(service.name)
            pop_adsl = service.popularity[Technology.ADSL](day)
            pop_ftth = service.popularity[Technology.FTTH](day)
            popularity = np.where(self._is_ftth, pop_ftth, pop_adsl)
            overshoot = (
                1.0
                if service.name == catalog.OTHER
                else self.world.config.adoption_overshoot
            )
            adoption = np.minimum(1.0, popularity * overshoot)
            with np.errstate(divide="ignore", invalid="ignore"):
                use_probability = np.where(
                    adoption > 0, popularity / np.maximum(adoption, 1e-12), 0.0
                )
            if holiday and service.holiday_messaging_boost:
                use_probability = np.minimum(1.0, use_probability * _HOLIDAY_USE_BOOST)
            users = (
                active
                & (ranks < adoption)
                & (rng.random(self._count) < use_probability)
            )
            indices = np.nonzero(users)[0]
            if indices.size == 0:
                continue

            vol_adsl = service.volume_down[Technology.ADSL](day)
            vol_ftth = service.volume_down[Technology.FTTH](day)
            mean_down = np.where(self._is_ftth[indices], vol_ftth, vol_adsl)
            season = np.array(
                [
                    studycalendar.season_factor(
                        day, 1.0 if self._business[index] else 0.0
                    )
                    for index in indices
                ]
            )
            sigma = service.volume_sigma
            noise = rng.lognormal(-0.5 * sigma * sigma, sigma, indices.size)
            base = (
                mean_down
                * self._heaviness[indices]
                * volume_affinity[indices]
                * weekly
                * season
            )
            down = base * noise
            if holiday and service.holiday_messaging_boost:
                down = down * _HOLIDAY_VOLUME_BOOST
            ratio_adsl = service.upload_ratio[Technology.ADSL](day)
            ratio_ftth = service.upload_ratio[Technology.FTTH](day)
            ratios = np.where(self._is_ftth[indices], ratio_ftth, ratio_adsl)
            # Uploads follow the subscriber's base rate with milder daily
            # noise than downloads: seeding and cloud sync are steadier
            # than bursty video fetching (and ADSL's uplink clips bursts).
            up = base * ratios * rng.lognormal(-0.18, 0.6, indices.size)
            if holiday and service.holiday_messaging_boost:
                up = up * _HOLIDAY_VOLUME_BOOST
            flow_mean = max(1.0, service.flows_per_day(day))
            flows = np.maximum(1, rng.poisson(flow_mean, indices.size))

            down_int = np.maximum(1_000, down).astype(np.int64)
            up_int = np.maximum(200, up).astype(np.int64)
            for position, index in enumerate(indices):
                usage_rows.append(
                    DailyUsage(
                        day=day,
                        subscriber_id=int(index),
                        technology=Technology.FTTH
                        if self._is_ftth[index]
                        else Technology.ADSL,
                        pop=str(self._pops[index]),
                        service=service.name,
                        bytes_down=int(down_int[position]),
                        bytes_up=int(up_int[position]),
                        flows=int(flows[position]),
                    )
                )
            service_total = int(down_int.sum() + up_int.sum())

            # Embedded-object noise: active non-users touch the service's
            # domains with volumes below its visit threshold (Section 4.1).
            if service.third_party is not None:
                contact = service.third_party
                nonusers = np.nonzero(active & ~users)[0]
                touched = nonusers[rng.random(nonusers.size) < contact.probability]
                if touched.size:
                    tp_down = rng.integers(
                        contact.min_bytes, contact.max_bytes + 1, touched.size
                    )
                    tp_up = np.maximum(100, tp_down // 8)
                    tp_flows = rng.integers(1, 4, touched.size)
                    for position, index in enumerate(touched):
                        usage_rows.append(
                            DailyUsage(
                                day=day,
                                subscriber_id=int(index),
                                technology=Technology.FTTH
                                if self._is_ftth[index]
                                else Technology.ADSL,
                                pop=str(self._pops[index]),
                                service=service.name,
                                bytes_down=int(tp_down[position]),
                                bytes_up=int(tp_up[position]),
                                flows=int(tp_flows[position]),
                            )
                        )
                    service_total += int(tp_down.sum() + tp_up.sum())

            for protocol, share in service.protocol_mix(day):
                label = capabilities.reported_label(protocol)
                key = (service.name, label)
                protocol_totals[key] = protocol_totals.get(key, 0) + int(
                    service_total * share
                )

        # Subscribed-but-inactive lines still emit background chatter that
        # must fail the Section 3 activity criterion.
        background = np.nonzero(observed & ~active)[0]
        for index in background:
            usage_rows.append(
                DailyUsage(
                    day=day,
                    subscriber_id=int(index),
                    technology=Technology.FTTH
                    if self._is_ftth[index]
                    else Technology.ADSL,
                    pop=str(self._pops[index]),
                    service=catalog.OTHER,
                    bytes_down=int(rng.integers(1_000, _BACKGROUND_BYTES_DOWN)),
                    bytes_up=int(rng.integers(100, _BACKGROUND_BYTES_UP)),
                    flows=int(rng.integers(1, _BACKGROUND_FLOWS + 1)),
                )
            )

        protocol_rows = tuple(
            ProtocolUsage(day=day, service=service, protocol=protocol, total_bytes=total)
            for (service, protocol), total in sorted(
                protocol_totals.items(), key=lambda item: (item[0][0], item[0][1].value)
            )
        )
        telemetry.count("usage_rows_generated", len(usage_rows))
        return DayTraffic(day=day, usage=tuple(usage_rows), protocols=protocol_rows)

    # -- hourly tier -----------------------------------------------------------

    def generate_hourly(
        self, day: datetime.date, traffic: Optional[DayTraffic] = None
    ) -> List[HourlyVolume]:
        """Distribute the day's downloads over 10-minute bins (Fig. 4)."""
        traffic = traffic if traffic is not None else self.generate_day(day)
        totals = {Technology.ADSL: 0, Technology.FTTH: 0}
        for row in traffic.usage:
            totals[row.technology] += row.bytes_down
        rng = self.world.day_rng(day, stream=1)
        volumes: List[HourlyVolume] = []
        for technology, total in totals.items():
            profile = studycalendar.diurnal_profile(day.year, technology.value)
            noise = rng.lognormal(-0.02, 0.2, BINS_PER_DAY)
            weights = np.array(profile) * noise
            weights /= weights.sum()
            for bin_index, weight in enumerate(weights):
                volumes.append(
                    HourlyVolume(
                        day=day,
                        technology=technology,
                        bin_index=bin_index,
                        bytes_down=int(total * weight),
                    )
                )
        return volumes

    # -- flow tier ---------------------------------------------------------------

    def expand_flows(
        self,
        day: datetime.date,
        traffic: Optional[DayTraffic] = None,
        max_flows_per_usage: int = 8,
    ) -> List[FlowRecord]:
        """Expand usage rows into probe-grade flow records (row view).

        Compatibility wrapper over :meth:`expand_flows_batch`: the study's
        hot path consumes the columnar batch directly, and this method
        materializes the identical record list from it.
        """
        return self.expand_flows_batch(
            day, traffic, max_flows_per_usage=max_flows_per_usage
        ).to_records()

    def expand_flows_batch(
        self,
        day: datetime.date,
        traffic: Optional[DayTraffic] = None,
        max_flows_per_usage: int = 8,
    ) -> FlowBatch:
        """Expand usage rows into one columnar :class:`FlowBatch`.

        Per-flow totals sum exactly to the usage row's bytes; the flow
        *count* is capped (``max_flows_per_usage``) to bound record volume,
        mirroring the scale substitution of DESIGN.md §5.  The batch is
        built column-wise — no intermediate :class:`FlowRecord` objects —
        but draws from the per-day RNG stream in exactly the order the
        historical row path did, so ``expand_flows_batch(...).to_records()``
        is bit-identical to what ``expand_flows`` always returned.
        """
        traffic = traffic if traffic is not None else self.generate_day(day)
        rng = self.world.day_rng(day, stream=2)
        capabilities = capabilities_on(day)
        midnight = datetime.datetime.combine(day, datetime.time()).timestamp()
        profiles = {
            technology: np.array(
                studycalendar.diurnal_profile(day.year, technology.value)
            )
            for technology in Technology
        }
        builder = FlowBatchBuilder()
        for row in traffic.usage:
            service = self.world.service(row.service)
            infra = self.world.infrastructure_for(row.service)
            mix = service.protocol_mix(day)
            count = max(1, min(row.flows, max_flows_per_usage))
            weights = rng.dirichlet(np.full(count, 0.8))
            down_split = _integer_split(row.bytes_down, weights)
            up_split = _integer_split(row.bytes_up, weights)
            packets_down = np.maximum(1, down_split // 1400)
            packets_up = np.maximum(1, up_split // 700 + packets_down // 2)
            bins = rng.choice(
                BINS_PER_DAY, size=count, p=profiles[row.technology]
            )
            protocols = _sample_protocols(mix, count, rng)
            for flow_index in range(count):
                self._append_flow(
                    builder=builder,
                    row=row,
                    infra=infra,
                    day=day,
                    true_protocol=protocols[flow_index],
                    capabilities=capabilities,
                    bytes_down=int(down_split[flow_index]),
                    bytes_up=int(up_split[flow_index]),
                    packets_down=int(packets_down[flow_index]),
                    packets_up=int(packets_up[flow_index]),
                    ts_start=midnight
                    + studycalendar.bin_start_seconds(int(bins[flow_index]))
                    + float(rng.uniform(0, 600)),
                    rng=rng,
                )
        batch = builder.build()
        telemetry.count("flows_expanded", len(batch))
        return batch

    def _append_flow(
        self,
        builder: FlowBatchBuilder,
        row: DailyUsage,
        infra: object,
        day: datetime.date,
        true_protocol: WebProtocol,
        capabilities: object,
        bytes_down: int,
        bytes_up: int,
        packets_down: int,
        packets_up: int,
        ts_start: float,
        rng: np.random.Generator,
    ) -> None:
        choice = infra.pick_server(day, rng)  # type: ignore[attr-defined]
        label = capabilities.reported_label(true_protocol)  # type: ignore[attr-defined]
        transport = (
            Transport.UDP
            if true_protocol is WebProtocol.QUIC
            else Transport.TCP
        )
        server_port = _server_port(true_protocol)
        duration = float(
            min(3600.0, 1.0 + rng.lognormal(0.0, 1.0) * (bytes_down / 1e6))
        )
        server_name, name_source = _flow_name(true_protocol, choice.domain, rng)
        samples, minimum, average, maximum = 0, 0.0, 0.0, 0.0
        if transport is Transport.TCP and true_protocol is not WebProtocol.P2P:
            samples = int(min(50, max(1, packets_up // 4)))
            minimum = choice.rtt_ms
            average = minimum * float(1.0 + rng.lognormal(-1.5, 0.8))
            maximum = average * float(1.0 + rng.lognormal(-1.0, 0.8))
        elif true_protocol is WebProtocol.P2P:
            # Peers are far and jittery; Tstat still samples TCP P2P flows.
            minimum = choice.rtt_ms * float(rng.lognormal(0.0, 0.5))
            samples, average, maximum = 5, minimum * 1.6, minimum * 3.0
        builder.append(
            client_id=row.subscriber_id,
            server_ip=choice.ip,
            client_port=int(rng.integers(1024, 65535)),
            server_port=server_port,
            transport=transport_code(transport),
            ts_start=ts_start,
            ts_end=ts_start + duration,
            packets_up=packets_up,
            packets_down=packets_down,
            bytes_up=bytes_up,
            bytes_down=bytes_down,
            protocol=protocol_code(label),
            server_name=server_name,
            name_source=name_source_code(name_source),
            rtt_samples=samples,
            rtt_min=minimum,
            rtt_avg=average,
            rtt_max=maximum,
            vantage=row.pop,
        )


def _integer_split(total: int, weights: np.ndarray) -> np.ndarray:
    """Split ``total`` into integer parts proportional to ``weights``."""
    parts = np.floor(total * weights).astype(np.int64)
    parts[0] += total - int(parts.sum())
    return parts


def _sample_protocols(
    mix: List[Tuple[WebProtocol, float]], count: int, rng: np.random.Generator
) -> List[WebProtocol]:
    if not mix:
        return [WebProtocol.OTHER] * count
    protocols = [protocol for protocol, _ in mix]
    shares = np.array([share for _, share in mix])
    shares = shares / shares.sum()
    picks = rng.choice(len(protocols), size=count, p=shares)
    return [protocols[int(pick)] for pick in picks]


def _server_port(protocol: WebProtocol) -> int:
    if protocol is WebProtocol.HTTP:
        return 80
    if protocol is WebProtocol.P2P:
        return 6881
    if protocol is WebProtocol.OTHER:
        return 5228
    return 443


def _flow_name(
    protocol: WebProtocol, domain: str, rng: np.random.Generator
) -> Tuple[Optional[str], NameSource]:
    if protocol is WebProtocol.P2P:
        return None, NameSource.NONE
    if protocol is WebProtocol.HTTP:
        return domain, NameSource.HOST
    if protocol is WebProtocol.QUIC:
        return domain, NameSource.QUIC
    if protocol is WebProtocol.FBZERO:
        return domain, NameSource.ZERO
    if protocol is WebProtocol.OTHER:
        if rng.random() < 0.7:
            return domain, NameSource.DNS
        return None, NameSource.NONE
    return domain, NameSource.SNI
