"""Packet-tier synthesis: wire-format captures for the probe.

Expands flow descriptions into byte-exact Ethernet/IPv4/TCP/UDP packets —
DNS lookups, TCP handshakes, TLS ClientHellos, HTTP requests, gQUIC
initials, FB-Zero hellos, data transfer and teardown — so the full probe
path (decode → meter → DPI → DN-Hunter → RTT) runs on the same formats it
would see on a span port.  Used by the integration tests and the
quickstart example; the flow tier (``flowgen.expand_flows``) covers the
volumes the packet tier cannot (DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from repro.nettypes.ip import ip_to_int
from repro.packets.capture import CapturedPacket, build_frame
from repro.packets.ipv4 import PROTO_TCP, PROTO_UDP, IPv4Packet
from repro.packets.tcp import (
    FLAG_ACK,
    FLAG_FIN,
    FLAG_PSH,
    FLAG_RST,
    FLAG_SYN,
    TcpSegment,
)
from repro.packets.udp import UdpDatagram
from repro.protocols import fbzero, quic
from repro.protocols.dns import DnsMessage, ResourceRecord
from repro.protocols.http import HttpRequest
from repro.protocols.tls import ALPN_HTTP2, ALPN_SPDY3, ClientHello
from repro.tstat.flow import WebProtocol

_MSS = 1400
_RESOLVER_IP = ip_to_int("8.8.8.8")
_MAX_DATA_PACKETS = 48


@dataclass(frozen=True)
class FlowSpec:
    """One flow to synthesize at packet granularity.

    Byte volumes are capped by the packet budget (about 64 kB per
    direction); the packet tier is for exercising the probe, not for
    carrying realistic volumes.
    """

    client_ip: int
    server_ip: int
    client_port: int
    server_port: int
    protocol: WebProtocol
    domain: Optional[str] = None
    rtt_ms: float = 10.0
    bytes_down: int = 20_000
    bytes_up: int = 2_000
    start_ts: float = 0.0
    with_dns: bool = False  # precede with a DNS lookup of the domain
    teardown: str = "fin"  # "fin" | "rst" | "none" (idle timeout)


class PacketSynthesizer:
    """Builds captures from flow specs, deterministically per seed."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(np.random.SeedSequence([seed, 0xACC]))

    def synthesize(self, specs: Iterable[FlowSpec]) -> List[CapturedPacket]:
        """All packets of all specs, sorted by timestamp."""
        packets: List[CapturedPacket] = []
        for index, spec in enumerate(specs):
            packets.extend(self.flow_packets(spec, txid=index & 0xFFFF))
        packets.sort(key=lambda packet: packet.timestamp)
        return packets

    def flow_packets(self, spec: FlowSpec, txid: int = 1) -> List[CapturedPacket]:
        packets: List[CapturedPacket] = []
        ts = spec.start_ts
        if spec.with_dns and spec.domain:
            packets.extend(self.dns_exchange(spec, ts, txid))
            ts += spec.rtt_ms / 1000.0 + 0.002
        if spec.protocol is WebProtocol.QUIC:
            packets.extend(self._quic_flow(spec, ts))
        else:
            packets.extend(self._tcp_flow(spec, ts))
        return packets

    # -- DNS ---------------------------------------------------------------

    def dns_exchange(
        self, spec: FlowSpec, ts: float, txid: int
    ) -> List[CapturedPacket]:
        assert spec.domain is not None
        query = DnsMessage.query(spec.domain, txid=txid)
        response = DnsMessage.response(
            query, [ResourceRecord.a_int(spec.domain, spec.server_ip, ttl=300)]
        )
        src_port = 40000 + (txid % 20000)
        query_packet = build_frame(
            ts,
            IPv4Packet(
                src=spec.client_ip,
                dst=_RESOLVER_IP,
                protocol=PROTO_UDP,
                payload=UdpDatagram(src_port, 53, query.encode()).encode(
                    spec.client_ip, _RESOLVER_IP
                ),
            ),
        )
        response_packet = build_frame(
            ts + 0.008,
            IPv4Packet(
                src=_RESOLVER_IP,
                dst=spec.client_ip,
                protocol=PROTO_UDP,
                payload=UdpDatagram(53, src_port, response.encode()).encode(
                    _RESOLVER_IP, spec.client_ip
                ),
            ),
        )
        return [query_packet, response_packet]

    # -- TCP ----------------------------------------------------------------

    def _first_payload(self, spec: FlowSpec) -> bytes:
        domain = spec.domain or "unnamed.example"
        if spec.protocol is WebProtocol.HTTP:
            return HttpRequest.get(domain).encode()
        if spec.protocol is WebProtocol.TLS:
            return ClientHello(sni=domain).encode_record()
        if spec.protocol is WebProtocol.HTTP2:
            return ClientHello(sni=domain, alpn=[ALPN_HTTP2, "http/1.1"]).encode_record()
        if spec.protocol is WebProtocol.SPDY:
            return ClientHello(sni=domain, alpn=[ALPN_SPDY3]).encode_record()
        if spec.protocol is WebProtocol.FBZERO:
            return fbzero.ZeroHello(domain).encode_record()
        # P2P / OTHER: opaque binary payload (no in-band name).
        return bytes(self._rng.integers(0, 256, 64, dtype=np.uint8))

    def _tcp_flow(self, spec: FlowSpec, ts: float) -> List[CapturedPacket]:
        rtt = spec.rtt_ms / 1000.0
        client_isn = int(self._rng.integers(1, 2**31))
        server_isn = int(self._rng.integers(1, 2**31))
        packets: List[CapturedPacket] = []

        def client(
            seq: int, ack: int, flags: int, payload: bytes, when: float
        ) -> None:
            segment = TcpSegment(
                spec.client_port, spec.server_port, seq, ack, flags, payload
            )
            packets.append(
                build_frame(
                    when,
                    IPv4Packet(
                        src=spec.client_ip,
                        dst=spec.server_ip,
                        protocol=PROTO_TCP,
                        payload=segment.encode(spec.client_ip, spec.server_ip),
                    ),
                )
            )

        def server(
            seq: int, ack: int, flags: int, payload: bytes, when: float
        ) -> None:
            segment = TcpSegment(
                spec.server_port, spec.client_port, seq, ack, flags, payload
            )
            packets.append(
                build_frame(
                    when,
                    IPv4Packet(
                        src=spec.server_ip,
                        dst=spec.client_ip,
                        protocol=PROTO_TCP,
                        payload=segment.encode(spec.server_ip, spec.client_ip),
                    ),
                )
            )

        # Handshake: the SYN/SYN-ACK pair carries the first RTT sample.
        client(client_isn, 0, FLAG_SYN, b"", ts)
        server(server_isn, client_isn + 1, FLAG_SYN | FLAG_ACK, b"", ts + rtt)
        client_seq = client_isn + 1
        server_seq = server_isn + 1
        now = ts + rtt + 0.0005
        client(client_seq, server_seq, FLAG_ACK, b"", now)

        # Request (DPI happens here) and upstream body.
        request = self._first_payload(spec)
        up_budget = max(0, spec.bytes_up - len(request))
        client(client_seq, server_seq, FLAG_ACK | FLAG_PSH, request, now + 0.0002)
        client_seq += len(request)
        up_chunks = _chunk(up_budget, _MSS, _MAX_DATA_PACKETS // 4)
        for chunk in up_chunks:
            now += 0.0005
            client(client_seq, server_seq, FLAG_ACK, b"\x00" * chunk, now)
            client_seq += chunk

        # Server ACKs the request after one RTT, then streams the response.
        now += rtt
        server(server_seq, client_seq, FLAG_ACK, b"", now)
        down_chunks = _chunk(spec.bytes_down, _MSS, _MAX_DATA_PACKETS)
        for chunk in down_chunks:
            now += 0.0004
            server(server_seq, client_seq, FLAG_ACK, b"\x00" * chunk, now)
            server_seq += chunk

        # Teardown.
        if spec.teardown == "rst":
            client(client_seq, server_seq, FLAG_RST | FLAG_ACK, b"", now + 0.001)
        elif spec.teardown == "fin":
            client(client_seq, server_seq, FLAG_FIN | FLAG_ACK, b"", now + 0.001)
            server(
                server_seq,
                client_seq + 1,
                FLAG_FIN | FLAG_ACK,
                b"",
                now + 0.001 + rtt,
            )
            client(client_seq + 1, server_seq + 1, FLAG_ACK, b"", now + 0.002 + rtt)
        return packets

    # -- QUIC ---------------------------------------------------------------

    def _quic_flow(self, spec: FlowSpec, ts: float) -> List[CapturedPacket]:
        domain = spec.domain or "unnamed.example"
        connection_id = int(self._rng.integers(1, 2**63))
        packets: List[CapturedPacket] = []
        initial = quic.build_client_initial(connection_id, domain)
        packets.append(
            build_frame(
                ts,
                IPv4Packet(
                    src=spec.client_ip,
                    dst=spec.server_ip,
                    protocol=PROTO_UDP,
                    payload=UdpDatagram(
                        spec.client_port, spec.server_port, initial
                    ).encode(spec.client_ip, spec.server_ip),
                ),
            )
        )
        now = ts + spec.rtt_ms / 1000.0
        header = quic.QuicPublicHeader(connection_id=connection_id, packet_number=2)
        for index, chunk in enumerate(_chunk(spec.bytes_down, _MSS, _MAX_DATA_PACKETS)):
            now += 0.0004
            payload = header.encode() + b"\x00" * chunk
            packets.append(
                build_frame(
                    now,
                    IPv4Packet(
                        src=spec.server_ip,
                        dst=spec.client_ip,
                        protocol=PROTO_UDP,
                        payload=UdpDatagram(
                            spec.server_port, spec.client_port, payload
                        ).encode(spec.server_ip, spec.client_ip),
                    ),
                )
            )
        return packets


def _chunk(total: int, size: int, max_chunks: int) -> List[int]:
    """Split ``total`` bytes into at most ``max_chunks`` chunks of ``size``."""
    if total <= 0:
        return []
    count = min(max_chunks, (total + size - 1) // size)
    base = total // count
    chunks = [base] * count
    chunks[0] += total - base * count
    return [min(chunk, 60_000) for chunk in chunks]
