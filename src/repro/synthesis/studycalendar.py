"""The study calendar: span, seasonality and diurnal structure.

The dataset of the paper spans 54 months (Fig. 3's x-axis, July 2013 to
December 2017).  The calendar module fixes that span and provides the
seasonal/diurnal structure the figures rely on:

* weekly rhythm (weekend usage above weekdays on access networks);
* holiday effects — the WhatsApp Christmas/New-Year's-Eve spikes of
  Fig. 7b, and the summer dips visible in the FTTH curves of Fig. 3;
* the hour-of-day load profile, including its drift between 2014 and 2017
  (growing late-night machine-generated traffic, Fig. 4).
"""

from __future__ import annotations

import datetime
from typing import Iterator, List, Tuple

STUDY_START = datetime.date(2013, 7, 1)
STUDY_END = datetime.date(2017, 12, 31)

BINS_PER_DAY = 144  # 10-minute bins, as in Fig. 4
_SECONDS_PER_BIN = 86400 // BINS_PER_DAY


def study_days(
    start: datetime.date = STUDY_START,
    end: datetime.date = STUDY_END,
    stride: int = 1,
) -> Iterator[datetime.date]:
    """Iterate study days, optionally sampling every ``stride``-th day."""
    if stride <= 0:
        raise ValueError("stride must be positive")
    day = start
    index = 0
    while day <= end:
        if index % stride == 0:
            yield day
        day += datetime.timedelta(days=1)
        index += 1


def study_months(
    start: datetime.date = STUDY_START, end: datetime.date = STUDY_END
) -> List[Tuple[int, int]]:
    """Every (year, month) in the span — 54 for the default span."""
    months = []
    year, month = start.year, start.month
    while (year, month) <= (end.year, end.month):
        months.append((year, month))
        month += 1
        if month == 13:
            month = 1
            year += 1
    return months


def is_weekend(day: datetime.date) -> bool:
    return day.weekday() >= 5


def is_christmas_period(day: datetime.date) -> bool:
    """December 24-26: the WhatsApp wishes spike."""
    return day.month == 12 and day.day in (24, 25, 26)


def is_new_year(day: datetime.date) -> bool:
    """December 31 / January 1."""
    return (day.month == 12 and day.day == 31) or (
        day.month == 1 and day.day == 1
    )

def is_summer_break(day: datetime.date) -> bool:
    """The Italian August holiday period (Fig. 3's FTTH dips)."""
    return day.month == 8


def weekly_factor(day: datetime.date) -> float:
    """Multiplier on daily volume for the weekly rhythm."""
    return 1.12 if is_weekend(day) else 0.95


def season_factor(day: datetime.date, business_share: float = 0.0) -> float:
    """Seasonal multiplier; business-heavy populations dip harder in August.

    ``business_share`` is the fraction of business customers behind the
    access technology (non-zero for FTTH in the paper's deployment).
    """
    if is_summer_break(day):
        return 1.0 - 0.10 - 0.25 * business_share
    return 1.0


def diurnal_profile(year: int, technology: str = "adsl") -> List[float]:
    """Relative load per 10-minute bin, normalized to sum to 1.

    The profile is the classic residential double hump (noon and prime
    time) over a night trough.  Two longitudinal effects are encoded:

    * the night trough fills in over the years — automatic app updates and
      IoT devices fetch at night, so 2017's night share is about twice
      2014's (Fig. 4's late-night peak in the ratio);
    * FTTH grows an extra prime-time share over the years, driven by video
      streaming (Fig. 4's FTTH prime-time bump).
    """
    years_since_2014 = max(0.0, min(4.0, float(year - 2014)))
    night_level = 0.25 + 0.11 * years_since_2014
    prime_boost = (
        0.30 * years_since_2014 / 3.0 if technology == "ftth" else 0.0
    )
    weights = []
    for bin_index in range(BINS_PER_DAY):
        hour = bin_index * 24.0 / BINS_PER_DAY
        weights.append(_hourly_shape(hour, night_level, prime_boost))
    total = sum(weights)
    return [weight / total for weight in weights]


def _hourly_shape(hour: float, night_level: float, prime_boost: float) -> float:
    """Un-normalized load at ``hour`` (0-24)."""
    import math

    # Night trough centred on 4:30, noon bump, prime-time peak at 21:30.
    base = night_level
    base += 0.55 * math.exp(-(((hour - 13.0) / 3.5) ** 2))
    prime_hour = hour if hour >= 12 else hour + 24.0
    base += (1.0 + prime_boost) * math.exp(-(((prime_hour - 21.5) / 2.2) ** 2))
    base += 0.20 * math.exp(-(((hour - 9.5) / 2.0) ** 2))
    return base


def bin_start_seconds(bin_index: int) -> int:
    """Seconds after midnight at which a 10-minute bin starts."""
    if not 0 <= bin_index < BINS_PER_DAY:
        raise ValueError(f"bad bin index {bin_index}")
    return bin_index * _SECONDS_PER_BIN
