"""The subscriber population: two PoPs of ADSL and FTTH installations.

Models the paper's vantage (Section 2.1): two PoPs in one Italian city,
more than 10 000 ADSL and 5 000 FTTH subscriptions, fixed per-customer IP
addresses, residential ADSL versus FTTH with a small business share, and
five years of churn — "a steady reduction on the number of active ADSL
users and an increase in FTTH installations".

The default population is scaled down by ``WorldScale.scale`` (shapes are
scale-invariant; see DESIGN.md §5).
"""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass
from types import MappingProxyType
from typing import Iterator, List, Mapping, Optional, Tuple

import numpy as np

from repro.nettypes.ip import Prefix
from repro.synthesis.studycalendar import STUDY_END, STUDY_START


class Technology(enum.Enum):
    """Access technology of a subscription."""

    ADSL = "adsl"
    FTTH = "ftth"

    @property
    def downlink_mbps(self) -> float:
        return 12.0 if self is Technology.ADSL else 100.0

    @property
    def uplink_mbps(self) -> float:
        return 1.0 if self is Technology.ADSL else 10.0


#: Subscriber-side address blocks per PoP (anonymized by probes on export).
#: Frozen: imported by fork-pool workers (RPR004).
POP_NETWORKS: Mapping[str, Prefix] = MappingProxyType({
    "pop1": Prefix.parse("10.1.0.0/16"),
    "pop2": Prefix.parse("10.2.0.0/16"),
})


@dataclass(frozen=True)
class Subscriber:
    """One broadband installation (a household or small business)."""

    subscriber_id: int
    technology: Technology
    pop: str
    client_ip: int
    join_date: datetime.date
    leave_date: Optional[datetime.date]
    activity: float  # probability of being active on a subscribed day
    heaviness: float  # multiplicative volume propensity (lognormal)
    business: bool = False

    def subscribed_on(self, day: datetime.date) -> bool:
        if day < self.join_date:
            return False
        if self.leave_date is not None and day > self.leave_date:
            return False
        return True


@dataclass(frozen=True)
class PopulationConfig:
    """Sizing and churn parameters."""

    adsl_count: int = 400
    ftth_count: int = 200
    start: datetime.date = STUDY_START
    end: datetime.date = STUDY_END
    adsl_churn_fraction: float = 0.18  # leave during the span
    ftth_late_join_fraction: float = 0.35  # join during the span
    ftth_business_fraction: float = 0.15
    mean_activity: float = 0.80

    def __post_init__(self) -> None:
        if self.adsl_count <= 0 or self.ftth_count <= 0:
            raise ValueError("population sizes must be positive")
        if self.end <= self.start:
            raise ValueError("empty study span")


class Population:
    """The generated subscriber set, queryable per day."""

    def __init__(self, config: PopulationConfig, seed: int = 2018) -> None:
        self.config = config
        self._subscribers = _generate(config, seed)

    @property
    def subscribers(self) -> Tuple[Subscriber, ...]:
        return self._subscribers

    def __len__(self) -> int:
        return len(self._subscribers)

    def subscribed_on(
        self, day: datetime.date, technology: Optional[Technology] = None
    ) -> Iterator[Subscriber]:
        for subscriber in self._subscribers:
            if not subscriber.subscribed_on(day):
                continue
            if technology is not None and subscriber.technology is not technology:
                continue
            yield subscriber

    def count_on(
        self, day: datetime.date, technology: Optional[Technology] = None
    ) -> int:
        return sum(1 for _ in self.subscribed_on(day, technology))

    def by_id(self, subscriber_id: int) -> Subscriber:
        return self._subscribers[subscriber_id]


def _generate(config: PopulationConfig, seed: int) -> Tuple[Subscriber, ...]:
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0xF0F]))
    span_days = (config.end - config.start).days
    subscribers: List[Subscriber] = []
    next_id = 0
    pop1_net = POP_NETWORKS["pop1"]
    pop2_net = POP_NETWORKS["pop2"]
    # Host addresses are allocated per PoP, not from the global id: each
    # /16 then carries only its own subscribers, so the model scales to
    # ~131k subscribers (a 100k-subscriber benchmark day fits) instead
    # of capping at one /16.  No RNG is consumed here, so worlds keep
    # their exact draw sequences.
    pop_hosts = {"pop1": 0, "pop2": 0}

    def make(
        technology: Technology,
        join_date: datetime.date,
        leave_date: Optional[datetime.date],
        business: bool,
    ) -> Subscriber:
        nonlocal next_id
        pop = "pop1" if rng.random() < 0.6 else "pop2"
        network = pop1_net if pop == "pop1" else pop2_net
        client_ip = network.nth(1 + pop_hosts[pop])
        pop_hosts[pop] += 1
        activity = float(
            np.clip(rng.beta(8.0, 8.0 * (1 - config.mean_activity) / config.mean_activity), 0.05, 0.99)
        )
        heaviness = float(rng.lognormal(mean=0.0, sigma=0.6))
        subscriber = Subscriber(
            subscriber_id=next_id,
            technology=technology,
            pop=pop,
            client_ip=client_ip,
            join_date=join_date,
            leave_date=leave_date,
            activity=activity,
            heaviness=heaviness,
            business=business,
        )
        next_id += 1
        return subscriber

    # ADSL: all present at start; a steady trickle leaves (churn and
    # upgrades to fiber).
    churn_earliest = min(90, max(1, span_days // 2))
    join_earliest = min(30, max(1, span_days // 3))
    for _ in range(config.adsl_count):
        leave: Optional[datetime.date] = None
        if rng.random() < config.adsl_churn_fraction:
            leave = config.start + datetime.timedelta(
                days=int(rng.integers(churn_earliest, span_days))
            )
        subscribers.append(make(Technology.ADSL, config.start, leave, False))

    # FTTH: most present at start, the rest join through the span.
    for _ in range(config.ftth_count):
        join = config.start
        if rng.random() < config.ftth_late_join_fraction:
            join = config.start + datetime.timedelta(
                days=int(rng.integers(join_earliest, span_days))
            )
        business = bool(rng.random() < config.ftth_business_fraction)
        subscribers.append(make(Technology.FTTH, join, None, business))

    return tuple(subscribers)
