"""Canonical results: digests, summaries, and figure reports for runs.

The acceptance bar for the control plane is *field identity*: a study
submitted over HTTP must produce exactly the :class:`StudyData` that
``repro run`` produces for the same config.  Rather than shipping the
whole object graph over the wire, the service exposes a canonical
digest — a SHA-256 over a deterministic JSON encoding of every
``StudyData`` field — plus a human-usable summary and the rendered
per-figure reports.  Two runs are field-identical iff their digests
match (the encoding is injective up to field equality: dataclass fields
are encoded in declaration order, dict/set iteration order is
canonicalized away).
"""

from __future__ import annotations

import dataclasses
import datetime
import enum
import hashlib
import json
from typing import Dict, List

from repro.core.study import StudyData
from repro.service.errors import NotFoundError, ServiceError


def canonical(obj: object) -> object:
    """A JSON-encodable form that is a pure function of field values.

    Containers with run-dependent iteration order (dicts keyed by
    tuples, sets of addresses) are sorted by their canonical JSON
    encoding; dataclasses encode as (class name, fields in declaration
    order); enums by (type, member name); dates as ISO strings.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return [
            "@" + type(obj).__name__,
            [
                canonical(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            ],
        ]
    if isinstance(obj, enum.Enum):
        return ["@enum", type(obj).__name__, obj.name]
    if isinstance(obj, (datetime.datetime, datetime.date)):
        return obj.isoformat()
    if isinstance(obj, dict):
        items = [[canonical(key), canonical(value)] for key, value in obj.items()]
        items.sort(key=lambda kv: json.dumps(kv[0], sort_keys=True))
        return ["@dict", items]
    if isinstance(obj, (set, frozenset)):
        return [
            "@set",
            sorted(
                (canonical(element) for element in obj),
                key=lambda c: json.dumps(c, sort_keys=True),
            ),
        ]
    if isinstance(obj, (list, tuple)):
        return [canonical(element) for element in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise ServiceError(
        f"cannot canonicalize {type(obj).__name__} for a results digest"
    )


def study_digest(data: StudyData) -> str:
    """SHA-256 of the canonical encoding of every StudyData field."""
    blob = json.dumps(canonical(data), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def study_summary(data: StudyData) -> dict:
    """Size-shaped facts a client can sanity-check without the data."""
    days = sorted(data.subscriber_days)
    return {
        "days": len(days),
        "first_day": days[0].isoformat() if days else None,
        "last_day": days[-1].isoformat() if days else None,
        "months": len(data.months),
        "subscriber_day_rows": sum(
            len(rows) for rows in data.subscriber_days.values()
        ),
        "service_stat_cells": len(data.service_stats),
        "protocol_rows": len(data.protocol_rows),
        "hourly_bins": len(data.hourly),
        "census_rows": len(data.census),
        "asn_rows": len(data.asn),
        "domain_rows": len(data.domains),
        "rtt_series": len(data.rtt_samples),
        "flow_days": len(data.flow_days),
    }


def results_payload(
    data: StudyData,
    rendered: "Dict[str, List[str]] | None" = None,
    unrendered: "Dict[str, str] | None" = None,
) -> dict:
    """The ``results.json`` document for a completed run."""
    if rendered is None:
        rendered, unrendered = render_figures(data)
    return {
        "digest": study_digest(data),
        "summary": study_summary(data),
        "figures": sorted(rendered),
        "unrendered": dict(unrendered or {}),
    }


# ----------------------------------------------------------------------
# Figures


def figure_modules() -> Dict[str, object]:
    """Figure key → module, mirroring the ``repro study`` catalogue."""
    from repro.figures import (
        fig02_ccdf,
        fig03_volume_trend,
        fig04_hourly_ratio,
        fig05_services,
        fig06_video_p2p,
        fig07_social,
        fig08_protocols,
        fig09_autoplay,
        fig10_rtt,
        fig11_infrastructure,
        table1,
    )

    return {
        "table1": table1,
        "fig02": fig02_ccdf,
        "fig03": fig03_volume_trend,
        "fig04": fig04_hourly_ratio,
        "fig05": fig05_services,
        "fig06": fig06_video_p2p,
        "fig07": fig07_social,
        "fig08": fig08_protocols,
        "fig09": fig09_autoplay,
        "fig10": fig10_rtt,
        "fig11": fig11_infrastructure,
    }


def figure_report(data: StudyData, name: str) -> List[str]:
    """Render one figure's text report from a run's StudyData."""
    modules = figure_modules()
    module = modules.get(name)
    if module is None:
        raise NotFoundError(
            f"unknown figure {name!r} (choose from {', '.join(sorted(modules))})"
        )
    fig = module.compute() if name == "table1" else module.compute(data)
    return list(module.report(fig))


def render_figures(
    data: StudyData,
) -> "tuple[Dict[str, List[str]], Dict[str, str]]":
    """Render every figure that the study's coverage allows.

    Figures pin specific months (e.g. figure 4 ratios April 2017 over
    April 2014), so a date-narrowed study legitimately cannot render all
    of them.  Returns ``(rendered, unrendered)`` where ``unrendered``
    maps figure name to the reason its compute refused the data.
    """
    rendered: Dict[str, List[str]] = {}
    unrendered: Dict[str, str] = {}
    for name in figure_modules():
        try:
            rendered[name] = figure_report(data, name)
        except (ValueError, KeyError, IndexError, ArithmeticError) as exc:
            unrendered[name] = f"{type(exc).__name__}: {exc}"
    return rendered, unrendered
