"""Asyncio HTTP/1.1 server: sockets in, :mod:`repro.service.api` out.

Zero-dependency by construction — the repo's no-new-packages rule
applies to the service tier too, so this is a small, strict HTTP/1.1
implementation over ``asyncio.start_server`` rather than a framework:

* request line and headers are read with hard caps (line length, header
  count, body size) so a hostile or broken client cannot balloon memory;
* every malformed input maps to a typed
  :class:`~repro.service.errors.ProtocolError` /
  :class:`~repro.service.errors.PayloadTooLargeError` and renders as a
  JSON 4xx — the transport never surfaces a traceback;
* responses always carry ``Content-Length`` and ``Connection: close``;
  one request per connection keeps the parser state machine trivial
  (clients poll at human timescales, throughput is not the bottleneck —
  the studies are).

:class:`ServiceServer` bundles registry + queue + API + listener, and
:func:`run_server` / :class:`ServerThread` give the CLI and the tests a
blocking and a background way to run one.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import threading
import time
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.service.api import Api, Request, Response, handle_request
from repro.service.errors import (
    PayloadTooLargeError,
    ProtocolError,
)
from repro.service.queue import JobQueue
from repro.service.registry import RunRegistry
from repro.telemetry.metrics import MetricRegistry

#: Parser caps: generous for a control plane, fatal for abuse.
MAX_REQUEST_LINE = 8192
MAX_HEADER_LINE = 8192
MAX_HEADER_COUNT = 100
MAX_BODY_BYTES = 1 << 20  # 1 MiB of JSON config is already absurd

REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}

ALLOWED_METHODS = ("GET", "POST", "HEAD")


async def _read_line(
    reader: asyncio.StreamReader, limit: int, what: str
) -> bytes:
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError(f"{what} exceeds {limit} bytes") from exc
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return b""  # clean EOF before the line: client went away
        raise ProtocolError(f"truncated {what}") from exc
    if len(line) > limit:
        raise ProtocolError(f"{what} exceeds {limit} bytes")
    return line[:-2]


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one HTTP/1.1 request; None on clean EOF, typed errors else."""
    request_line = await _read_line(reader, MAX_REQUEST_LINE, "request line")
    if not request_line:
        return None
    parts = request_line.split(b" ")
    if len(parts) != 3:
        raise ProtocolError("request line must be 'METHOD target VERSION'")
    raw_method, raw_target, raw_version = parts
    if raw_version not in (b"HTTP/1.1", b"HTTP/1.0"):
        raise ProtocolError(f"unsupported protocol {raw_version!r}")
    try:
        method = raw_method.decode("ascii")
        target = raw_target.decode("ascii")
    except UnicodeDecodeError as exc:
        raise ProtocolError("request line is not ASCII") from exc
    if method not in ALLOWED_METHODS:
        raise ProtocolError(
            f"unsupported method {method!r} "
            f"(allowed: {', '.join(ALLOWED_METHODS)})"
        )
    headers: Dict[str, str] = {}
    while True:
        line = await _read_line(reader, MAX_HEADER_LINE, "header line")
        if not line:
            break
        if len(headers) >= MAX_HEADER_COUNT:
            raise ProtocolError(f"more than {MAX_HEADER_COUNT} headers")
        name, sep, value = line.partition(b":")
        if not sep or not name:
            raise ProtocolError(f"malformed header line {line[:80]!r}")
        try:
            headers[name.decode("ascii").strip().lower()] = (
                value.decode("ascii").strip()
            )
        except UnicodeDecodeError as exc:
            raise ProtocolError("header line is not ASCII") from exc
    if headers.get("transfer-encoding"):
        raise ProtocolError("chunked transfer encoding is not supported")
    body = b""
    raw_length = headers.get("content-length", "0")
    try:
        length = int(raw_length)
    except ValueError as exc:
        raise ProtocolError(
            f"Content-Length is not an integer: {raw_length!r}"
        ) from exc
    if length < 0:
        raise ProtocolError("Content-Length must be >= 0")
    if length > MAX_BODY_BYTES:
        raise PayloadTooLargeError(
            f"body of {length} bytes exceeds the {MAX_BODY_BYTES} limit"
        )
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError(
                f"body truncated at {len(exc.partial)}/{length} bytes"
            ) from exc
    split = urlsplit(target)
    path = unquote(split.path)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return Request(method=method, path=path, query=query, body=body)


def frame_response(response: Response, *, head_only: bool = False) -> bytes:
    reason = REASONS.get(response.status, "Unknown")
    body = b"" if head_only else response.body
    head = (
        f"HTTP/1.1 {response.status} {reason}\r\n"
        f"Content-Type: {response.content_type}\r\n"
        f"Content-Length: {len(response.body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body


class ServiceServer:
    """Registry + queue + API behind one asyncio TCP listener."""

    def __init__(
        self,
        state_dir: Path,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_active: int = 2,
        run_workers: int = 1,
        run_retries: int = 2,
        run_shards: int = 1,
        metrics: Optional[MetricRegistry] = None,
        execute_fn: Optional[Callable] = None,
        now: Callable[[], float] = time.time,
    ) -> None:
        self.host = host
        self._requested_port = port
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self.registry = RunRegistry(Path(state_dir), now=now)
        queue_kwargs = dict(
            max_active=max_active,
            run_workers=run_workers,
            run_retries=run_retries,
            run_shards=run_shards,
            metrics=self.metrics,
        )
        if execute_fn is not None:
            queue_kwargs["execute_fn"] = execute_fn
        self.queue = JobQueue(self.registry, **queue_kwargs)
        self.api = Api(self.registry, self.queue, self.metrics)
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is None:
            return self._requested_port
        sockets = self._server.sockets or []
        return sockets[0].getsockname()[1] if sockets else self._requested_port

    async def start(self) -> None:
        await self.queue.start()
        self._server = await asyncio.start_server(
            self._serve_connection,
            host=self.host,
            port=self._requested_port,
            limit=max(MAX_REQUEST_LINE, MAX_HEADER_LINE) + 2,
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.queue.close()

    async def _serve_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        head_only = False
        try:
            try:
                request = await read_request(reader)
                if request is None:
                    return
                head_only = request.method == "HEAD"
                if head_only:
                    # HEAD is answered like GET, body withheld at framing.
                    request = Request(
                        "GET", request.path, request.query, request.body
                    )
                response = handle_request(self.api, request)
            except PayloadTooLargeError as exc:
                response = Response.json(exc.status, exc.to_payload())
            except ProtocolError as exc:
                self.metrics.counter("service_protocol_errors").inc()
                response = Response.json(exc.status, exc.to_payload())
            writer.write(frame_response(response, head_only=head_only))
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            # Peer vanished mid-exchange (or server shutdown): the
            # connection is the casualty, the service is fine.
            self.metrics.counter("service_connection_drops").inc()
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()


async def serve_forever(
    server: ServiceServer, stop: Optional[asyncio.Event] = None
) -> None:
    """Run until ``stop`` is set (or forever, awaiting cancellation)."""
    await server.start()
    try:
        if stop is None:
            await asyncio.Event().wait()  # until cancelled from outside
        else:
            await stop.wait()
    finally:
        await server.stop()


async def _serve_until_signalled(server: ServiceServer) -> None:
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()

    def drain_and_stop() -> None:
        # SIGTERM is the orchestrator's "finish what you can": in-flight
        # runs stop at their next checkpoint boundary and persist back
        # to ``queued`` (not ``cancelled``), so the next start re-adopts
        # and resumes them.  server.stop() -> queue.close() does the
        # actual token-setting and draining.
        server.queue.begin_drain()
        stop.set()

    try:
        loop.add_signal_handler(signal.SIGTERM, drain_and_stop)
    except (NotImplementedError, RuntimeError):
        pass  # platforms without loop signal support keep Ctrl-C only
    try:
        await serve_forever(server, stop)
    finally:
        with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
            loop.remove_signal_handler(signal.SIGTERM)


def run_server(server: ServiceServer) -> None:
    """Blocking entry point for ``repro serve``.

    Ctrl-C cancels in-flight runs; SIGTERM drains them to a checkpoint
    boundary and re-queues, so a supervised restart loses no work.
    """
    try:
        asyncio.run(_serve_until_signalled(server))
    except KeyboardInterrupt:
        pass  # clean shutdown path: serve_forever's finally already ran


class ServerThread:
    """A ServiceServer on a background thread (tests, benchmarks).

    .. code-block:: python

        with ServerThread(state_dir) as server:
            client = ServiceClient("127.0.0.1", server.port)
            ...
    """

    def __init__(self, state_dir: Path, **kwargs: object) -> None:
        self.server = ServiceServer(Path(state_dir), **kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        return self.server.port

    def __enter__(self) -> ServiceServer:
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise RuntimeError(
                "service failed to start"
            ) from self._startup_error
        return self.server

    def __exit__(self, *exc_info: object) -> None:
        loop = self._loop
        if loop is not None and loop.is_running():
            asyncio.run_coroutine_threadsafe(
                self.server.stop(), loop
            ).result(timeout=60)
            # Stop the loop only after stop() has fully resolved;
            # stopping from inside the coroutine would strand the future.
            loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=60)

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:  # surfaced to __enter__, not lost
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        # Signal readiness from *inside* run_forever: __enter__ then
        # only returns once the loop is actually running, so __exit__'s
        # is_running() check cannot race the gap between start() and
        # run_forever() (which would skip stop() and leak the loop).
        loop.call_soon(self._started.set)
        try:
            loop.run_forever()
        finally:
            loop.close()
