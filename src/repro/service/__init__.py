"""Measurement-as-a-service control plane.

An asyncio HTTP API + persistent job queue over the study execution
substrate (:func:`repro.core.parallel.execute_study`): submit study
configs over HTTP, watch them run, cancel and resume them, fetch
results and figure reports.  Stdlib-only, like the rest of the repo.

Layout::

    errors.py    typed ServiceError family (API + control-plane)
    registry.py  persistent run records + lifecycle state machine
    configs.py   wire payload -> StudyConfig (run id = config hash)
    results.py   canonical digests, summaries, figure reports
    queue.py     bounded scheduler over a thread pool + cancel tokens
    api.py       transport-free request handlers
    server.py    asyncio HTTP/1.1 listener (+ ServerThread embedding)
    client.py    stdlib thin client
"""

from repro.service.api import Api, Request, Response, handle_request
from repro.service.client import ClientError, ServiceClient
from repro.service.errors import ApiError, ServiceError
from repro.service.queue import JobQueue
from repro.service.registry import RunRecord, RunRegistry
from repro.service.server import ServerThread, ServiceServer, run_server

__all__ = [
    "Api",
    "ApiError",
    "ClientError",
    "JobQueue",
    "Request",
    "Response",
    "RunRecord",
    "RunRegistry",
    "ServerThread",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "handle_request",
    "run_server",
]
