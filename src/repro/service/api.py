"""HTTP API of the control plane: routes, handlers, JSON rendering.

Transport-free by design: :class:`Request` in, :class:`Response` out —
the asyncio server (:mod:`repro.service.server`) does the socket work,
tests drive handlers directly, and the whole layer stays a pure
function of (registry, queue, metrics) state.

==========  =============================  ======================================
Method      Path                           Meaning
==========  =============================  ======================================
``POST``    ``/v1/studies``                submit a config; idempotent per hash
``GET``     ``/v1/runs``                   list runs (``offset``/``limit``)
``GET``     ``/v1/runs/{id}``              one run + live progress (``days=1``
                                           adds per-task manifest rows)
``GET``     ``/v1/runs/{id}/results``      results digest + summary (done only)
``GET``     ``/v1/runs/{id}/figures/{n}``  rendered figure report (text/plain)
``POST``    ``/v1/runs/{id}/cancel``       cancel queued/running run
``POST``    ``/v1/runs/{id}/resume``       re-queue a cancelled/failed run
``GET``     ``/v1/healthz``                liveness + queue occupancy
``GET``     ``/v1/metricsz``               Prometheus textfile exposition
==========  =============================  ======================================

Failures follow the typed-error contract (RPR009):
:func:`handle_request` surfaces only :class:`ServiceError` subclasses;
request-attributable ones render as their 4xx with a machine-readable
``{"error": {"code", "message"}}`` body, anything else as a typed 500.
A malformed request can never produce a traceback.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.service import registry as reg
from repro.service.errors import (
    ApiError,
    BadRequestError,
    ConflictError,
    MethodNotAllowedError,
    NotFoundError,
    ServiceError,
)
from repro.service.queue import JobQueue
from repro.service.registry import RunRecord, RunRegistry, paginate
from repro.telemetry.export import RunTelemetry, prometheus_text
from repro.telemetry.metrics import MetricRegistry

#: Hard cap on ``limit`` so one request cannot ask for the world.
MAX_PAGE_LIMIT = 500

JSON_TYPE = "application/json"
TEXT_TYPE = "text/plain; charset=utf-8"


@dataclass(frozen=True)
class Request:
    """One parsed HTTP request, transport details already stripped."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""


@dataclass(frozen=True)
class Response:
    """What a handler returns; the server adds the HTTP framing."""

    status: int
    body: bytes
    content_type: str = JSON_TYPE
    #: Route label for the request metrics ("" when unrouted).
    route: str = ""

    @classmethod
    def json(
        cls, status: int, payload: object, route: str = ""
    ) -> "Response":
        blob = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        return cls(status, blob.encode("utf-8"), JSON_TYPE, route)

    @classmethod
    def text(cls, status: int, text: str, route: str = "") -> "Response":
        return cls(status, text.encode("utf-8"), TEXT_TYPE, route)


def record_payload(record: RunRecord) -> dict:
    return {
        "id": record.run_id,
        "seq": record.seq,
        "state": record.state,
        "config": record.config,
        "config_hash": record.config_hash,
        "cancel_requested": record.cancel_requested,
        "error": record.error,
        "attempts": record.attempts,
        "created_at": record.created_at,
        "started_at": record.started_at,
        "finished_at": record.finished_at,
    }


class Api:
    """Handler table over one registry + queue + metrics bundle."""

    def __init__(
        self,
        registry: RunRegistry,
        queue: JobQueue,
        metrics: Optional[MetricRegistry] = None,
    ) -> None:
        self.registry = registry
        self.queue = queue
        self.metrics = metrics if metrics is not None else queue.metrics

    # -- routing -------------------------------------------------------

    def dispatch(self, request: Request) -> Response:
        segments = [s for s in request.path.split("/") if s]
        if not segments or segments[0] != "v1":
            raise NotFoundError(f"no route at {request.path!r}")
        rest = segments[1:]
        route: Optional[Tuple[str, Callable[[], Response]]] = None
        if rest == ["healthz"]:
            route = ("healthz", lambda: self._healthz(request))
        elif rest == ["metricsz"]:
            route = ("metricsz", lambda: self._metricsz(request))
        elif rest == ["studies"]:
            route = ("studies", lambda: self._studies(request))
        elif rest == ["runs"]:
            route = ("runs", lambda: self._runs(request))
        elif len(rest) == 2 and rest[0] == "runs":
            route = ("run", lambda: self._run(request, rest[1]))
        elif len(rest) == 3 and rest[0] == "runs" and rest[2] == "results":
            route = ("results", lambda: self._results(request, rest[1]))
        elif len(rest) == 3 and rest[0] == "runs" and rest[2] == "cancel":
            route = ("cancel", lambda: self._cancel(request, rest[1]))
        elif len(rest) == 3 and rest[0] == "runs" and rest[2] == "resume":
            route = ("resume", lambda: self._resume(request, rest[1]))
        elif len(rest) == 4 and rest[0] == "runs" and rest[2] == "figures":
            route = (
                "figure",
                lambda: self._figure(request, rest[1], rest[3]),
            )
        if route is None:
            raise NotFoundError(f"no route at {request.path!r}")
        return route[1]()

    # -- helpers -------------------------------------------------------

    @staticmethod
    def _require_method(request: Request, allowed: str) -> None:
        if request.method != allowed:
            raise MethodNotAllowedError(
                f"{request.method} not allowed here (use {allowed})"
            )

    @staticmethod
    def _json_body(request: Request) -> object:
        if not request.body:
            raise BadRequestError("request body must be a JSON object")
        try:
            return json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequestError(f"body is not valid JSON: {exc}") from exc

    @staticmethod
    def _int_param(
        query: Dict[str, str], name: str, default: int, minimum: int
    ) -> int:
        raw = query.get(name)
        if raw is None:
            return default
        try:
            value = int(raw)
        except ValueError as exc:
            raise BadRequestError(
                f"query parameter {name!r} must be an integer "
                f"(got {raw!r})"
            ) from exc
        if value < minimum:
            raise BadRequestError(
                f"query parameter {name!r} must be >= {minimum}"
            )
        return value

    def _get_record(self, run_id: str) -> RunRecord:
        try:
            return self.registry.get(run_id)
        except reg.UnknownRunError as exc:
            raise NotFoundError(str(exc)) from exc

    def _progress(self, run_id: str, include_days: bool) -> Optional[dict]:
        """Live execution progress from the checkpoint-tier manifest."""
        path = self.registry.manifest_path(run_id)
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as exc:
            # A manifest mid-write is not an error; report it unreadable.
            return {"unreadable": str(exc)}
        progress = {
            key: manifest.get(key)
            for key in (
                "planned_days",
                "planned_tasks",
                "completed",
                "failed",
                "checkpoint_hits",
                "retries",
                "crashes",
                "shards",
                "spills",
                "wall_time",
                "execution",
            )
        }
        if include_days:
            progress["days"] = manifest.get("days", [])
        if manifest.get("data_quality"):
            progress["data_quality"] = manifest["data_quality"]
        return progress

    # -- handlers ------------------------------------------------------

    def _healthz(self, request: Request) -> Response:
        self._require_method(request, "GET")
        states = [record.state for record in self.registry.list()]
        return Response.json(
            200,
            {
                "status": "ok",
                "runs": len(states),
                "active": self.queue.active_runs,
                "queued": states.count(reg.QUEUED),
                "max_active": self.queue.max_active,
            },
            route="healthz",
        )

    def _metricsz(self, request: Request) -> Response:
        self._require_method(request, "GET")
        text = prometheus_text(
            RunTelemetry(metrics=self.metrics.snapshot())
        )
        return Response.text(200, text, route="metricsz")

    def _studies(self, request: Request) -> Response:
        self._require_method(request, "POST")
        payload = self._json_body(request)
        known = False
        if isinstance(payload, dict):
            # Peek for idempotency *before* submit so the status code can
            # distinguish created (201) from already-known (200).
            try:
                from repro.service import configs

                config, _ = configs.build_config(payload)
                known = configs.run_id_for(config) in self.registry
            except BadRequestError:
                known = False
        record = self.queue.submit(payload)
        return Response.json(
            200 if known else 201,
            {"run": record_payload(record)},
            route="studies",
        )

    def _runs(self, request: Request) -> Response:
        self._require_method(request, "GET")
        offset = self._int_param(request.query, "offset", 0, 0)
        limit = self._int_param(request.query, "limit", 50, 1)
        if limit > MAX_PAGE_LIMIT:
            raise BadRequestError(
                f"query parameter 'limit' must be <= {MAX_PAGE_LIMIT}"
            )
        state = request.query.get("state")
        records = self.registry.list()
        if state is not None:
            if state not in reg.STATES:
                raise BadRequestError(
                    f"unknown state filter {state!r} "
                    f"(choose from {', '.join(reg.STATES)})"
                )
            records = [r for r in records if r.state == state]
        page = paginate(records, offset, limit)
        return Response.json(
            200,
            {
                "runs": [record_payload(r) for r in page.runs],
                "total": page.total,
                "offset": page.offset,
                "limit": page.limit,
                "next_offset": page.next_offset,
            },
            route="runs",
        )

    def _run(self, request: Request, run_id: str) -> Response:
        self._require_method(request, "GET")
        record = self._get_record(run_id)
        include_days = request.query.get("days") == "1"
        payload = record_payload(record)
        payload["progress"] = self._progress(run_id, include_days)
        return Response.json(200, {"run": payload}, route="run")

    def _results(self, request: Request, run_id: str) -> Response:
        self._require_method(request, "GET")
        record = self._get_record(run_id)
        if record.state != reg.DONE:
            raise ConflictError(
                f"run {run_id} is {record.state}; results are available "
                "once it is done"
            )
        path = self.registry.results_path(run_id)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError as exc:
            raise NotFoundError(
                f"run {run_id} has no results artifact"
            ) from exc
        except (OSError, json.JSONDecodeError) as exc:
            raise ServiceError(
                f"run {run_id}: results artifact unreadable: {exc}"
            ) from exc
        return Response.json(200, {"results": payload}, route="results")

    def _figure(self, request: Request, run_id: str, name: str) -> Response:
        self._require_method(request, "GET")
        record = self._get_record(run_id)
        if record.state != reg.DONE:
            raise ConflictError(
                f"run {run_id} is {record.state}; figures are available "
                "once it is done"
            )
        from repro.service.results import figure_modules

        if name not in figure_modules():
            raise NotFoundError(
                f"unknown figure {name!r} (choose from "
                f"{', '.join(sorted(figure_modules()))})"
            )
        path = self.registry.figures_dir(run_id) / f"{name}.txt"
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError as exc:
            raise NotFoundError(
                f"run {run_id}: figure {name!r} not rendered"
            ) from exc
        except OSError as exc:
            raise ServiceError(
                f"run {run_id}: figure {name!r} unreadable: {exc}"
            ) from exc
        return Response.text(200, text, route="figure")

    def _cancel(self, request: Request, run_id: str) -> Response:
        self._require_method(request, "POST")
        self._get_record(run_id)
        record = self.queue.cancel(run_id)
        return Response.json(
            200, {"run": record_payload(record)}, route="cancel"
        )

    def _resume(self, request: Request, run_id: str) -> Response:
        self._require_method(request, "POST")
        self._get_record(run_id)
        record = self.queue.resume(run_id)
        return Response.json(
            200, {"run": record_payload(record)}, route="resume"
        )


def handle_request(api: Api, request: Request) -> Response:
    """Dispatch one request; failures become typed error responses.

    The RPR009 contract point: only :class:`ServiceError` subclasses may
    escape, and in practice none do — :class:`ApiError` renders as its
    status, any other :class:`ServiceError` as a typed 500 — so the
    transport below never sees an exception it has to guess about.
    """
    try:
        response = api.dispatch(request)
    except ApiError as exc:
        response = Response.json(
            exc.status, exc.to_payload(), route="error"
        )
    except ServiceError as exc:
        api.metrics.counter("service_internal_errors").inc()
        response = Response.json(
            500,
            {"error": {"code": "internal", "message": str(exc)}},
            route="error",
        )
    api.metrics.counter(
        "service_http_requests",
        method=request.method,
        route=response.route or "none",
        status=response.status,
    ).inc()
    return response
