"""Job queue + scheduler: bounded study execution over the run registry.

The scheduler owns a bounded set of concurrent ``execute_study`` runs —
the service's equivalent of Iris's worker tier.  Design:

* runs wait in an in-memory FIFO of run ids (the *durable* queue is the
  registry: after a restart, :meth:`JobQueue.adopt` re-enqueues whatever
  the registry reports incomplete, so losing the process loses nothing);
* at most ``max_active`` runs execute at once, each on the queue's
  thread pool (``execute_study`` is blocking; its own worker processes
  parallelize the study itself), each under a per-run
  :class:`~repro.core.parallel.CancelToken`;
* every execution uses ``resume=True`` against the run's private
  checkpoint directory, which collapses "fresh run", "resumed after
  cancel/failure", and "adopted after server death" into one code path;
* lifecycle transitions happen only on the event-loop thread — worker
  threads compute and return, the coroutine around them persists state —
  so the registry needs no locking;
* when a run reaches ``done`` the worker thread writes ``results.json``
  and ``figures/*.txt`` (digest, summary, rendered reports) next to the
  checkpoints, which is what the results endpoints serve.

Queue-depth and active-run gauges plus run-outcome counters land in the
service's :class:`~repro.telemetry.metrics.MetricRegistry` (exported by
``GET /v1/metricsz``).
"""

from __future__ import annotations

import asyncio
import json
import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Set

from repro.core.parallel import (
    CancelToken,
    ChunkError,
    RetryPolicy,
    RunCancelled,
    execute_study,
)
from repro.core.pool import PoolError
from repro.service import configs, registry as reg
from repro.service.errors import ConflictError, QueueError, ServiceError
from repro.service.registry import RunRecord, RunRegistry
from repro.service.results import render_figures, results_payload
from repro.telemetry.clock import MonotonicClock
from repro.telemetry.metrics import MetricRegistry


class JobQueue:
    """Bounded scheduler for study runs; all public methods are
    event-loop-thread only (the HTTP handlers run there too)."""

    def __init__(
        self,
        registry: RunRegistry,
        *,
        max_active: int = 2,
        run_workers: int = 1,
        run_retries: int = 2,
        run_shards: int = 1,
        metrics: Optional[MetricRegistry] = None,
        execute_fn: Callable = execute_study,
    ) -> None:
        if max_active < 1:
            raise ValueError("max_active must be positive")
        if run_workers < 1:
            raise ValueError("run_workers must be positive")
        if run_retries < 0:
            raise ValueError("run_retries must be >= 0")
        if run_shards < 1:
            raise ValueError("run_shards must be positive")
        self.registry = registry
        self.max_active = max_active
        self.run_workers = run_workers
        self.run_retries = run_retries
        self.run_shards = run_shards
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self._execute_fn = execute_fn
        # The asyncio primitives are built in start(), not here: on
        # Python 3.9 Queue/Semaphore bind the *current* event loop at
        # construction, and __init__ runs before any loop exists.
        # Until start(), submissions buffer in a plain list.
        self._ready: Optional["asyncio.Queue[str]"] = None
        self._slots: Optional[asyncio.Semaphore] = None
        self._pending: List[str] = []
        self._tokens: Dict[str, CancelToken] = {}
        self._tasks: Set[asyncio.Task] = set()
        self._scheduler: Optional[asyncio.Task] = None
        self._executor = ThreadPoolExecutor(
            max_workers=max_active, thread_name_prefix="repro-run"
        )
        self._clock = MonotonicClock()  # run-wall histogram only
        self._closed = False
        self._draining = False

    # -- introspection -------------------------------------------------

    @property
    def active_runs(self) -> int:
        return len(self._tokens)

    @property
    def queue_depth(self) -> int:
        depth = len(self._pending)
        if self._ready is not None:
            depth += self._ready.qsize()
        return depth

    def _enqueue(self, run_id: str) -> None:
        if self._ready is None:
            self._pending.append(run_id)
        else:
            self._ready.put_nowait(run_id)

    def _update_gauges(self) -> None:
        self.metrics.gauge("service_active_runs").set(self.active_runs)
        self.metrics.gauge("service_queue_depth").set(self.queue_depth)

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Adopt incomplete runs from the registry and begin scheduling."""
        ready: "asyncio.Queue[str]" = asyncio.Queue()
        self._ready = ready
        self._slots = asyncio.Semaphore(self.max_active)
        adopted = set()
        for record in self.registry.adopt_incomplete():
            self.metrics.counter("service_runs_adopted").inc()
            ready.put_nowait(record.run_id)
            adopted.add(record.run_id)
        # Pre-start submissions are persisted as queued, so adoption
        # usually already picked them up; enqueue only the remainder.
        for run_id in self._pending:
            if run_id not in adopted:
                ready.put_nowait(run_id)
        self._pending.clear()
        self._scheduler = asyncio.get_running_loop().create_task(
            self._schedule_forever()
        )
        self._update_gauges()

    def begin_drain(self) -> None:
        """Switch shutdown semantics from *cancel* to *requeue*.

        Called before :meth:`close` on a graceful SIGTERM: in-flight
        runs still stop at the next checkpoint boundary (their cancel
        tokens are set by ``close``), but instead of settling as
        ``cancelled`` they persist back to ``queued`` — the durable
        state restart adoption looks for — unless a client had already
        requested the cancel.
        """
        self._draining = True

    async def close(self) -> None:
        """Stop scheduling, cancel in-flight runs, and drain them.

        In-flight runs get their cancel tokens set and are awaited — the
        cooperative cancel checkpoints everything in flight, so a closed
        queue leaves only resumable state behind.
        """
        self._closed = True
        if self._scheduler is not None:
            self._scheduler.cancel()
            try:
                await self._scheduler
            except asyncio.CancelledError:
                pass  # expected: that is what .cancel() requests
            self._scheduler = None
        for token in self._tokens.values():
            token.set()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._executor.shutdown(wait=True)

    # -- submission and control ----------------------------------------

    def submit(self, payload: object) -> RunRecord:
        """Create (or idempotently return) a run for a config payload.

        A new config becomes a ``created`` run, moves straight to
        ``queued``, and is handed to the scheduler.  Resubmitting a
        known config returns its existing record untouched, whatever
        state it is in — clients re-POST safely.
        """
        if self._closed:
            raise QueueError("the job queue is closed")
        config, normalized = configs.build_config(payload)
        run_id = configs.run_id_for(config)
        if run_id in self.registry:
            record = self.registry.get(run_id)
            if record.state != reg.CREATED:
                self.metrics.counter("service_runs_resubmitted").inc()
                return record
            # A record stranded in ``created`` (older registry versions
            # persisted create and queue separately and could crash in
            # between): promote and enqueue instead of wedging forever.
            record = self.registry.transition(run_id, reg.QUEUED)
        else:
            # One atomic persist straight into ``queued`` — no window
            # where a crash leaves a record the scheduler never adopts.
            record = self.registry.create(run_id, normalized, state=reg.QUEUED)
        self.metrics.counter("service_runs_submitted").inc()
        self._enqueue(run_id)
        self._update_gauges()
        return record

    def cancel(self, run_id: str) -> RunRecord:
        """Cancel a queued run immediately or a running run cooperatively."""
        record = self.registry.get(run_id)
        if record.state == reg.QUEUED:
            record = self.registry.transition(run_id, reg.CANCELLED)
            self.metrics.counter("service_runs_cancelled").inc()
            self._update_gauges()
            return record
        if record.state == reg.RUNNING:
            token = self._tokens.get(run_id)
            if token is not None:
                token.set()
            return self.registry.request_cancel(run_id)
        raise ConflictError(
            f"run {run_id} is {record.state}; only queued or running "
            "runs can be cancelled"
        )

    def resume(self, run_id: str) -> RunRecord:
        """Re-queue a cancelled or failed run (checkpoints make it cheap)."""
        if self._closed:
            raise QueueError("the job queue is closed")
        record = self.registry.get(run_id)
        if record.state not in reg.RESUMABLE:
            raise ConflictError(
                f"run {run_id} is {record.state}; only "
                f"{' or '.join(reg.RESUMABLE)} runs can be resumed"
            )
        record = self.registry.transition(run_id, reg.QUEUED)
        self.metrics.counter("service_runs_resumed").inc()
        self._enqueue(run_id)
        self._update_gauges()
        return record

    # -- scheduling ----------------------------------------------------

    async def _schedule_forever(self) -> None:
        ready, slots = self._ready, self._slots
        if ready is None or slots is None:
            raise QueueError("scheduler launched before start()")
        while True:
            run_id = await ready.get()
            await slots.acquire()
            record = self.registry.get(run_id)
            if record.state != reg.QUEUED:
                # Cancelled (or otherwise settled) while waiting: skip.
                slots.release()
                self._update_gauges()
                continue
            task = asyncio.get_running_loop().create_task(
                self._run_one(run_id)
            )
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _run_one(self, run_id: str) -> None:
        token = CancelToken()
        self._tokens[run_id] = token
        record = self.registry.transition(run_id, reg.RUNNING)
        self._update_gauges()
        loop = asyncio.get_running_loop()
        wall = self.metrics.histogram(
            "service_run_wall_seconds",
            buckets=(0.1, 0.5, 1.0, 5.0, 30.0, 120.0, 600.0),
        )
        started = self._clock.now()
        try:
            await loop.run_in_executor(
                self._executor, self._execute_blocking, record, token
            )
        except RunCancelled:
            if self._draining and not self.registry.get(run_id).cancel_requested:
                # Drain (SIGTERM) stopped this run, not a client: the
                # completed prefix is checkpointed, so persist it as
                # ``queued`` and the next server start re-adopts it.
                self.registry.transition(run_id, reg.QUEUED)
                self.metrics.counter("service_runs_requeued").inc()
            else:
                self.registry.transition(run_id, reg.CANCELLED)
                self.metrics.counter("service_runs_cancelled").inc()
        except OSError as exc:
            # Disk pressure (ENOSPC, quota, injected chaos) during the
            # study or while persisting results: the run fails typed and
            # resumable, and — critically — the finally block below still
            # releases the slot, so one full disk cannot wedge the
            # scheduler's semaphore.
            self.registry.transition(run_id, reg.FAILED, error=f"io: {exc}")
            self.metrics.counter("service_runs_failed", kind="io").inc()
        except (ChunkError, PoolError, ServiceError, ValueError) as exc:
            self.registry.transition(run_id, reg.FAILED, error=str(exc))
            self.metrics.counter("service_runs_failed").inc()
        except Exception as exc:  # route, never swallow: typed state + metric
            self.registry.transition(
                run_id, reg.FAILED, error=f"internal: {exc!r}"
            )
            self.metrics.counter("service_runs_failed", kind="internal").inc()
        else:
            self.registry.transition(run_id, reg.DONE)
            self.metrics.counter("service_runs_completed").inc()
        finally:
            wall.observe(self._clock.now() - started)
            self._tokens.pop(run_id, None)
            if self._slots is not None:  # always set once scheduling began
                self._slots.release()
            self._update_gauges()

    # -- the blocking part (worker thread) -----------------------------

    def _execute_blocking(self, record: RunRecord, token: CancelToken) -> None:
        """Runs on the thread pool: execute, then persist results."""
        config, _ = configs.build_config(record.config)
        result = self._execute_fn(
            config,
            workers=self.run_workers,
            checkpoint_root=self.registry.checkpoint_root(record.run_id),
            resume=True,
            retry=RetryPolicy(retries=self.run_retries),
            shards=self.run_shards,
            cancel=token,
        )
        self._write_results(record.run_id, result.data)

    def _write_results(self, run_id: str, data) -> None:
        """Persist ``results.json`` and the figure reports atomically."""
        rendered, unrendered = render_figures(data)
        payload = results_payload(data, rendered, unrendered)
        figures_dir = self.registry.figures_dir(run_id)
        figures_dir.mkdir(parents=True, exist_ok=True)
        for name, lines in rendered.items():
            tmp = figures_dir / f"{name}.txt.tmp"
            tmp.write_text("\n".join(lines) + "\n", encoding="utf-8")
            os.replace(tmp, figures_dir / f"{name}.txt")
        results_path = self.registry.results_path(run_id)
        tmp = results_path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
        )
        os.replace(tmp, results_path)
