"""Typed errors of the measurement-as-a-service control plane.

Everything the service layer raises derives from :class:`ServiceError`
(the RPR009 contract on :func:`repro.service.api.handle_request`), split
into two branches:

* :class:`ApiError` — request-attributable failures that map onto an
  HTTP status code and a stable machine-readable ``code``.  The server
  renders these as ``{"error": {"code", "message"}}`` JSON bodies; a
  malformed request can *never* surface as a traceback or a 500.
* :class:`RegistryError` / :class:`QueueError` — control-plane state
  violations (an impossible lifecycle transition, a corrupt run record,
  a submit to a closed queue).  Handlers either translate them into an
  :class:`ApiError` or let the server map them to a typed 500.
"""

from __future__ import annotations


class ServiceError(RuntimeError):
    """Base of the service-layer typed-error family."""


# ----------------------------------------------------------------------
# HTTP-mapped errors


class ApiError(ServiceError):
    """A request-attributable failure with an HTTP status and code."""

    status = 500
    code = "internal"

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message

    def to_payload(self) -> dict:
        return {"error": {"code": self.code, "message": self.message}}


class BadRequestError(ApiError):
    """Malformed syntax or invalid field values in the request."""

    status = 400
    code = "bad_request"


class ProtocolError(BadRequestError):
    """The bytes on the wire are not a parseable HTTP/1.x request."""

    code = "malformed_request"


class NotFoundError(ApiError):
    """No route, run, or artifact at the requested path."""

    status = 404
    code = "not_found"


class MethodNotAllowedError(ApiError):
    """The route exists but not for this HTTP method."""

    status = 405
    code = "method_not_allowed"


class ConflictError(ApiError):
    """The run is in a state that cannot accept this action."""

    status = 409
    code = "conflict"


class PayloadTooLargeError(ApiError):
    """Request head or body exceeds the service's hard caps."""

    status = 413
    code = "payload_too_large"


# ----------------------------------------------------------------------
# Control-plane state errors


class RegistryError(ServiceError):
    """The persistent run registry is inconsistent or misused."""


class UnknownRunError(RegistryError):
    """No run with the given id exists in the registry."""

    def __init__(self, run_id: str) -> None:
        self.run_id = run_id
        super().__init__(f"unknown run {run_id!r}")


class StateTransitionError(RegistryError):
    """A lifecycle transition the state machine does not permit."""

    def __init__(self, run_id: str, current: str, target: str) -> None:
        self.run_id = run_id
        self.current = current
        self.target = target
        super().__init__(
            f"run {run_id}: illegal transition {current!r} -> {target!r}"
        )


class RunRecordError(RegistryError):
    """A persisted ``run.json`` is unreadable or structurally invalid."""


class QueueError(ServiceError):
    """The job queue cannot accept or act on a run."""
