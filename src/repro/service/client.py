"""Thin stdlib client for the control plane (tests, benchmarks, scripts).

One :class:`http.client.HTTPConnection` per request, opened and closed
inside the call (the server speaks ``Connection: close`` anyway), so the
client holds no socket state between calls and RPR010 sees every
connection settled.  Error responses raise :class:`ClientError` carrying
the machine-readable ``code`` the API produced.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import List, Optional

from repro.service.errors import ServiceError
from repro.telemetry.clock import MonotonicClock


class ClientError(ServiceError):
    """A non-2xx response (or transport failure) from the service."""

    def __init__(self, status: int, code: str, message: str) -> None:
        self.status = status
        self.code = code
        super().__init__(f"{status} {code}: {message}")


class ServiceClient:
    def __init__(
        self, host: str, port: int, *, timeout: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._clock = MonotonicClock()

    # -- transport -----------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
    ) -> "tuple[int, bytes, str]":
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            data = response.read()
            content_type = response.getheader("Content-Type", "")
            status = response.status
        except (ConnectionError, http.client.HTTPException, OSError) as exc:
            raise ClientError(0, "transport", str(exc)) from exc
        finally:
            connection.close()
        if status >= 400:
            code, message = "unknown", data.decode("utf-8", "replace")
            try:
                error = json.loads(data)["error"]
                code, message = error["code"], error["message"]
            except (ValueError, KeyError, TypeError):
                pass  # non-JSON error body: keep the raw text message
            raise ClientError(status, code, message)
        return status, data, content_type

    def _json(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> dict:
        _, data, _ = self._request(method, path, payload)
        try:
            return json.loads(data)
        except ValueError as exc:
            raise ClientError(0, "bad_response", str(exc)) from exc

    # -- API -----------------------------------------------------------

    def healthz(self) -> dict:
        return self._json("GET", "/v1/healthz")

    def metricsz(self) -> str:
        _, data, _ = self._request("GET", "/v1/metricsz")
        return data.decode("utf-8")

    def submit(self, config: dict) -> dict:
        return self._json("POST", "/v1/studies", config)["run"]

    def runs(
        self,
        offset: int = 0,
        limit: int = 50,
        state: Optional[str] = None,
    ) -> dict:
        path = f"/v1/runs?offset={offset}&limit={limit}"
        if state is not None:
            path += f"&state={state}"
        return self._json("GET", path)

    def run(self, run_id: str, days: bool = False) -> dict:
        suffix = "?days=1" if days else ""
        return self._json("GET", f"/v1/runs/{run_id}{suffix}")["run"]

    def results(self, run_id: str) -> dict:
        return self._json("GET", f"/v1/runs/{run_id}/results")["results"]

    def figure(self, run_id: str, name: str) -> List[str]:
        _, data, _ = self._request(
            "GET", f"/v1/runs/{run_id}/figures/{name}"
        )
        return data.decode("utf-8").splitlines()

    def cancel(self, run_id: str) -> dict:
        return self._json("POST", f"/v1/runs/{run_id}/cancel")["run"]

    def resume(self, run_id: str) -> dict:
        return self._json("POST", f"/v1/runs/{run_id}/resume")["run"]

    # -- conveniences --------------------------------------------------

    def wait(
        self,
        run_id: str,
        *,
        until: "tuple[str, ...]" = ("done", "failed", "cancelled"),
        timeout: float = 120.0,
        poll: float = 0.05,
    ) -> dict:
        """Poll a run until it reaches one of ``until`` (or time out)."""
        deadline = self._clock.now() + timeout
        while True:
            record = self.run(run_id)
            if record["state"] in until:
                return record
            if self._clock.now() >= deadline:
                raise ClientError(
                    0,
                    "timeout",
                    f"run {run_id} still {record['state']} "
                    f"after {timeout}s",
                )
            time.sleep(poll)
