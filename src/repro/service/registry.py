"""Persistent run registry: the control plane's source of truth.

One study submission becomes one *run* with a lifecycle modelled on
operational measurement platforms (RIPE Atlas measurements, Iris):

.. code-block:: text

    created -> queued -> running -> done
                  ^          |----> failed    --(resume)--> queued
                  |          '----> cancelled --(resume)--> queued
                  '--(adopted on restart)-- running/queued

Each run owns a directory under ``<state_dir>/runs/<run_id>/`` holding

* ``run.json`` — this registry's record, written atomically
  (tmp + ``os.replace``) on every transition, so a killed server never
  leaves a torn record;
* ``checkpoints/`` — the existing shard-granular
  :class:`~repro.dataflow.datalake.CheckpointStore` tier (plus its
  ``manifest.json``), which is what makes adopted and resumed runs cheap:
  the scheduler always executes with ``resume=True``;
* ``results.json`` and ``figures/*.txt`` — written once the run reaches
  ``done``.

The run id *is* the :func:`~repro.core.config.config_hash` of the
submitted study config: resubmitting an identical config is idempotent
(you get the same run back), and two different configs can never collide
into one checkpoint namespace.

Registry methods are not thread-safe by design: the service mutates it
only from the event-loop thread (worker threads hand results back via
the loop), and the CLI/tests use it single-threaded.  Timestamps come
from an injectable ``now`` callable — wall time in production, a counter
in tests — so registry behaviour never *depends* on the clock.
"""

from __future__ import annotations

import dataclasses
import json
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.core import fsio
from repro.service.errors import (
    RunRecordError,
    StateTransitionError,
    UnknownRunError,
)

RECORD_VERSION = 1

# -- lifecycle states ---------------------------------------------------

CREATED = "created"
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

STATES = (CREATED, QUEUED, RUNNING, DONE, FAILED, CANCELLED)

#: Allowed transitions; everything else raises StateTransitionError.
#: ``running -> queued`` is restart adoption: a server that died mid-run
#: re-queues the run and the checkpoint tier supplies the finished part.
TRANSITIONS: Dict[str, Tuple[str, ...]] = {
    CREATED: (QUEUED,),
    QUEUED: (RUNNING, CANCELLED),
    RUNNING: (DONE, FAILED, CANCELLED, QUEUED),
    DONE: (),
    FAILED: (QUEUED,),
    CANCELLED: (QUEUED,),
}

#: States a run can be resumed from (via ``POST .../resume``).
RESUMABLE = (FAILED, CANCELLED)

#: States that mean "the run needs a scheduler" after a restart.
#: ``created`` appears only in state dirs written by older registry
#: versions (submission now persists straight into ``queued``); it is
#: promoted on adoption so such runs cannot wedge.
INCOMPLETE = (CREATED, QUEUED, RUNNING)

#: Terminal states (no scheduler interest unless resumed).
TERMINAL = (DONE, FAILED, CANCELLED)


@dataclass
class RunRecord:
    """One run's control-plane state (the ``run.json`` schema)."""

    run_id: str
    seq: int
    config: dict
    config_hash: str
    state: str = CREATED
    cancel_requested: bool = False
    error: str = ""
    #: Times the scheduler started executing this run (resumes included).
    attempts: int = 0
    created_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    def to_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["version"] = RECORD_VERSION
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "RunRecord":
        try:
            data = dict(payload)
            data.pop("version", None)
            record = cls(**data)
        except TypeError as exc:
            raise RunRecordError(f"malformed run record: {exc}") from exc
        if record.state not in STATES:
            raise RunRecordError(
                f"run {record.run_id}: unknown state {record.state!r}"
            )
        return record


def load_run_record(path: Path) -> RunRecord:
    """Parse one persisted ``run.json``; every corruption mode — missing
    file, non-UTF-8 bytes, truncated/invalid JSON, a non-object payload,
    unknown fields, bad state — raises :class:`RunRecordError` and
    nothing else."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError, UnicodeDecodeError) as exc:
        raise RunRecordError(
            f"unreadable run record {path}: {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise RunRecordError(
            f"malformed run record {path}: expected a JSON object, "
            f"got {type(payload).__name__}"
        )
    return RunRecord.from_dict(payload)


class RunRegistry:
    """Atomic-JSON run records under ``<state_dir>/runs/``."""

    def __init__(
        self,
        state_dir: Path,
        # Referenced, never called at import: operational metadata only
        # (ordering uses ``seq``); tests inject a deterministic counter.
        now: Callable[[], float] = time.time,
    ) -> None:
        self.state_dir = Path(state_dir)
        self.runs_dir = self.state_dir / "runs"
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        self._now = now
        self._records: Dict[str, RunRecord] = {}
        #: Run directories whose record could not be parsed at startup,
        #: mapped to the reason (surfaced by ops tooling and chaos).
        self.skipped: Dict[str, str] = {}
        self._load_existing()

    # -- paths ---------------------------------------------------------

    def run_dir(self, run_id: str) -> Path:
        return self.runs_dir / run_id

    def record_path(self, run_id: str) -> Path:
        return self.run_dir(run_id) / "run.json"

    def checkpoint_root(self, run_id: str) -> Path:
        return self.run_dir(run_id) / "checkpoints"

    def results_path(self, run_id: str) -> Path:
        return self.run_dir(run_id) / "results.json"

    def figures_dir(self, run_id: str) -> Path:
        return self.run_dir(run_id) / "figures"

    def manifest_path(self, run_id: str) -> Path:
        """The execution manifest the checkpoint tier maintains."""
        record = self.get(run_id)
        return (
            self.checkpoint_root(run_id)
            / f"config={record.config_hash}"
            / "manifest.json"
        )

    # -- persistence ---------------------------------------------------

    def _load_existing(self) -> None:
        """Rehydrate every persisted record (server restart).

        A corrupt ``run.json`` — torn write, truncation, bit rot, or a
        schema the record parser rejects — must not take the whole
        control plane down with it: the record is skipped with a warning
        and remembered in :attr:`skipped`, so ``repro serve`` starts and
        every *healthy* run is served.  The damaged run's directory is
        left untouched for the operator (its checkpoints are still
        valid; resubmitting the same config rewrites the record and
        recovers the run).
        """
        for record_file in sorted(self.runs_dir.glob("*/run.json")):
            try:
                record = load_run_record(record_file)
            except RunRecordError as exc:
                self.skipped[record_file.parent.name] = str(exc)
                warnings.warn(
                    f"skipping unreadable run record: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            self._records[record.run_id] = record
        for directory in (self.runs_dir, *sorted(self.runs_dir.glob("*"))):
            fsio.sweep_staging_files(directory)

    def _persist(self, record: RunRecord) -> None:
        directory = self.run_dir(record.run_id)
        directory.mkdir(parents=True, exist_ok=True)
        path = self.record_path(record.run_id)
        fsio.write_and_replace(
            path,
            json.dumps(
                record.to_dict(), indent=2, sort_keys=True
            ).encode("utf-8"),
            surface=fsio.SURFACE_REGISTRY,
            tmp=path.with_suffix(".json.tmp"),
        )

    # -- API -----------------------------------------------------------

    def __contains__(self, run_id: str) -> bool:
        return run_id in self._records

    def __len__(self) -> int:
        return len(self._records)

    def get(self, run_id: str) -> RunRecord:
        record = self._records.get(run_id)
        if record is None:
            raise UnknownRunError(run_id)
        return record

    def create(
        self, run_id: str, config: dict, *, state: str = CREATED
    ) -> RunRecord:
        """Register a new run (id = config hash) with a single persist.

        ``state`` may be ``created`` or ``queued``; the service submits
        directly into ``queued`` so there is no crash window between
        "record exists" and "scheduler will ever pick it up".
        """
        if state not in (CREATED, QUEUED):
            raise StateTransitionError(run_id, "(new)", state)
        if run_id in self._records:
            raise StateTransitionError(
                run_id, self._records[run_id].state, state
            )
        record = RunRecord(
            run_id=run_id,
            seq=1 + max(
                (existing.seq for existing in self._records.values()),
                default=0,
            ),
            config=dict(config),
            config_hash=run_id,
            state=state,
            created_at=self._now(),
        )
        self._records[run_id] = record
        self._persist(record)
        return record

    def transition(self, run_id: str, target: str, **updates: object) -> RunRecord:
        """Move a run to ``target`` (validated) and persist atomically.

        ``updates`` may set ``error`` and ``cancel_requested``; the
        timestamps and attempt counter move with the state: entering
        ``running`` stamps ``started_at`` and bumps ``attempts``,
        entering a terminal state stamps ``finished_at``, re-entering
        ``queued`` clears the finish/error fields.
        """
        record = self.get(run_id)
        if target not in TRANSITIONS.get(record.state, ()):
            raise StateTransitionError(run_id, record.state, target)
        record.state = target
        if "error" in updates:
            record.error = str(updates["error"])
        if "cancel_requested" in updates:
            record.cancel_requested = bool(updates["cancel_requested"])
        if target == RUNNING:
            record.started_at = self._now()
            record.attempts += 1
        elif target in TERMINAL:
            record.finished_at = self._now()
            # A terminal record must not advertise a stale cancel flag:
            # a cancel that raced a natural finish otherwise leaves a
            # ``done`` run reporting cancel_requested=true forever.
            record.cancel_requested = False
        elif target == QUEUED:
            record.finished_at = None
            record.error = ""
            record.cancel_requested = False
        self._persist(record)
        return record

    def request_cancel(self, run_id: str) -> RunRecord:
        """Flag a running run for cancellation (state moves when it drains)."""
        record = self.get(run_id)
        record.cancel_requested = True
        self._persist(record)
        return record

    def list(self) -> List[RunRecord]:
        """All runs in submission order (stable pagination key)."""
        return sorted(self._records.values(), key=lambda r: r.seq)

    def adopt_incomplete(self) -> List[RunRecord]:
        """Re-queue runs a dead server left in flight (restart adoption).

        Runs found ``running`` were interrupted mid-execution: their
        checkpoints are intact (the store writes atomically), so they
        re-enter ``queued`` and the next execution resumes from the
        completed prefix.  Runs found ``queued`` simply re-enter the
        scheduler, and runs stranded in ``created`` by an older registry
        version are promoted to ``queued`` so they cannot wedge.
        Returns the adopted records in submission order.
        """
        adopted: List[RunRecord] = []
        for record in self.list():
            if record.state in (CREATED, RUNNING):
                adopted.append(self.transition(record.run_id, QUEUED))
            elif record.state == QUEUED:
                adopted.append(record)
        return adopted


@dataclass(frozen=True)
class RunPage:
    """One page of runs plus the cursor bookkeeping the API returns."""

    runs: List[RunRecord]
    total: int
    offset: int
    limit: int

    @property
    def next_offset(self) -> Optional[int]:
        after = self.offset + len(self.runs)
        return after if after < self.total else None


def paginate(records: List[RunRecord], offset: int, limit: int) -> RunPage:
    """Slice submission-ordered records into a stable page."""
    if offset < 0 or limit < 1:
        raise ValueError("offset must be >= 0 and limit >= 1")
    return RunPage(
        runs=records[offset:offset + limit],
        total=len(records),
        offset=offset,
        limit=limit,
    )
