"""Study-config payloads: the JSON body of ``POST /v1/studies``.

The wire schema is deliberately small — the same knobs ``repro run``
exposes, validated with field-precise 400s:

.. code-block:: json

    {"scale": "small", "seed": 7,
     "start": "2013-06-01", "end": "2013-06-30"}

``scale`` picks the preset (``small`` | ``medium``), ``seed`` the world
seed, and ``start``/``end`` optionally narrow the study span.  The run
id is the :func:`~repro.core.config.config_hash` of the built
:class:`StudyConfig`, so identical payloads (after normalization) are
idempotent and distinct payloads can never share checkpoints.
"""

from __future__ import annotations

import dataclasses
import datetime
from typing import Optional, Tuple

from repro.core.config import StudyConfig, config_hash, small_study
from repro.service.errors import BadRequestError
from repro.synthesis.world import WorldConfig

SCALES = ("small", "medium")

#: Every key a submission may carry; anything else is a hard 400 so
#: typos ("sedd") fail loudly instead of silently running the default.
ALLOWED_KEYS = ("scale", "seed", "start", "end")


def _parse_date(payload: dict, key: str) -> Optional[datetime.date]:
    value = payload.get(key)
    if value is None:
        return None
    if not isinstance(value, str):
        raise BadRequestError(f"{key!r} must be an ISO date string")
    try:
        return datetime.date.fromisoformat(value)
    except ValueError as exc:
        raise BadRequestError(f"{key!r} is not an ISO date: {exc}") from exc


def build_config(payload: object) -> Tuple[StudyConfig, dict]:
    """Validate a submission body into (StudyConfig, normalized payload).

    The normalized payload (defaults filled in, dates ISO) is what the
    registry persists, so two ways of writing the same study — explicit
    defaults vs omitted keys — normalize to one record and one run id.
    """
    if not isinstance(payload, dict):
        raise BadRequestError("study config must be a JSON object")
    unknown = sorted(set(payload) - set(ALLOWED_KEYS))
    if unknown:
        raise BadRequestError(
            f"unknown config key(s): {', '.join(unknown)} "
            f"(allowed: {', '.join(ALLOWED_KEYS)})"
        )
    scale = payload.get("scale", "small")
    if scale not in SCALES:
        raise BadRequestError(
            f"'scale' must be one of {', '.join(SCALES)} (got {scale!r})"
        )
    seed = payload.get("seed", 7)
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise BadRequestError(f"'seed' must be an integer (got {seed!r})")
    start = _parse_date(payload, "start")
    end = _parse_date(payload, "end")
    if start is not None and end is not None and start > end:
        raise BadRequestError(
            f"'start' ({start.isoformat()}) must not be after "
            f"'end' ({end.isoformat()})"
        )
    if scale == "small":
        config = small_study(seed=seed)
    else:
        config = StudyConfig(
            world=WorldConfig(seed=seed, adsl_count=500, ftth_count=250),
            day_stride=4,
        )
    if start is not None or end is not None:
        world = dataclasses.replace(
            config.world,
            start=start if start is not None else config.world.start,
            end=end if end is not None else config.world.end,
        )
        config = dataclasses.replace(config, world=world)
    normalized = {
        "scale": scale,
        "seed": seed,
        "start": config.world.start.isoformat(),
        "end": config.world.end.isoformat(),
    }
    return config, normalized


def run_id_for(config: StudyConfig) -> str:
    """The run id: the study's config hash (checkpoint namespace key)."""
    return config_hash(config)
