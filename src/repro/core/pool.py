"""A supervised worker-process pool that survives worker death.

``multiprocessing.Pool.map`` turns one worker exception into an opaque
abort of every chunk, and a worker killed mid-task (OOM, SIGKILL, a
crashing C extension) hangs the iterator forever.  The study runner
needs the opposite: per-task results, prompt notice of *which* task a
dead worker was holding, and a pool that repairs itself and keeps
going.  This module supplies exactly that, with no reliance on
``multiprocessing`` internals:

* each worker owns a private duplex :func:`multiprocessing.Pipe` for
  announcements and results.  ``Connection.send`` writes synchronously —
  once it returns, the parent can still read the message even if the
  worker dies the next instant — so the ``("start", index, pid)``
  announcement a worker makes before running a task is never lost, and
  every crash is attributable to the exact task it interrupted (a
  ``Queue``'s feeder thread cannot promise this: ``os._exit`` can kill
  the process before the thread flushes);
* worker death is detected by pipe EOF, not by liveness polling: the
  dead worker is joined, its in-flight task reported as a ``crash``
  event, and a replacement worker spawned;
* the start method is selected at runtime (fork where available, spawn
  otherwise — overridable), never hard-coded, and workers are spawned
  before the first queue write so fork never duplicates a feeder
  thread;
* :meth:`SupervisedPool.stop` always terminates and joins every worker
  on the error path, so an interrupted run leaves no orphans behind.

The pool is deliberately generic: it runs ``runner(task)`` for any
picklable task with an integer ``index`` attribute and never interprets
outcomes — retry policy lives in :mod:`repro.core.parallel`.
"""

from __future__ import annotations

import collections
import multiprocessing
import os
import traceback
from multiprocessing import connection
from typing import Any, Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.telemetry import runtime as telemetry

#: Event kinds yielded by :meth:`SupervisedPool.next_event`.
EVENT_DONE = "done"  # (EVENT_DONE, task_index, outcome)
EVENT_ERROR = "error"  # (EVENT_ERROR, task_index, traceback_text)
EVENT_CRASH = "crash"  # (EVENT_CRASH, task_index_or_None, pid, exitcode)

Event = Tuple[Any, ...]


class PoolError(RuntimeError):
    """Base of the pool's typed-error family (RPR009).

    Everything the pool raises about its own lifecycle derives from this
    class, so :func:`repro.core.parallel.execute_study` can contract to
    surface only ``ChunkError`` / ``PoolError`` / argument-validation
    ``ValueError`` and callers can route failures by type.
    """


class PoolStoppedError(PoolError):
    """A task was submitted to a pool that has already been stopped."""


class WorkerEnvironmentError(PoolError):
    """Fresh workers keep dying before accepting any work.

    Raised by the study runner when the crash budget for idle workers is
    exhausted — the failure is environmental (broken interpreter, OOM at
    import, a start method the platform cannot actually deliver), not a
    property of any task.
    """


def resolve_start_method(preferred: Optional[str] = None) -> str:
    """Pick a start method at runtime instead of hard-coding one.

    ``fork`` is preferred where the platform offers it (cheap, shares
    the parent's warmed-up imports); ``spawn`` is the portable fallback.
    An explicit ``preferred`` must name an available method.
    """
    available = multiprocessing.get_all_start_methods()
    if preferred is not None:
        if preferred not in available:
            raise ValueError(
                f"start method {preferred!r} not available here "
                f"(choose from {available})"
            )
        return preferred
    for method in ("fork", "spawn"):
        if method in available:
            return method
    return available[0]


def _worker_main(runner, tasks, conn) -> None:
    """Worker loop: pull tasks until the ``None`` sentinel arrives.

    Every task is bracketed by a synchronous ``start`` announcement and
    a ``done``/``error`` result on the worker's private pipe; a
    ``runner`` that raises is reported as an ``error`` message rather
    than killing the loop, so one bad task never takes the worker down
    with it.
    """
    while True:
        task = tasks.get()
        if task is None:
            conn.close()
            return
        conn.send(("start", task.index, os.getpid()))
        try:
            outcome = runner(task)
        except Exception:
            conn.send(("error", task.index, traceback.format_exc()))
        else:
            try:
                conn.send(("done", task.index, outcome))
            except Exception:
                # The *result* failed to ship (unpicklable payload,
                # message over the pipe's limits).  Dying here would
                # surface as an anonymous crash and burn a retry on a
                # task that will fail identically every time; a typed
                # error event names the real problem instead.  If the
                # pipe itself is gone this send fails too and the loop
                # exits — the parent sees EOF either way.
                conn.send(("error", task.index, traceback.format_exc()))


class SupervisedPool:
    """Worker processes + a task queue + per-worker result pipes."""

    def __init__(
        self,
        workers: int,
        runner: Callable[[Any], Any],
        start_method: Optional[str] = None,
        poll_interval: float = 0.05,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be positive")
        self.start_method = resolve_start_method(start_method)
        self._ctx = multiprocessing.get_context(self.start_method)
        self._runner = runner
        self._poll = poll_interval
        self._tasks: Any = self._ctx.Queue()
        self._workers: Dict[Any, Any] = {}  # parent conn -> Process
        self._running: Dict[int, int] = {}  # worker pid -> task index
        self._started: Set[int] = set()  # task indices ever started
        self._events: Deque[Event] = collections.deque()
        self._stopped = False
        # Spawn the full complement before the first queue write: under
        # fork this guarantees no queue feeder thread exists yet, so
        # children never inherit a half-alive thread.
        for _ in range(workers):
            self._spawn_worker()

    # -- workers --------------------------------------------------------------

    def _spawn_worker(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        try:
            process = self._ctx.Process(
                target=_worker_main,
                args=(self._runner, self._tasks, child_conn),
                daemon=True,
            )
            process.start()
        except BaseException:
            # Process construction or start can fail (fd exhaustion,
            # fork refusal); without this cleanup both pipe ends leak
            # on the exception edge (RPR010).
            parent_conn.close()
            child_conn.close()
            raise
        # Close the parent's copy of the child end: the pipe must reach
        # EOF the moment the worker dies, or crashes go unnoticed.
        child_conn.close()
        self._workers[parent_conn] = process
        telemetry.count("pool_workers_spawned")

    def worker_pids(self) -> List[int]:
        return sorted(process.pid for process in self._workers.values())

    @property
    def started_indices(self) -> Set[int]:
        """Task indices some worker has (at least) begun executing."""
        return set(self._started)

    # -- submission and events -------------------------------------------------

    def submit(self, task: Any) -> None:
        if self._stopped:
            raise PoolStoppedError("pool is stopped")
        telemetry.count("pool_tasks_submitted")
        self._tasks.put(task)

    def next_event(self, timeout: Optional[float] = None) -> Optional[Event]:
        """The next ``done``/``error``/``crash`` event, or ``None`` on
        timeout.  ``timeout=None`` blocks until an event arrives."""
        remaining = timeout
        while True:
            if self._events:
                return self._events.popleft()
            wait = self._poll if remaining is None else min(self._poll, remaining)
            ready = connection.wait(list(self._workers), timeout=wait)
            for conn in ready:
                self._drain(conn)
            if self._events:
                return self._events.popleft()
            if remaining is not None:
                remaining -= wait
                if remaining <= 0:
                    return None

    def _drain(self, conn: Any) -> None:
        """Ingest every buffered message; EOF means the worker died."""
        try:
            while conn.poll():
                self._ingest(conn.recv())
        except (EOFError, OSError):
            self._reap(conn)

    def _ingest(self, message: Tuple[Any, ...]) -> None:
        kind = message[0]
        if kind == "start":
            _, index, pid = message
            self._running[pid] = index
            self._started.add(index)
        elif kind == "done":
            _, index, outcome = message
            self._clear_running(index)
            self._events.append((EVENT_DONE, index, outcome))
        else:
            _, index, traceback_text = message
            self._clear_running(index)
            self._events.append((EVENT_ERROR, index, traceback_text))

    def _clear_running(self, index: int) -> None:
        for pid, running_index in list(self._running.items()):
            if running_index == index:
                del self._running[pid]

    def _reap(self, conn: Any) -> None:
        """A worker's pipe hit EOF: join it, report, spawn a replacement."""
        process = self._workers.pop(conn)
        conn.close()
        process.join()
        index = self._running.pop(process.pid, None)
        telemetry.count("pool_workers_reaped")
        if not self._stopped:
            self._spawn_worker()
        self._events.append((EVENT_CRASH, index, process.pid, process.exitcode))

    # -- shutdown --------------------------------------------------------------

    def stop(self, graceful: bool = True, join_timeout: float = 5.0) -> None:
        """Stop every worker; idempotent, and total on the error path.

        Graceful stop sends one sentinel per worker and joins; anything
        still alive afterwards — and everything, when ``graceful`` is
        False — is terminated, then killed if termination is ignored, so
        no worker can outlive the pool (KeyboardInterrupt included).
        """
        if self._stopped:
            return
        self._stopped = True
        procs = list(self._workers.values())
        try:
            if graceful:
                for _ in procs:
                    self._tasks.put(None)
                for process in procs:
                    process.join(timeout=join_timeout)
            for process in procs:
                if process.is_alive():
                    process.terminate()
            for process in procs:
                process.join(timeout=join_timeout)
                if process.is_alive():  # pragma: no cover - last resort
                    process.kill()
                    process.join(timeout=join_timeout)
        finally:
            # Even if a join/terminate raises (KeyboardInterrupt during
            # shutdown), the parent's pipe ends and queue buffers must
            # not leak (RPR010).
            for conn in list(self._workers):
                conn.close()
            self._workers.clear()
            self._running.clear()
            # Unflushed task-queue buffers must not block interpreter
            # exit after an interrupt.
            self._tasks.close()
            self._tasks.cancel_join_thread()
