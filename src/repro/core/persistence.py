"""Persisting the study to the data lake, and replaying from it.

The paper's cluster serves two access patterns (Section 2.2): predefined
analytics updated continuously as daily logs arrive, and *specific
queries on historical collections*.  This module implements both ends
for the reproduction:

* :class:`LakeSink` — attach it to a study run and every day's stage-1
  outputs (usage rows, protocol rows, hourly bins) are written into a
  day-partitioned :class:`~repro.dataflow.datalake.DataLake` as they are
  produced;
* :func:`replay_study` — rebuild a :class:`StudyData` purely from the
  lake, without the world model: the historical-query path.  Covers the
  aggregate-tier figures (2-9); the flow tier is not persisted (flow
  records remain in the probes' own logs in a real deployment).
"""

from __future__ import annotations

import datetime
from typing import List, Optional

from repro.core.study import LongitudinalStudy, StudyData
from repro.dataflow.datalake import DataLake, LineCodec, tsv_codec
from repro.services.thresholds import ActiveSubscriberCriterion, VisitClassifier
from repro.synthesis.flowgen import (
    PROTOCOL_CODEC,
    USAGE_CODEC,
    DayTraffic,
    HourlyVolume,
)
from repro.synthesis.population import Technology

USAGE_TABLE = "usage"
PROTOCOL_TABLE = "protocols"
HOURLY_TABLE = "hourly"

HOURLY_CODEC: LineCodec[HourlyVolume] = tsv_codec(
    from_fields=lambda fields: HourlyVolume(
        day=datetime.date.fromisoformat(fields[0]),
        technology=Technology(fields[1]),
        bin_index=int(fields[2]),
        bytes_down=int(fields[3]),
    ),
    to_fields=lambda row: [
        row.day.isoformat(),
        row.technology.value,
        str(row.bin_index),
        str(row.bytes_down),
    ],
)


class LakeSink:
    """Streams a study's stage-1 outputs into a data lake as it runs.

    Use with :meth:`PersistingStudy.run` or drive it manually via
    :meth:`store_day`.
    """

    def __init__(self, lake: DataLake) -> None:
        self.lake = lake
        self.days_written = 0

    def store_day(
        self,
        day: datetime.date,
        traffic: DayTraffic,
        hourly: Optional[List[HourlyVolume]] = None,
    ) -> None:
        if traffic.usage:
            self.lake.write_day(USAGE_TABLE, day, traffic.usage, USAGE_CODEC)
        if traffic.protocols:
            self.lake.write_day(
                PROTOCOL_TABLE, day, traffic.protocols, PROTOCOL_CODEC
            )
        if hourly:
            self.lake.write_day(HOURLY_TABLE, day, hourly, HOURLY_CODEC)
        self.days_written += 1


class PersistingStudy(LongitudinalStudy):
    """A study that also archives every processed day into a lake."""

    def __init__(self, *args, lake: DataLake, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.sink = LakeSink(lake)

    def process_day(self, data: StudyData, day, roles) -> None:  # type: ignore[override]
        traffic = self.generator.generate_day(day)
        if not traffic.usage:
            return
        self._consume_aggregate(data, day, traffic)
        hourly = None
        if "hourly" in roles:
            hourly = self.generator.generate_hourly(day, traffic)
            data.hourly.extend(hourly)
        if "flows" in roles:
            self._consume_flows(data, day, traffic, with_rtt="rtt" in roles)
        self.sink.store_day(day, traffic, hourly)


def replay_study(
    lake: DataLake,
    months: List,
    visit_classifier: Optional[VisitClassifier] = None,
    criterion: Optional[ActiveSubscriberCriterion] = None,
) -> StudyData:
    """Rebuild aggregate-tier StudyData from an archived lake.

    The world model is not consulted: this is the pure historical-query
    path.  Stage-2 figure modules run unchanged on the result.
    """
    from repro.analytics.activity import subscriber_days
    from repro.analytics.popularity import daily_service_stats
    from repro.core.config import COMPARISON_MONTHS

    classifier = visit_classifier or VisitClassifier()
    active_criterion = criterion or ActiveSubscriberCriterion()
    data = StudyData(months=list(months))
    for day in lake.days(USAGE_TABLE):
        usage = lake.read_day(USAGE_TABLE, day, USAGE_CODEC).collect()
        if not usage:
            continue
        day_rows = subscriber_days(usage, active_criterion)
        data.subscriber_days[day] = day_rows
        for technology in Technology:
            data.service_stats.extend(
                daily_service_stats(
                    usage, day_rows, classifier=classifier, technology=technology
                )
            )
        if (day.year, day.month) in COMPARISON_MONTHS:
            _replay_weekly(data, day, usage, day_rows, classifier)
    for day in lake.days(PROTOCOL_TABLE):
        data.protocol_rows.extend(
            lake.read_day(PROTOCOL_TABLE, day, PROTOCOL_CODEC).collect()
        )
    for day in lake.days(HOURLY_TABLE):
        data.hourly.extend(lake.read_day(HOURLY_TABLE, day, HOURLY_CODEC).collect())
    return data


def _replay_weekly(data: StudyData, day, usage, day_rows, classifier) -> None:
    iso_year, iso_week, _ = day.isocalendar()
    active_by_id = {
        entry.subscriber_id: entry.technology for entry in day_rows if entry.active
    }
    for subscriber_id, technology in active_by_id.items():
        data.weekly_active.setdefault((iso_year, iso_week, technology), set()).add(
            subscriber_id
        )
    for row in usage:
        technology = active_by_id.get(row.subscriber_id)
        if technology is None:
            continue
        if classifier.is_visit(row.service, row.bytes_down + row.bytes_up):
            data.weekly_visitors.setdefault(
                (iso_year, iso_week, row.service, technology), set()
            ).add(row.subscriber_id)
