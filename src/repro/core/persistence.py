"""Persisting the study to the data lake, and replaying from it.

The paper's cluster serves two access patterns (Section 2.2): predefined
analytics updated continuously as daily logs arrive, and *specific
queries on historical collections*.  This module implements both ends
for the reproduction:

* :class:`LakeSink` — attach it to a study run and every day's stage-1
  outputs (usage rows, protocol rows, hourly bins) are written into a
  day-partitioned :class:`~repro.dataflow.datalake.DataLake` as they are
  produced;
* :func:`replay_study` — rebuild a :class:`StudyData` purely from the
  lake, without the world model: the historical-query path.  Covers the
  aggregate-tier figures (2-9); the flow tier is not persisted (flow
  records remain in the probes' own logs in a real deployment).
"""

from __future__ import annotations

import datetime
import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # imported lazily at runtime to keep layering acyclic
    from repro.core.parallel import RunReport

from repro.core.study import LongitudinalStudy, StudyData
from repro.dataflow.columnar import ColumnSpec, ColumnarCodec
from repro.dataflow.datalake import DataLake, LineCodec, tsv_codec
from repro.dataflow.integrity import (
    DayAdmission,
    LakeIntegrity,
    register_codec_provider,
)
from repro.services.thresholds import ActiveSubscriberCriterion, VisitClassifier
from repro.synthesis.flowgen import (
    PROTOCOL_CODEC,
    USAGE_CODEC,
    DayTraffic,
    HourlyVolume,
)
from repro.synthesis.population import Technology

USAGE_TABLE = "usage"
PROTOCOL_TABLE = "protocols"
HOURLY_TABLE = "hourly"

_HOURLY_LINES: LineCodec[HourlyVolume] = tsv_codec(
    from_fields=lambda fields: HourlyVolume(
        day=datetime.date.fromisoformat(fields[0]),
        technology=Technology(fields[1]),
        bin_index=int(fields[2]),
        bytes_down=int(fields[3]),
    ),
    to_fields=lambda row: [
        row.day.isoformat(),
        row.technology.value,
        str(row.bin_index),
        str(row.bytes_down),
    ],
)

HOURLY_CODEC: ColumnarCodec[HourlyVolume] = ColumnarCodec(
    encode=_HOURLY_LINES.encode,
    decode=_HOURLY_LINES.decode,
    columns=[
        ColumnSpec("day", "date"),
        ColumnSpec("technology", "str"),
        ColumnSpec("bin_index", "int"),
        ColumnSpec("bytes_down", "int"),
    ],
    to_row=lambda row: (
        row.day,
        row.technology.value,
        row.bin_index,
        row.bytes_down,
    ),
    from_row=lambda row: HourlyVolume(
        day=row[0],
        technology=Technology(row[1]),
        bin_index=row[2],
        bytes_down=row[3],
    ),
    zone_columns=("technology",),
    day_column="day",
)

# Make the aggregate tables decodable by `repro fsck` record scans —
# registering the codec objects (not bare line decoders) lets fsck decode
# v2 chunk partitions of these tables too.
register_codec_provider(
    lambda: {
        USAGE_TABLE: USAGE_CODEC,
        PROTOCOL_TABLE: PROTOCOL_CODEC,
        HOURLY_TABLE: HOURLY_CODEC,
    }
)


class LakeSink:
    """Streams a study's stage-1 outputs into a data lake as it runs.

    Use with :meth:`PersistingStudy.run` or drive it manually via
    :meth:`store_day`.
    """

    def __init__(self, lake: DataLake) -> None:
        self.lake = lake
        self.days_written = 0

    def store_day(
        self,
        day: datetime.date,
        traffic: DayTraffic,
        hourly: Optional[List[HourlyVolume]] = None,
    ) -> None:
        if traffic.usage:
            self.lake.write_day(USAGE_TABLE, day, traffic.usage, USAGE_CODEC)
        if traffic.protocols:
            self.lake.write_day(
                PROTOCOL_TABLE, day, traffic.protocols, PROTOCOL_CODEC
            )
        if hourly:
            self.lake.write_day(HOURLY_TABLE, day, hourly, HOURLY_CODEC)
        self.days_written += 1


class PersistingStudy(LongitudinalStudy):
    """A study that also archives every processed day into a lake."""

    def __init__(self, *args, lake: DataLake, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.sink = LakeSink(lake)

    def process_day(self, data: StudyData, day, roles) -> None:  # type: ignore[override]
        traffic = self.generator.generate_day(day)
        if not traffic.usage:
            return
        self._consume_aggregate(data, day, traffic)
        hourly = None
        if "hourly" in roles:
            hourly = self.generator.generate_hourly(day, traffic)
            data.hourly.extend(hourly)
        if "flows" in roles:
            self._consume_flows(data, day, traffic, with_rtt="rtt" in roles)
        self.sink.store_day(day, traffic, hourly)


def replay_study(
    lake: DataLake,
    months: List,
    visit_classifier: Optional[VisitClassifier] = None,
    criterion: Optional[ActiveSubscriberCriterion] = None,
    *,
    integrity: Optional[LakeIntegrity] = None,
    admission: Optional[DayAdmission] = None,
) -> StudyData:
    """Rebuild aggregate-tier StudyData from an archived lake.

    The world model is not consulted: this is the pure historical-query
    path.  Stage-2 figure modules run unchanged on the result.

    The replay is day-major: each calendar day's partitions (across all
    three tables) are read and merged together, so an ``integrity``
    context can score the whole day and an ``admission`` gate can drop a
    degraded day atomically — the same hole in the calendar that an
    :class:`~repro.tstat.outages.OutageCalendar` outage leaves.  Without
    the keyword arguments the result is identical to the historical
    unguarded replay.
    """
    from repro.analytics.activity import subscriber_days
    from repro.analytics.popularity import daily_service_stats
    from repro.core.config import COMPARISON_MONTHS

    classifier = visit_classifier or VisitClassifier()
    active_criterion = criterion or ActiveSubscriberCriterion()
    data = StudyData(months=list(months))
    all_days = sorted(
        set(lake.days(USAGE_TABLE))
        | set(lake.days(PROTOCOL_TABLE))
        | set(lake.days(HOURLY_TABLE))
    )
    for day in all_days:
        usage = lake.read_day(USAGE_TABLE, day, USAGE_CODEC, integrity).collect()
        protocols = lake.read_day(
            PROTOCOL_TABLE, day, PROTOCOL_CODEC, integrity
        ).collect()
        hourly = lake.read_day(HOURLY_TABLE, day, HOURLY_CODEC, integrity).collect()
        if integrity is not None and admission is not None:
            if not admission.admit(integrity.ledger.report_for(day)):
                continue
        if usage:
            day_rows = subscriber_days(usage, active_criterion)
            data.subscriber_days[day] = day_rows
            for technology in Technology:
                data.service_stats.extend(
                    daily_service_stats(
                        usage,
                        day_rows,
                        classifier=classifier,
                        technology=technology,
                    )
                )
            if (day.year, day.month) in COMPARISON_MONTHS:
                _replay_weekly(data, day, usage, day_rows, classifier)
        data.protocol_rows.extend(protocols)
        data.hourly.extend(hourly)
    return data


@dataclass
class ReplayResult:
    """A replayed study plus its run manifest (quality reports included)."""

    data: StudyData
    report: "RunReport"


def run_replay(
    lake: DataLake,
    months: List,
    visit_classifier: Optional[VisitClassifier] = None,
    criterion: Optional[ActiveSubscriberCriterion] = None,
    *,
    policy: str = "strict",
    min_day_quality: float = 0.999,
    verify_checksums: bool = True,
) -> ReplayResult:
    """Replay a lake under an integrity policy and produce a manifest.

    The returned :class:`~repro.core.parallel.RunReport` carries one
    :class:`~repro.core.parallel.DayRecord` per lake day (``status`` is
    ``"excluded"`` for days the quality gate dropped) and the per-day
    :class:`~repro.dataflow.integrity.DayQualityReport` dicts in its
    ``data_quality`` section.  Deterministic end to end: same lake bytes
    and same policy ⇒ identical manifest.
    """
    from repro.core.parallel import DayRecord, RunReport

    integrity = LakeIntegrity.for_lake_root(
        lake.root, policy=policy, verify=verify_checksums
    )
    admission = DayAdmission(min_quality=min_day_quality)
    data = replay_study(
        lake,
        months,
        visit_classifier,
        criterion,
        integrity=integrity,
        admission=admission,
    )
    key = f"replay|{policy}|{min_day_quality}|{verify_checksums}"
    report = RunReport(
        config_hash=hashlib.sha256(key.encode("utf-8")).hexdigest()[:12],
        seed=0,
        start_method="none",
        workers=0,
        execution="replay",
    )
    excluded = set(admission.excluded)
    for quality in admission.reports:
        report.records.append(
            DayRecord(
                day=quality.day,
                status="excluded" if quality.day in excluded else "completed",
                attempts=1,
                wall_time=0.0,
                worker=None,
                source="lake",
                error=(
                    f"quality {quality.quality:.6f} below "
                    f"{min_day_quality}" if quality.day in excluded else ""
                ),
            )
        )
    report.data_quality = admission.quality_dicts()
    return ReplayResult(data=data, report=report)


def _replay_weekly(data: StudyData, day, usage, day_rows, classifier) -> None:
    iso_year, iso_week, _ = day.isocalendar()
    active_by_id = {
        entry.subscriber_id: entry.technology for entry in day_rows if entry.active
    }
    for subscriber_id, technology in active_by_id.items():
        data.weekly_active.setdefault((iso_year, iso_week, technology), set()).add(
            subscriber_id
        )
    for row in usage:
        technology = active_by_id.get(row.subscriber_id)
        if technology is None:
            continue
        if classifier.is_visit(row.service, row.bytes_down + row.bytes_up):
            data.weekly_visitors.setdefault(
                (iso_year, iso_week, row.service, technology), set()
            ).add(row.subscriber_id)
