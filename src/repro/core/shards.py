"""Subscriber-range sharding of a study day (DESIGN.md §15).

A study day can fan out into N independent shard-tasks, each covering a
disjoint, contiguous subscriber range.  Sharding is an *execution*
parameter: every shard replays the day's RNG streams at full population
width (see :meth:`TrafficGenerator.generate_day`) and restricts only row
emission and stage-1 analytics to its range, so the union of shards is
bit-identical to the unsharded study for the same seed — for any shard
count — and ``config_hash`` is unaffected.

This module holds the shard plan, the :class:`ShardExtra` sidecar that
rides back with each shard's :class:`~repro.core.study.StudyData`
partial, and the disk-spill codec used when resident partials exceed the
memory watermark (a v2 column chunk of base64 pickle segments, so spill
files get the same torn/checksum/count detection as lake partitions).

Deliberately free of ``repro.core.study`` imports: study builds on the
types here, and ``merge_day_shards`` (the fan-in) lives in study.
"""

from __future__ import annotations

import base64
import datetime
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.dataflow.columnar import ColumnSpec, ColumnarCodec, read_chunk, write_chunk
from repro.dataflow.datalake import tsv_codec
from repro.synthesis.population import Technology

_SEGMENT_CHARS = 1 << 20  # base64 characters per spill chunk row

DEFAULT_SPILL_WATERMARK_BYTES = 256 * 1024 * 1024


@dataclass(frozen=True)
class ShardSpec:
    """One shard's slice of the subscriber axis: ``[lo, hi)``."""

    index: int
    count: int
    lo: int
    hi: int

    @property
    def is_lead(self) -> bool:
        """Lead shard contributes the full-day fields every shard can
        derive identically (protocol rows, hourly volumes)."""
        return self.index == 0

    @property
    def label(self) -> str:
        return f"{self.index}of{self.count}"

    @property
    def bounds(self) -> Tuple[int, int]:
        return (self.lo, self.hi)


def plan_shards(population: int, count: int) -> Tuple[ShardSpec, ...]:
    """Split ``[0, population)`` into ``count`` contiguous ranges.

    The first ``population % count`` shards take one extra subscriber
    (``np.array_split`` semantics); shards beyond the population are
    empty but still planned, so checkpoints stay addressable.
    """
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    if population < 0:
        raise ValueError(f"population must be >= 0, got {population}")
    base, extra = divmod(population, count)
    specs = []
    lo = 0
    for index in range(count):
        hi = lo + base + (1 if index < extra else 0)
        specs.append(ShardSpec(index=index, count=count, lo=lo, hi=hi))
        lo = hi
    return tuple(specs)


@dataclass
class ShardExtra:
    """Fan-in sidecar of one shard's day partial.

    Carries what the shard-local :class:`StudyData` cannot express:
    full-day positions for order-sensitive lists, per-technology active
    counts for the popularity denominator, raw (ip, service) pairs so
    the census can recompute cross-shard sharing, domain byte *totals*
    (shares only divide correctly over the merged day), and RTT samples
    tagged with their full-day flow positions.
    """

    day: datetime.date
    shard: ShardSpec
    processed: bool = False
    first_positions: Optional[np.ndarray] = None  # skeleton pos per SubscriberDay
    active_counts: Dict[Technology, int] = field(default_factory=dict)
    flow_stage: bool = False
    rtt_stage: bool = False
    pair_ips: Optional[np.ndarray] = None
    pair_codes: Optional[np.ndarray] = None
    pair_services: Tuple[str, ...] = ()
    domain_totals: Dict[str, Dict[str, int]] = field(default_factory=dict)
    rtt: Dict[str, Tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)


# ----------------------------------------------------------------------
# Spill-to-disk: v2 column chunks of pickled partials.


@dataclass(frozen=True)
class SpillSegment:
    """One base64 slice of a pickled shard partial."""

    day: datetime.date
    shard: int
    seq: int
    payload: str


_SPILL_LINES = tsv_codec(
    from_fields=lambda fields: SpillSegment(
        day=datetime.date.fromisoformat(fields[0]),
        shard=int(fields[1]),
        seq=int(fields[2]),
        payload=fields[3],
    ),
    to_fields=lambda seg: [
        seg.day.isoformat(),
        str(seg.shard),
        str(seg.seq),
        seg.payload,
    ],
)

SPILL_CODEC: ColumnarCodec[SpillSegment] = ColumnarCodec(
    encode=_SPILL_LINES.encode,
    decode=_SPILL_LINES.decode,
    columns=[
        ColumnSpec("day", "date"),
        ColumnSpec("shard", "int"),
        ColumnSpec("seq", "int"),
        ColumnSpec("payload", "str"),
    ],
    to_row=lambda seg: (seg.day, seg.shard, seg.seq, seg.payload),
    from_row=lambda row: SpillSegment(
        day=row[0], shard=row[1], seq=row[2], payload=row[3]
    ),
    day_column="day",
)


def spill_file_name(day: datetime.date, shard_index: int) -> str:
    return f"day={day.isoformat()}.shard={shard_index}.spill"


def spill_partial(
    path: Path, day: datetime.date, shard_index: int, payload: object
) -> int:
    """Pickle ``payload`` into a v2 column chunk at ``path``.

    Returns the pickled byte count (what the spill freed from memory).
    """
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    encoded = base64.b64encode(blob).decode("ascii")
    segments = [
        SpillSegment(
            day=day,
            shard=shard_index,
            seq=seq,
            payload=encoded[start : start + _SEGMENT_CHARS],
        )
        for seq, start in enumerate(range(0, len(encoded), _SEGMENT_CHARS))
    ] or [SpillSegment(day=day, shard=shard_index, seq=0, payload="")]
    path.parent.mkdir(parents=True, exist_ok=True)
    write_chunk(path, segments, SPILL_CODEC, day)
    return len(blob)


def load_spilled(path: Path) -> object:
    """Stream a spilled partial back from disk (inverse of spill)."""
    scan = read_chunk(path, SPILL_CODEC)
    segments = sorted(scan.records, key=lambda seg: seg.seq)
    encoded = "".join(seg.payload for seg in segments)
    return pickle.loads(base64.b64decode(encoded.encode("ascii")))
