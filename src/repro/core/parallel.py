"""Parallel study execution across worker processes.

The paper processed its 247 billion records on a Hadoop cluster; the
reproduction's equivalent lever is that every study day is independent —
generation and stage-1 aggregation share no state across days (per-day
seeds, DESIGN.md §6).  :func:`run_parallel` partitions the planned days
round-robin over worker processes (round-robin, so the expensive
comparison-month days spread evenly), runs each chunk in a fresh
:class:`~repro.core.study.LongitudinalStudy` rebuilt from the picklable
config, and merges the partial :class:`StudyData` results.

The output is identical to :meth:`LongitudinalStudy.run` (asserted in
tests): parallelism changes wall-clock, never results.

Workers ship their partials back as :class:`ColumnarPartial`\\ s: the
bulky flow-tier payloads — per-(service, year) RTT sample lists, per-day
server-IP sets and (address → shared?) role maps — are flattened into
NumPy arrays before pickling, so the parent deserializes a handful of
buffers instead of millions of boxed floats and dict entries.  Packing
and unpacking are exact inverses; the merged result is unchanged.
"""

from __future__ import annotations

import datetime
import multiprocessing
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.config import StudyConfig
from repro.core.study import LongitudinalStudy, StudyData

_Chunk = List[Tuple[datetime.date, Set[str]]]


@dataclass
class ColumnarPartial:
    """One worker's StudyData with the heavy flow-tier fields columnarized."""

    data: StudyData
    rtt: List[Tuple[Tuple[str, int], np.ndarray]]
    ip_sets: List[Tuple[str, datetime.date, np.ndarray]]
    ip_roles: List[Tuple[str, datetime.date, np.ndarray, np.ndarray]]

    @classmethod
    def pack(cls, data: StudyData) -> "ColumnarPartial":
        """Flatten the object-graph fields into compact arrays (in place)."""
        rtt = [
            (key, np.asarray(samples, dtype=np.float64))
            for key, samples in data.rtt_samples.items()
        ]
        ip_sets = [
            (service, day, np.fromiter(sorted(addresses), np.int64, len(addresses)))
            for service, entries in data.daily_ip_sets.items()
            for day, addresses in entries
        ]
        ip_roles = [
            (
                service,
                day,
                np.fromiter(roles.keys(), np.int64, len(roles)),
                np.fromiter(roles.values(), bool, len(roles)),
            )
            for service, entries in data.daily_ip_roles.items()
            for day, roles in entries
        ]
        data.rtt_samples = {}
        data.daily_ip_sets = {}
        data.daily_ip_roles = {}
        return cls(data=data, rtt=rtt, ip_sets=ip_sets, ip_roles=ip_roles)

    def unpack(self) -> StudyData:
        """Rebuild the exact StudyData the worker reduced."""
        data = self.data
        for key, samples in self.rtt:
            data.rtt_samples[key] = samples.tolist()
        for service, day, addresses in self.ip_sets:
            data.daily_ip_sets.setdefault(service, []).append(
                (day, set(addresses.tolist()))
            )
        for service, day, addresses, shared in self.ip_roles:
            data.daily_ip_roles.setdefault(service, []).append(
                (day, dict(zip(addresses.tolist(), shared.tolist())))
            )
        return data


def _run_chunk(args: Tuple[StudyConfig, _Chunk]) -> ColumnarPartial:
    """Worker entry point: process one chunk of planned days."""
    config, chunk = args
    study = LongitudinalStudy(config)
    data = study.empty_data()
    for day, roles in chunk:
        study.process_day(data, day, roles)
    return ColumnarPartial.pack(data)


def partition_plan(
    plan: Dict[datetime.date, Set[str]], workers: int
) -> List[_Chunk]:
    """Round-robin partition of the planned days into ``workers`` chunks."""
    if workers <= 0:
        raise ValueError("workers must be positive")
    chunks: List[_Chunk] = [[] for _ in range(workers)]
    for index, day in enumerate(sorted(plan)):
        chunks[index % workers].append((day, plan[day]))
    return [chunk for chunk in chunks if chunk]


def run_parallel(
    config: StudyConfig,
    workers: Optional[int] = None,
) -> StudyData:
    """Run the study across worker processes; results match a serial run."""
    if workers is None:
        workers = max(1, (multiprocessing.cpu_count() or 2) - 1)
    planner = LongitudinalStudy(config)
    plan = planner.planned_days()
    chunks = partition_plan(plan, workers)
    if len(chunks) <= 1:
        return planner.run()
    with multiprocessing.get_context("fork").Pool(len(chunks)) as pool:
        partials = pool.map(_run_chunk, [(config, chunk) for chunk in chunks])
    merged = planner.empty_data()
    for partial in partials:
        merged.merge(partial.unpack())
    return merged
