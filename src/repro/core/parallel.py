"""Fault-tolerant parallel study execution.

The paper processed its 247 billion records on a Hadoop cluster that
survived probe outages, disk failures, and software upgrades (§2); the
reproduction's equivalent lever is that every study day is independent —
generation and stage-1 aggregation share no state across days (per-day
seeds, DESIGN.md §6).  :func:`execute_study` therefore dispatches *one
task per planned day* to a :class:`~repro.core.pool.SupervisedPool` and
treats partial failure as the normal case:

* a worker exception comes back as a structured :class:`DayFailure`
  naming the day, attempt, and traceback — never as an opaque
  ``Pool.map`` abort that throws away every other chunk;
* transient failures (I/O flakiness, injected
  :class:`~repro.core.faults.TransientWorkerError`, a worker process
  dying mid-task) are retried with bounded exponential backoff;
  deterministic failures fail fast;
* days that fail permanently surface as a :class:`ChunkError` naming the
  day, seed, and traceback — raised only after every other day has been
  drained (and checkpointed), so one poison day cannot lose the rest;
* each completed day is checkpointed through a
  :class:`~repro.dataflow.datalake.CheckpointStore` keyed by
  ``(config_hash, day)``, making a killed run resumable with
  bit-identical merged results;
* the whole run is described by a :class:`RunReport` manifest (per-day
  wall time, attempts, worker id, checkpoint hits) that ``repro run
  --report`` prints and checkpointed runs persist as ``manifest.json``.

Partials are merged strictly in calendar order — hierarchically, as a
pairwise binary-counter tree over adjacent calendar ranges, which is
exactly equal to the sequential fold because :meth:`StudyData.merge` is
disjoint-insert/concatenate — so the merged :class:`StudyData` is
*exactly* equal to :meth:`LongitudinalStudy.run`: parallelism, retries,
crashes, resumes, and sharding change wall-clock, never results
(asserted in tests).

A study day can additionally fan out into N shard-tasks (DESIGN.md §15):
``execute_study(..., shards=N)`` plans one :class:`DayTask` per
``(day, shard)``, workers run :meth:`LongitudinalStudy.day_shard_partial`
over their disjoint subscriber range, and the parent fans each day back
in with :func:`~repro.core.study.merge_day_shards` before the calendar
tree merge.  Checkpoints and the manifest become shard-granular, so a
killed 100k-subscriber run resumes mid-day.  Completed partials above a
memory watermark spill to disk as v2 column chunks
(``shard_spill_dir``) and stream back in during fan-in.

Workers ship their partials back as :class:`ColumnarPartial`\\ s: the
bulky flow-tier payloads — per-(service, year) RTT sample lists, per-day
server-IP sets and (address → shared?) role maps — are flattened into
NumPy arrays before pickling, so the parent deserializes a handful of
buffers instead of millions of boxed floats and dict entries.  Packing
and unpacking are exact inverses; the merged result is unchanged.
"""

from __future__ import annotations

import dataclasses
import datetime
import json
import math
import multiprocessing
import os
import threading
import time
import traceback
import zlib
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.core import fsio
from repro.core.config import StudyConfig, config_hash
from repro.core.faults import FaultPlan, is_transient
from repro.core.pool import (
    EVENT_CRASH,
    EVENT_DONE,
    EVENT_ERROR,
    SupervisedPool,
    WorkerEnvironmentError,
    resolve_start_method,
)
from repro.core.shards import (
    DEFAULT_SPILL_WATERMARK_BYTES,
    ShardSpec,
    load_spilled,
    plan_shards,
    spill_file_name,
    spill_partial,
)
from repro.core.study import LongitudinalStudy, StudyData, merge_day_shards
from repro.dataflow.datalake import CheckpointError, CheckpointStore
from repro.telemetry import runtime as telemetry_runtime
from repro.telemetry.clock import Clock, MonotonicClock, VirtualClock, clock_for
from repro.telemetry.export import RunEvent, RunTelemetry
from repro.telemetry.metrics import merge_snapshots
from repro.telemetry.runtime import Telemetry, TelemetrySnapshot
from repro.telemetry.spans import SpanRecord, reparent

_Chunk = List[Tuple[datetime.date, Set[str]]]

#: In-flight dispatch window per pool worker: enough queued tasks that a
#: settling worker never idles waiting for the parent's next ``submit``,
#: small enough that a cooperative cancel drains quickly (only tasks
#: already handed to the queue keep running after a cancel).
_SUBMIT_WINDOW_PER_WORKER = 2

#: Dispatch/settlement key: (day, shard index); shard 0 when unsharded.
_Key = Tuple[datetime.date, int]

#: Per-process memo of studies rebuilt from their (hashed) config, so a
#: worker handling many single-day tasks builds its world once.
_STUDY_CACHE: Dict[str, LongitudinalStudy] = {}  # repro: noqa[RPR004] -- per-process memo keyed by config hash; entries are rebuilt deterministically from the picklable config, never mutated after construction and never shipped between processes, so workers cannot diverge


@dataclass
class ColumnarPartial:
    """One worker's StudyData with the heavy flow-tier fields columnarized."""

    data: StudyData
    rtt: List[Tuple[Tuple[str, int], np.ndarray]]
    ip_sets: List[Tuple[str, datetime.date, np.ndarray]]
    ip_roles: List[Tuple[str, datetime.date, np.ndarray, np.ndarray]]
    #: Shard fan-in sidecar (:class:`~repro.core.shards.ShardExtra`);
    #: ``None`` for unsharded partials.  Read via ``getattr`` when the
    #: partial may come from a pre-shard checkpoint pickle.
    extra: Optional[object] = None

    @classmethod
    def pack(cls, data: StudyData, extra: Optional[object] = None) -> "ColumnarPartial":
        """Flatten the object-graph fields into compact arrays.

        ``data`` is left untouched: the returned partial wraps a shallow
        copy whose three flow-tier dicts are emptied, so callers that
        pack a partial and keep using their StudyData never see silent
        loss.  (The copy shares the remaining aggregate lists with
        ``data`` — packing is a serialization step, not a deep fork.)
        """
        rtt = [
            (key, np.asarray(samples, dtype=np.float64))
            for key, samples in data.rtt_samples.items()
        ]
        ip_sets = [
            (service, day, np.fromiter(sorted(addresses), np.int64, len(addresses)))
            for service, entries in data.daily_ip_sets.items()
            for day, addresses in entries
        ]
        ip_roles = [
            (
                service,
                day,
                np.fromiter(roles.keys(), np.int64, len(roles)),
                np.fromiter(roles.values(), bool, len(roles)),
            )
            for service, entries in data.daily_ip_roles.items()
            for day, roles in entries
        ]
        shell = dataclasses.replace(
            data, rtt_samples={}, daily_ip_sets={}, daily_ip_roles={}
        )
        return cls(
            data=shell, rtt=rtt, ip_sets=ip_sets, ip_roles=ip_roles, extra=extra
        )

    def approx_nbytes(self) -> int:
        """Cheap resident-size estimate used by the spill watermark.

        Exact for the columnarized arrays; the boxed aggregate rows are
        charged a flat per-row estimate (a pickle round-trip per ``put``
        would cost more than the spill it gates).
        """
        total = 0
        for _, samples in self.rtt:
            total += samples.nbytes
        for _, _, addresses in self.ip_sets:
            total += addresses.nbytes
        for _, _, addresses, shared in self.ip_roles:
            total += addresses.nbytes + shared.nbytes
        data = self.data
        total += 96 * sum(len(rows) for rows in data.subscriber_days.values())
        total += 112 * len(data.service_stats)
        total += 64 * (len(data.protocol_rows) + len(data.hourly))
        total += 96 * len(data.census)
        return total

    def unpack(self) -> StudyData:
        """Rebuild the exact StudyData the worker reduced."""
        data = self.data
        for key, samples in self.rtt:
            data.rtt_samples[key] = samples.tolist()
        for service, day, addresses in self.ip_sets:
            data.daily_ip_sets.setdefault(service, []).append(
                (day, set(addresses.tolist()))
            )
        for service, day, addresses, shared in self.ip_roles:
            data.daily_ip_roles.setdefault(service, []).append(
                (day, dict(zip(addresses.tolist(), shared.tolist())))
            )
        return data


# ----------------------------------------------------------------------
# Tasks and outcomes


@dataclass(frozen=True)
class DayTask:
    """One unit of dispatch: a single planned day at a given attempt."""

    index: int
    day: datetime.date
    roles: Tuple[str, ...]
    attempt: int
    config: StudyConfig
    fault_plan: Optional[FaultPlan] = None
    #: When set, the worker activates a fresh Telemetry bundle around the
    #: day and ships the snapshot back on the result pipe (no live state
    #: ever crosses the process boundary).
    telemetry_enabled: bool = False
    #: Clock spec for the worker's bundle; matches the parent's clock so
    #: virtual-clock runs stay deterministic end to end.
    clock_spec: str = "monotonic"
    #: Subscriber range this task covers; ``None`` runs the whole day.
    shard: Optional[ShardSpec] = None

    @property
    def shard_index(self) -> int:
        return self.shard.index if self.shard is not None else 0

    @property
    def label(self) -> str:
        suffix = f"/{self.shard.label}" if self.shard is not None else ""
        return f"{self.day.isoformat()}{suffix}"


@dataclass(frozen=True)
class DaySuccess:
    index: int
    day: datetime.date
    attempt: int
    partial: ColumnarPartial
    wall_time: float
    worker: int
    telemetry: Optional[TelemetrySnapshot] = None
    shard: Optional[int] = None


@dataclass(frozen=True)
class DayFailure:
    """A structured worker failure: which day, which attempt, why."""

    index: int
    day: datetime.date
    attempt: int
    transient: bool
    error: str
    traceback_text: str
    worker: Optional[int]
    #: Elapsed seconds the failed attempt actually burned (the manifest
    #: used to record a flat 0.0 for failed days).
    wall_time: float = 0.0
    shard: Optional[int] = None

    @property
    def label(self) -> str:
        suffix = f"/shard{self.shard}" if self.shard is not None else ""
        return f"{self.day.isoformat()}{suffix}"


def _cached_study(config: StudyConfig) -> LongitudinalStudy:
    key = config_hash(config)
    study = _STUDY_CACHE.get(key)
    if study is None:
        if len(_STUDY_CACHE) >= 4:
            _STUDY_CACHE.clear()
        study = LongitudinalStudy(config)
        _STUDY_CACHE[key] = study
    return study


def _run_chunk(task: DayTask) -> object:
    """Worker entry point: process one day, report the outcome.

    Spawn-clean by construction: everything it touches arrives through
    the picklable ``task`` or module-level imports, so the function works
    identically under fork and spawn start methods (RPR004 walks this
    function's import closure for shared mutable state).
    """
    clock = clock_for(task.clock_spec)
    started = clock.now()
    bundle: Optional[Telemetry] = None
    shard = task.shard.index if task.shard is not None else None
    try:
        if task.fault_plan is not None:
            task.fault_plan.fire(task.day, task.attempt, shard=shard)
        study = _cached_study(task.config)
        if task.telemetry_enabled:
            bundle = Telemetry.for_spec(task.clock_spec)
            with telemetry_runtime.activate(bundle):
                data, extra = _day_payload(study, task)
        else:
            data, extra = _day_payload(study, task)
        partial = ColumnarPartial.pack(data, extra=extra)
    except Exception as exc:
        return DayFailure(
            index=task.index,
            day=task.day,
            attempt=task.attempt,
            transient=is_transient(exc),
            error=repr(exc),
            traceback_text=traceback.format_exc(),
            worker=os.getpid(),
            wall_time=clock.now() - started,
            shard=shard,
        )
    return DaySuccess(
        index=task.index,
        day=task.day,
        attempt=task.attempt,
        partial=partial,
        wall_time=clock.now() - started,
        worker=os.getpid(),
        telemetry=bundle.snapshot() if bundle is not None else None,
        shard=shard,
    )


def _day_payload(study: LongitudinalStudy, task: DayTask):
    """The worker's StudyData plus shard sidecar (``None`` unsharded)."""
    if task.shard is None:
        return study.day_partial(task.day, set(task.roles)), None
    return study.day_shard_partial(task.day, set(task.roles), task.shard)


# ----------------------------------------------------------------------
# Retry policy, manifest, and errors


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for transient failures.

    ``retries`` counts *additional* attempts after the first (so a day
    may run ``retries + 1`` times); worker crashes count as transient.
    Deterministic failures are never retried.

    The exponential curve is clamped at ``max_backoff`` — a high
    ``--retries`` with ``factor`` growth must not turn into minute-long
    sleeps — and, when a ``key`` identifies the retrying unit, the delay
    is spread deterministically over ``[jitter * max, max]`` so shards
    that failed together (one crashed worker takes a whole submit
    window with it) do not retry in lockstep.  The spread hashes only
    the key and attempt: same schedule every run, no RNG state.
    """

    retries: int = 2
    backoff: float = 0.05
    factor: float = 2.0
    #: Ceiling on a single backoff sleep, in seconds.
    max_backoff: float = 5.0
    #: Lower edge of the jitter window as a fraction of the full delay;
    #: 1.0 disables jitter entirely.
    jitter: float = 0.5

    def delay(self, failed_attempt: int, key: object = None) -> float:
        """Seconds to back off after 0-based ``failed_attempt`` failed.

        ``key`` (e.g. ``(day, shard)``) decorrelates concurrent
        retriers; without one the clamped exponential is returned as-is.
        """
        base = min(self.backoff * (self.factor ** failed_attempt),
                   self.max_backoff)
        if key is None or self.jitter >= 1.0:
            return base
        token = f"{key!r}|{failed_attempt}".encode("utf-8")
        fraction = (zlib.crc32(token) % 10_000) / 10_000.0
        return base * (self.jitter + (1.0 - self.jitter) * fraction)


@dataclass(frozen=True)
class DayRecord:
    """One manifest row: how a planned day reached its final state."""

    day: datetime.date
    status: str  # "completed" | "failed" | "excluded" (quality-gated replay)
    attempts: int
    wall_time: float
    worker: Optional[int]
    source: str  # "worker" | "serial" | "checkpoint"
    error: str = ""
    #: Which shard of the day this row covers (0 of 1 when unsharded).
    shard: int = 0
    shards: int = 1

    @property
    def retries(self) -> int:
        return max(0, self.attempts - 1)

    @property
    def label(self) -> str:
        """Manifest key: the ISO day, suffixed ``/k`` when sharded."""
        return self.day.isoformat() + (
            f"/{self.shard}" if self.shards > 1 else ""
        )

    def to_dict(self) -> dict:
        return {
            "day": self.day.isoformat(),
            "status": self.status,
            "attempts": self.attempts,
            "retries": self.retries,
            "wall_time": round(self.wall_time, 6),
            "worker": self.worker,
            "source": self.source,
            "error": self.error,
            "shard": self.shard,
            "shards": self.shards,
        }


@dataclass
class RunReport:
    """The run manifest: everything an operator needs post-mortem."""

    config_hash: str
    seed: int
    start_method: str
    workers: int
    records: List[DayRecord] = field(default_factory=list)
    crashes: int = 0
    wall_time: float = 0.0
    #: How the days actually ran: "serial", "pool", or "none" (every day
    #: came from checkpoints / nothing was planned).  ``start_method`` is
    #: always the *resolved* method — never the ``None`` default — even
    #: when no pool was spawned, so manifests from defaulted runs still
    #: say what a resume would use.
    execution: str = "none"
    #: Per-day data-quality dicts (see :class:`repro.dataflow.integrity.
    #: DayQualityReport.to_dict`) for runs that read from the lake under
    #: an integrity policy; empty for world-model runs.
    data_quality: List[dict] = field(default_factory=list)
    #: Shard fan-out per day (1 = unsharded; records are per shard-task).
    shards: int = 1
    #: Completed partials spilled to disk under the memory watermark.
    spills: int = 0

    @property
    def planned_days(self) -> int:
        return len({record.day for record in self.records})

    @property
    def planned_tasks(self) -> int:
        return len(self.records)

    @property
    def completed(self) -> int:
        return sum(1 for r in self.records if r.status == "completed")

    @property
    def failed(self) -> int:
        return sum(1 for r in self.records if r.status == "failed")

    @property
    def checkpoint_hits(self) -> int:
        return sum(1 for r in self.records if r.source == "checkpoint")

    @property
    def retries(self) -> int:
        return sum(r.retries for r in self.records)

    def worker_wall_time(self) -> float:
        return math.fsum(r.wall_time for r in self.records)

    def telemetry_dict(self) -> dict:
        """The manifest's telemetry section: per-day wall time, retry
        counts, and where each day's result came from."""
        return {
            "worker_wall_time": round(self.worker_wall_time(), 6),
            "retries": self.retries,
            "checkpoint_hits": self.checkpoint_hits,
            "days": {
                record.label: {
                    "wall_time": round(record.wall_time, 6),
                    "retries": record.retries,
                    "source": record.source,
                }
                for record in self.records
            },
        }

    def to_dict(self) -> dict:
        return {
            "version": 2,
            "config_hash": self.config_hash,
            "seed": self.seed,
            "start_method": self.start_method,
            "execution": self.execution,
            "workers": self.workers,
            "shards": self.shards,
            "spills": self.spills,
            "planned_days": self.planned_days,
            "planned_tasks": self.planned_tasks,
            "completed": self.completed,
            "failed": self.failed,
            "checkpoint_hits": self.checkpoint_hits,
            "retries": self.retries,
            "crashes": self.crashes,
            "wall_time": round(self.wall_time, 6),
            "telemetry": self.telemetry_dict(),
            "days": [record.to_dict() for record in self.records],
            "data_quality": self.data_quality,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def telemetry_lines(self) -> List[str]:
        """The telemetry section, rendered for ``repro run --report``."""
        lines = [
            f"telemetry: {self.worker_wall_time():.2f}s of per-day work, "
            f"{self.retries} retr{'y' if self.retries == 1 else 'ies'}, "
            f"{self.checkpoint_hits} checkpoint hit(s)",
            "day         wall(s)  retries  source",
        ]
        for record in self.records:
            lines.append(
                f"{record.label}  {record.wall_time:7.3f}  "
                f"{record.retries:>7}  {record.source}"
            )
        return lines

    def summary_lines(self) -> List[str]:
        if self.shards > 1:
            tasks = (
                f"days: {self.planned_days} planned x {self.shards} shards "
                f"= {self.planned_tasks} tasks, {self.completed} completed "
                f"({self.checkpoint_hits} from checkpoints), "
                f"{self.failed} failed"
            )
            if self.spills:
                tasks += f", {self.spills} partial(s) spilled"
        else:
            tasks = (
                f"days: {self.planned_days} planned, "
                f"{self.completed} completed "
                f"({self.checkpoint_hits} from checkpoints), "
                f"{self.failed} failed"
            )
        return [
            f"run {self.config_hash} seed={self.seed} "
            f"method={self.start_method} ({self.execution}) "
            f"workers={self.workers}",
            tasks,
            f"faults: {self.retries} retr{'y' if self.retries == 1 else 'ies'}, "
            f"{self.crashes} worker crash(es)",
            f"wall: {self.wall_time:.2f}s elapsed, "
            f"{self.worker_wall_time():.2f}s of per-day work",
        ]

    def day_lines(self) -> List[str]:
        lines = ["day         status     att  wall(s)  worker  source"]
        for record in self.records:
            lines.append(
                f"{record.label}  {record.status:<9}  "
                f"{record.attempts:>3}  {record.wall_time:7.3f}  "
                f"{record.worker or '-':>6}  {record.source}"
                + (f"  {record.error}" if record.error else "")
            )
        return lines


class ChunkError(RuntimeError):
    """A day failed permanently: names the day(s), seed, and traceback.

    Raised only after every other day finished (and, when checkpointing,
    was persisted), so nothing else is lost: ``report`` carries the full
    manifest and a resumed run recomputes only the failed days.
    """

    def __init__(
        self,
        failures: List[DayFailure],
        seed: int,
        report: Optional[RunReport] = None,
    ) -> None:
        self.failures = tuple(failures)
        self.seed = seed
        self.report = report
        first = self.failures[0]
        days = ", ".join(f.label for f in self.failures)
        message = (
            f"{len(self.failures)} day(s) failed permanently "
            f"(seed {seed}): {days}\n"
            f"first failure: day {first.label} after "
            f"{first.attempt + 1} attempt(s): {first.error}"
        )
        if first.traceback_text:
            message += f"\n{first.traceback_text}"
        super().__init__(message)

    @property
    def days(self) -> Tuple[datetime.date, ...]:
        return tuple(f.day for f in self.failures)


class CancelToken:
    """Cooperative stop signal for a run in flight.

    Thread-safe: the owner (another thread, a signal handler, the
    service control plane) calls :meth:`set` once; the dispatch loops
    poll :meth:`is_set` between tasks.  Cancellation is *cooperative* —
    tasks already handed to a worker run to completion and are
    checkpointed, so a cancelled run is always resumable.
    """

    def __init__(self) -> None:
        self._event = threading.Event()

    def set(self) -> None:
        self._event.set()

    def is_set(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: float) -> bool:
        """Block up to ``timeout`` seconds; True if cancelled meanwhile."""
        return self._event.wait(timeout)


class RunCancelled(RuntimeError):
    """The run stopped at a :class:`CancelToken`, not at a failure.

    Raised only after every in-flight task drained and checkpointed (and
    the manifest was written), so ``report`` describes a consistent,
    resumable prefix of the run: re-running with ``resume=True`` picks
    up exactly the tasks that never settled.
    """

    def __init__(self, seed: int, report: Optional[RunReport] = None) -> None:
        self.seed = seed
        self.report = report
        completed = report.completed if report is not None else 0
        super().__init__(
            f"run cancelled (seed {seed}): {completed} task(s) completed "
            "and checkpointed; resume to finish the rest"
        )


@dataclass
class RunResult:
    """What :func:`execute_study` hands back: the data plus its manifest."""

    data: StudyData
    report: RunReport
    #: Populated only when :func:`execute_study` ran with a telemetry
    #: bundle: the merged metrics, span forest, and execution events.
    telemetry: Optional[RunTelemetry] = None


# ----------------------------------------------------------------------
# Planning


def partition_plan(
    plan: Dict[datetime.date, Set[str]], workers: int
) -> List[_Chunk]:
    """Round-robin partition of the planned days into ``workers`` chunks.

    Retained for coarse-grained chunking experiments and tests; the
    fault-tolerant dispatcher schedules single-day tasks dynamically and
    does not pre-partition.
    """
    if workers <= 0:
        raise ValueError("workers must be positive")
    chunks: List[_Chunk] = [[] for _ in range(workers)]
    for index, day in enumerate(sorted(plan)):
        chunks[index % workers].append((day, plan[day]))
    return [chunk for chunk in chunks if chunk]


# ----------------------------------------------------------------------
# Execution


class _PartialStore:
    """Completed partials, spilling the largest past a memory watermark.

    With no spill directory this is a plain keyed dict.  With one, every
    ``put`` re-checks the resident-size estimate and spills the largest
    partials (as v2 column chunks, :mod:`repro.core.shards`) until the
    estimate is back under the watermark; :meth:`pop` streams spilled
    partials back in during fan-in and deletes the file.
    """

    def __init__(
        self,
        spill_dir: Optional[object],
        watermark_bytes: Optional[int],
    ) -> None:
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None  # type: ignore[arg-type]
        self.watermark = (
            watermark_bytes
            if watermark_bytes is not None
            else DEFAULT_SPILL_WATERMARK_BYTES
        )
        self._resident: Dict[_Key, ColumnarPartial] = {}
        self._sizes: Dict[_Key, int] = {}
        self._spilled: Dict[_Key, Path] = {}
        self.spills = 0

    def __contains__(self, key: _Key) -> bool:
        return key in self._resident or key in self._spilled

    def __len__(self) -> int:
        return len(self._resident) + len(self._spilled)

    def put(self, key: _Key, partial: ColumnarPartial) -> None:
        self._resident[key] = partial
        self._sizes[key] = partial.approx_nbytes()
        if self.spill_dir is None:
            return
        total = sum(self._sizes.values())
        while total > self.watermark and self._resident:
            victim = max(self._sizes, key=self._sizes.__getitem__)
            total -= self._sizes.pop(victim)
            day, shard = victim
            path = self.spill_dir / spill_file_name(day, shard)
            spill_partial(path, day, shard, self._resident.pop(victim))
            self._spilled[victim] = path
            self.spills += 1
            telemetry_runtime.count("shard_partials_spilled")

    def pop(self, key: _Key) -> ColumnarPartial:
        """Remove and return a partial, restoring it from disk if spilled."""
        if key in self._resident:
            self._sizes.pop(key, None)
            return self._resident.pop(key)
        path = self._spilled.pop(key)
        partial = load_spilled(path)
        path.unlink(missing_ok=True)
        telemetry_runtime.count("shard_partials_restored")
        assert isinstance(partial, ColumnarPartial)
        return partial


class _Dispatch:
    """Shared bookkeeping for the serial and pooled execution paths."""

    def __init__(
        self,
        policy: RetryPolicy,
        store: Optional[CheckpointStore],
        progress: Optional[Callable[[datetime.date], None]],
        partials: Optional[_PartialStore] = None,
        shard_count: int = 1,
    ) -> None:
        self.policy = policy
        self.store = store
        self.progress = progress
        self.shard_count = shard_count
        self.partials = partials if partials is not None else _PartialStore(None, None)
        self.records: Dict[_Key, DayRecord] = {}
        self.failures: List[DayFailure] = []
        self.crashes = 0
        self.day_telemetry: Dict[_Key, TelemetrySnapshot] = {}
        self.events: List[RunEvent] = []
        self._day_done: Dict[datetime.date, int] = {}

    def _checkpoint_shard(self, shard: int) -> Optional[Tuple[int, int]]:
        return (shard, self.shard_count) if self.shard_count > 1 else None

    def _note_done(self, day: datetime.date) -> None:
        """Fire progress once every shard of ``day`` has settled."""
        done = self._day_done.get(day, 0) + 1
        self._day_done[day] = done
        if done == self.shard_count and self.progress is not None:
            self.progress(day)

    def succeed(self, outcome: DaySuccess, source: str) -> None:
        shard = outcome.shard or 0
        key = (outcome.day, shard)
        self.partials.put(key, outcome.partial)
        self.records[key] = DayRecord(
            day=outcome.day,
            status="completed",
            attempts=outcome.attempt + 1,
            wall_time=outcome.wall_time,
            worker=outcome.worker,
            source=source,
            shard=shard,
            shards=self.shard_count,
        )
        # Completion accounting moves regardless of whether a telemetry
        # snapshot rode back: these counters used to sit inside the
        # snapshot guard and silently undercounted.
        telemetry_runtime.count("pool_days_completed")
        telemetry_runtime.observe("pool_day_wall_seconds", outcome.wall_time)
        if outcome.telemetry is not None:
            self.day_telemetry[key] = outcome.telemetry
        if self.store is not None:
            try:
                self.store.save(
                    outcome.day,
                    outcome.partial,
                    shard=self._checkpoint_shard(shard),
                )
            except (OSError, CheckpointError) as exc:
                # The day's result is already in hand — a full disk (or
                # injected ENOSPC/torn write) must not fail the run, it
                # only costs this day its resume shortcut.  Record it so
                # operators see the durability gap in the manifest.
                telemetry_runtime.count("checkpoint_write_failures")
                attrs: Tuple[Tuple[str, str], ...] = (("error", repr(exc)),)
                if self.shard_count > 1:
                    attrs += (("shard", str(shard)),)
                self.events.append(
                    RunEvent(
                        "checkpoint_write_failed",
                        day=outcome.day.isoformat(),
                        attrs=attrs,
                    )
                )
        self._note_done(outcome.day)

    def fail(self, failure: DayFailure) -> None:
        self.failures.append(failure)
        shard = failure.shard or 0
        self.records[(failure.day, shard)] = DayRecord(
            day=failure.day,
            status="failed",
            attempts=failure.attempt + 1,
            wall_time=failure.wall_time,
            worker=failure.worker,
            source="worker",
            error=failure.error,
            shard=shard,
            shards=self.shard_count,
        )
        attrs: Tuple[Tuple[str, str], ...] = (("error", failure.error),)
        if failure.shard is not None:
            attrs += (("shard", str(failure.shard)),)
        self.events.append(
            RunEvent(
                "day_failed",
                day=failure.day.isoformat(),
                attrs=attrs,
            )
        )

    def note_retry(self, task: DayTask, failure: DayFailure) -> None:
        """Record a scheduled retry of a transient failure."""
        telemetry_runtime.count("pool_retries")
        attrs: Tuple[Tuple[str, str], ...] = (
            ("attempt", str(task.attempt + 1)),
            ("error", failure.error),
        )
        if task.shard is not None:
            attrs += (("shard", str(task.shard.index)),)
        self.events.append(
            RunEvent(
                "retry",
                day=task.day.isoformat(),
                attrs=attrs,
            )
        )

    def note_crash(self, exitcode: Optional[int]) -> None:
        """Record one worker process death (and its respawn)."""
        self.crashes += 1
        telemetry_runtime.count("pool_worker_crashes")
        self.events.append(
            RunEvent("worker_crash", attrs=(("exit_code", str(exitcode)),))
        )

    def hit_checkpoint(
        self, day: datetime.date, partial: ColumnarPartial, shard: int = 0
    ) -> None:
        key = (day, shard)
        self.partials.put(key, partial)
        self.records[key] = DayRecord(
            day=day,
            status="completed",
            attempts=0,
            wall_time=0.0,
            worker=None,
            source="checkpoint",
            shard=shard,
            shards=self.shard_count,
        )
        attrs: Tuple[Tuple[str, str], ...] = ()
        if self.shard_count > 1:
            attrs = (("shard", str(shard)),)
        self.events.append(
            RunEvent("checkpoint_hit", day=day.isoformat(), attrs=attrs)
        )
        self._note_done(day)


def _run_serial(
    dispatch: _Dispatch,
    remaining: List[DayTask],
    cancel: Optional[CancelToken] = None,
) -> None:
    """In-process execution with the same retry semantics as the pool.

    The cancel token is checked between tasks (and while backing off
    before a retry): the task in flight always settles and checkpoints,
    tasks after the cancel point are simply never started.
    """
    for proto in remaining:
        if cancel is not None and cancel.is_set():
            return
        attempt = 0
        while True:
            task = replace(proto, attempt=attempt)
            outcome = _run_chunk(task)
            if isinstance(outcome, DaySuccess):
                dispatch.succeed(outcome, source="serial")
                break
            assert isinstance(outcome, DayFailure)
            if outcome.transient and attempt < dispatch.policy.retries:
                if cancel is not None and cancel.is_set():
                    # A cancelled run does not retry: the task stays
                    # unsettled and the resume recomputes it.
                    return
                dispatch.note_retry(task, outcome)
                pause = dispatch.policy.delay(attempt, key=_retry_key(task))
                if cancel is not None:
                    if cancel.wait(pause):
                        return
                else:
                    time.sleep(pause)
                attempt += 1
                continue
            dispatch.fail(outcome)
            break


def _run_pooled(
    dispatch: _Dispatch,
    remaining: List[DayTask],
    workers: int,
    start_method: Optional[str],
    pool_observer: Optional[Callable[[SupervisedPool], None]] = None,
    cancel: Optional[CancelToken] = None,
) -> str:
    """Dispatch one task per (day, shard) to a supervised pool; returns
    the start method actually used.

    Submission is windowed (a bounded number of tasks in the queue at
    once) rather than all-upfront: results are identical — tasks are
    independent and settle by index — but a cooperative cancel only has
    to drain the window, not the whole plan.  On cancel, pending and
    deferred tasks are dropped unstarted; everything already submitted
    settles (and checkpoints) before this function returns.
    """
    policy = dispatch.policy
    worker_count = min(workers, len(remaining))
    pool = SupervisedPool(
        worker_count, runner=_run_chunk, start_method=start_method
    )
    # Retry backoff runs on real time even under a virtual telemetry
    # clock: scheduling is operational, never exported, and a virtual
    # "now" would make eligibility depend on loop iteration counts.
    sched = MonotonicClock()
    # Workers that die before ever announcing a task signal a broken
    # environment (bad interpreter, unimportable package under spawn);
    # respawning those forever would hang the run.
    idle_crash_budget = max(8, 2 * worker_count)
    try:
        if pool_observer is not None:
            pool_observer(pool)
        outstanding: Dict[int, DayTask] = {}
        deferred: List[Tuple[float, DayTask]] = []
        pending: List[DayTask] = list(remaining)
        pending.reverse()  # pop() from the tail keeps plan order
        window = _SUBMIT_WINDOW_PER_WORKER * worker_count

        def cancelled() -> bool:
            return cancel is not None and cancel.is_set()

        def refill() -> None:
            while pending and len(outstanding) < window and not cancelled():
                task = pending.pop()
                outstanding[task.index] = task
                pool.submit(task)

        refill()
        while outstanding or deferred or (pending and not cancelled()):
            if cancelled():
                # Drop everything not yet handed to the queue; what is
                # already submitted drains below and checkpoints.
                pending.clear()
                deferred.clear()
                if not outstanding:
                    break
            refill()
            if deferred:
                now = sched.now()
                ready = [entry for entry in deferred if entry[0] <= now]
                deferred = [entry for entry in deferred if entry[0] > now]
                for _, task in ready:
                    outstanding[task.index] = task
                    pool.submit(task)
                if not outstanding:
                    time.sleep(policy.backoff or 0.01)
                    continue
            event = pool.next_event(timeout=0.05)
            if event is None:
                continue
            kind = event[0]
            if kind == EVENT_DONE:
                _, index, outcome = event
                task = outstanding.pop(index, None)
                if task is None:
                    continue  # duplicate of an already-settled task
                if isinstance(outcome, DaySuccess):
                    dispatch.succeed(outcome, source="worker")
                else:
                    _settle_failure(dispatch, task, outcome, deferred, sched)
            elif kind == EVENT_ERROR:
                _, index, traceback_text = event
                task = outstanding.pop(index, None)
                if task is None:
                    continue
                dispatch.fail(
                    DayFailure(
                        index=task.index,
                        day=task.day,
                        attempt=task.attempt,
                        transient=False,
                        error="unhandled worker exception",
                        traceback_text=traceback_text,
                        worker=None,
                        shard=task.shard.index if task.shard else None,
                    )
                )
            elif kind == EVENT_CRASH:
                _, index, pid, exitcode = event
                dispatch.note_crash(exitcode)
                if index is not None and index in outstanding:
                    task = outstanding.pop(index)
                    crash = DayFailure(
                        index=task.index,
                        day=task.day,
                        attempt=task.attempt,
                        transient=True,
                        error=f"worker {pid} died (exit code {exitcode})",
                        traceback_text="",
                        worker=pid,
                        shard=task.shard.index if task.shard else None,
                    )
                    _settle_failure(dispatch, task, crash, deferred, sched)
                else:
                    idle_crash_budget -= 1
                    if idle_crash_budget < 0:
                        raise WorkerEnvironmentError(
                            "workers keep dying before accepting work "
                            f"(last: pid {pid}, exit code {exitcode}); "
                            "the worker environment is broken"
                        )
                    # The worker died between dequeuing a task and
                    # announcing it: resubmit whatever never started.
                    # Duplicates are harmless — days are deterministic
                    # and the first settled result wins.
                    started = pool.started_indices
                    for task in list(outstanding.values()):
                        if task.index not in started:
                            pool.submit(task)
        pool.stop(graceful=True)
    finally:
        pool.stop(graceful=False)
    return pool.start_method


def _settle_failure(
    dispatch: _Dispatch,
    task: DayTask,
    failure: DayFailure,
    deferred: List[Tuple[float, DayTask]],
    sched: Clock,
) -> None:
    """Retry a transient failure (with backoff) or record it as final."""
    if failure.transient and task.attempt < dispatch.policy.retries:
        dispatch.note_retry(task, failure)
        eligible_at = sched.now() + dispatch.policy.delay(
            task.attempt, key=_retry_key(task)
        )
        deferred.append((eligible_at, replace(task, attempt=task.attempt + 1)))
        return
    dispatch.fail(failure)


def _retry_key(task: DayTask) -> Tuple[str, int]:
    """Stable per-(day, shard) identity for backoff decorrelation."""
    shard = task.shard.index if task.shard is not None else 0
    return (task.day.isoformat(), shard)


def _assemble_run_telemetry(
    bundle: Telemetry,
    dispatch: _Dispatch,
    digest: str,
    seed: int,
) -> RunTelemetry:
    """Merge day snapshots and the parent trace into one RunTelemetry.

    Deterministic regardless of worker completion order: day metric
    snapshots merge in sorted-day order with the parent's registry last
    (so parent gauges win), and each day's spans are re-id'd past every
    earlier day before the parent's own trace is appended — the exported
    forest depends only on (config, seed, calendar, clock spec).
    """
    parent = bundle.snapshot()
    ordered = sorted(dispatch.day_telemetry)  # (day, shard) keys
    metrics = merge_snapshots(
        [dispatch.day_telemetry[key].metrics for key in ordered]
        + [parent.metrics]
    )
    spans: List[SpanRecord] = []
    offset = 0
    for key in ordered:
        day_spans = list(dispatch.day_telemetry[key].spans)
        spans.extend(reparent(day_spans, id_offset=offset, root_parent=None))
        offset += max((r.span_id for r in day_spans), default=-1) + 1
    spans.extend(reparent(list(parent.spans), id_offset=offset, root_parent=None))
    clock_name = (
        "virtual" if isinstance(bundle.clock, VirtualClock) else "monotonic"
    )
    return RunTelemetry(
        config_hash=digest,
        seed=seed,
        clock=clock_name,
        metrics=metrics,
        spans=spans,
        events=list(dispatch.events),
    )


def _merge_calendar(parts: Iterable[StudyData]) -> Optional[StudyData]:
    """Hierarchical pairwise merge of calendar-ordered day partials.

    A binary-counter fold: each :meth:`StudyData.merge` joins two
    *adjacent* calendar ranges, so at most ``log2(N)`` partials are live
    at once (the point when spilled partials stream back lazily) while
    the result stays exactly equal to the sequential left fold — merge
    is disjoint-insert/concatenate, hence associative over ordered,
    non-overlapping ranges.
    """
    stack: List[Tuple[int, StudyData]] = []  # (tree level, merged range)
    for data in parts:
        level = 0
        while stack and stack[-1][0] == level:
            _, earlier = stack.pop()
            earlier.merge(data)
            data = earlier
            level += 1
        stack.append((level, data))
    merged: Optional[StudyData] = None
    for _, data in stack:  # oldest (largest) range first
        if merged is None:
            merged = data
        else:
            merged.merge(data)
    return merged


def _fan_in_day(
    planner: LongitudinalStudy,
    dispatch: _Dispatch,
    day: datetime.date,
    specs: Tuple[ShardSpec, ...],
) -> StudyData:
    """Merge one day's shard partials back into the unsharded partial."""
    parts = []
    for spec in specs:
        partial = dispatch.partials.pop((day, spec.index))
        extra = getattr(partial, "extra", None)
        if extra is None:
            # ValueError keeps execute_study's typed-error contract
            # (RPR009): this is corrupted input state, not an I/O fault.
            raise ValueError(
                f"shard partial {day.isoformat()}/{spec.label} carries no "
                "fan-in sidecar (checkpoint from an incompatible run?)"
            )
        parts.append((partial.unpack(), extra))
    return merge_day_shards(day, parts, planner.world.rib)


def execute_study(
    config: StudyConfig,
    workers: Optional[int] = None,
    *,
    start_method: Optional[str] = None,
    checkpoint_root: Optional[object] = None,
    resume: bool = False,
    retry: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    progress: Optional[Callable[[datetime.date], None]] = None,
    pool_observer: Optional[Callable[[SupervisedPool], None]] = None,
    telemetry: Optional[Telemetry] = None,
    shards: int = 1,
    shard_spill_dir: Optional[object] = None,
    spill_watermark_bytes: Optional[int] = None,
    cancel: Optional[CancelToken] = None,
) -> RunResult:
    """Run the study fault-tolerantly; returns the data and its manifest.

    ``checkpoint_root`` enables the per-day checkpoint tier (a directory;
    partials land under ``config=<hash>/``).  With ``resume=True``,
    checkpointed days are loaded instead of recomputed — results are
    bit-identical either way.  Permanent failures raise
    :class:`ChunkError` after all other days have been drained and
    checkpointed; the manifest is written even then.

    ``shards`` fans each day out into that many subscriber-range tasks
    (DESIGN.md §15).  Sharding is an execution parameter: the merged
    result, ``config_hash``, and checkpoint compatibility at ``shards=1``
    are all unchanged, and any shard count yields the identical
    :class:`StudyData`.  ``shard_spill_dir`` (with an optional
    ``spill_watermark_bytes``, default 256 MiB) lets completed partials
    above the watermark spill to disk until fan-in.

    ``telemetry`` opts the run into measurement: the parent bundle is
    activated around planning, dispatch, and merge; workers collect into
    fresh bundles on the same clock spec and ship snapshots back with
    their partials; :attr:`RunResult.telemetry` carries the merged
    :class:`~repro.telemetry.export.RunTelemetry`.  ``None`` (default)
    costs one no-op call per instrumentation site.

    ``cancel`` opts the run into cooperative cancellation: when the
    token is set, no further tasks start, every in-flight task drains
    and checkpoints, the manifest is written, and :class:`RunCancelled`
    is raised — the run is always resumable from exactly where it
    stopped.
    """
    policy = retry or RetryPolicy()
    if workers is None:
        workers = max(1, (multiprocessing.cpu_count() or 2) - 1)
    if workers < 1:
        raise ValueError("workers must be positive")
    if shards < 1:
        raise ValueError("shards must be positive")
    planner = LongitudinalStudy(config)
    plan = planner.planned_days()
    days = sorted(plan)
    digest = config_hash(config)
    specs: Tuple[Optional[ShardSpec], ...] = (
        plan_shards(len(planner.world.population), shards)
        if shards > 1
        else (None,)
    )
    store = (
        CheckpointStore(checkpoint_root, digest)  # type: ignore[arg-type]
        if checkpoint_root is not None
        else None
    )
    run_clock: Clock = (
        telemetry.clock if telemetry is not None else MonotonicClock()
    )
    clock_spec = (
        "virtual"
        if telemetry is not None and isinstance(telemetry.clock, VirtualClock)
        else "monotonic"
    )

    def scope():
        return (
            telemetry_runtime.activate(telemetry)
            if telemetry is not None
            else nullcontext()
        )

    started = run_clock.now()
    partial_store = _PartialStore(shard_spill_dir, spill_watermark_bytes)
    dispatch = _Dispatch(
        policy, store, progress, partials=partial_store, shard_count=shards
    )
    execution = "none"
    method = resolve_start_method(start_method)

    with scope():
        with telemetry_runtime.span("run", config_hash=digest):
            if store is not None and resume:
                with telemetry_runtime.span("resume"):
                    for day in days:
                        for spec in specs:
                            shard_key = (
                                (spec.index, spec.count)
                                if spec is not None
                                else None
                            )
                            if not store.has(day, shard=shard_key):
                                continue
                            try:
                                partial = store.load(day, shard=shard_key)
                            except CheckpointError:
                                continue  # unreadable or foreign: recompute
                            dispatch.hit_checkpoint(
                                day,
                                partial,
                                shard=spec.index if spec is not None else 0,
                            )

            remaining: List[DayTask] = []
            index = 0
            for day in days:
                roles = tuple(sorted(plan[day]))
                for spec in specs:
                    shard_index = spec.index if spec is not None else 0
                    if (day, shard_index) not in dispatch.partials:
                        remaining.append(
                            DayTask(
                                index,
                                day,
                                roles,
                                0,
                                config,
                                fault_plan,
                                telemetry_enabled=telemetry is not None,
                                clock_spec=clock_spec,
                                shard=spec,
                            )
                        )
                    index += 1
            if remaining and not (cancel is not None and cancel.is_set()):
                if workers == 1 or len(remaining) == 1:
                    execution = "serial"
                    with telemetry_runtime.span("dispatch", mode="serial"):
                        _run_serial(dispatch, remaining, cancel=cancel)
                else:
                    execution = "pool"
                    with telemetry_runtime.span("dispatch", mode="pool"):
                        method = _run_pooled(
                            dispatch,
                            remaining,
                            workers,
                            start_method,
                            pool_observer,
                            cancel=cancel,
                        )

    report = RunReport(
        config_hash=digest,
        seed=config.world.seed,
        start_method=method,
        workers=workers,
        records=[dispatch.records[key] for key in sorted(dispatch.records)],
        crashes=dispatch.crashes,
        wall_time=run_clock.now() - started,
        execution=execution,
        shards=shards,
        spills=partial_store.spills,
    )
    if store is not None:
        try:
            fsio.write_and_replace(
                store.manifest_path,
                report.to_json().encode("utf-8"),
                surface=fsio.SURFACE_MANIFEST,
            )
        except OSError:
            # The manifest is an operator artifact, not an input to the
            # result: disk pressure here must not fail an otherwise
            # complete run.  Resume re-derives everything from the
            # checkpoints themselves.
            telemetry_runtime.count("manifest_write_failures")
    if cancel is not None and cancel.is_set():
        # Cancellation outranks any concurrent failure: neither state is
        # final — the resume retries failed *and* never-started tasks.
        raise RunCancelled(seed=config.world.seed, report=report)
    if dispatch.failures:
        raise ChunkError(dispatch.failures, seed=config.world.seed, report=report)
    with scope():
        with telemetry_runtime.span("merge", days=len(days), shards=shards):
            if shards == 1:
                day_datas = (
                    dispatch.partials.pop((day, 0)).unpack() for day in days
                )
            else:
                shard_specs = tuple(
                    spec for spec in specs if spec is not None
                )
                day_datas = (
                    _fan_in_day(planner, dispatch, day, shard_specs)
                    for day in days
                )
            merged = _merge_calendar(day_datas)
    if merged is None:
        merged = planner.empty_data()
    run_telemetry = (
        _assemble_run_telemetry(telemetry, dispatch, digest, config.world.seed)
        if telemetry is not None
        else None
    )
    return RunResult(data=merged, report=report, telemetry=run_telemetry)


def run_parallel(
    config: StudyConfig,
    workers: Optional[int] = None,
    *,
    start_method: Optional[str] = None,
    checkpoint_root: Optional[object] = None,
    resume: bool = False,
    retry: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    shards: int = 1,
    shard_spill_dir: Optional[object] = None,
) -> StudyData:
    """Run the study across worker processes; results match a serial run."""
    return execute_study(
        config,
        workers,
        start_method=start_method,
        checkpoint_root=checkpoint_root,
        resume=resume,
        retry=retry,
        fault_plan=fault_plan,
        shards=shards,
        shard_spill_dir=shard_spill_dir,
    ).data
