"""Parallel study execution across worker processes.

The paper processed its 247 billion records on a Hadoop cluster; the
reproduction's equivalent lever is that every study day is independent —
generation and stage-1 aggregation share no state across days (per-day
seeds, DESIGN.md §6).  :func:`run_parallel` partitions the planned days
round-robin over worker processes (round-robin, so the expensive
comparison-month days spread evenly), runs each chunk in a fresh
:class:`~repro.core.study.LongitudinalStudy` rebuilt from the picklable
config, and merges the partial :class:`StudyData` results.

The output is identical to :meth:`LongitudinalStudy.run` (asserted in
tests): parallelism changes wall-clock, never results.
"""

from __future__ import annotations

import datetime
import multiprocessing
from typing import Dict, List, Optional, Set, Tuple

from repro.core.config import StudyConfig
from repro.core.study import LongitudinalStudy, StudyData

_Chunk = List[Tuple[datetime.date, Set[str]]]


def _run_chunk(args: Tuple[StudyConfig, _Chunk]) -> StudyData:
    """Worker entry point: process one chunk of planned days."""
    config, chunk = args
    study = LongitudinalStudy(config)
    data = study.empty_data()
    for day, roles in chunk:
        study.process_day(data, day, roles)
    return data


def partition_plan(
    plan: Dict[datetime.date, Set[str]], workers: int
) -> List[_Chunk]:
    """Round-robin partition of the planned days into ``workers`` chunks."""
    if workers <= 0:
        raise ValueError("workers must be positive")
    chunks: List[_Chunk] = [[] for _ in range(workers)]
    for index, day in enumerate(sorted(plan)):
        chunks[index % workers].append((day, plan[day]))
    return [chunk for chunk in chunks if chunk]


def run_parallel(
    config: StudyConfig,
    workers: Optional[int] = None,
) -> StudyData:
    """Run the study across worker processes; results match a serial run."""
    if workers is None:
        workers = max(1, (multiprocessing.cpu_count() or 2) - 1)
    planner = LongitudinalStudy(config)
    plan = planner.planned_days()
    chunks = partition_plan(plan, workers)
    if len(chunks) <= 1:
        return planner.run()
    with multiprocessing.get_context("fork").Pool(len(chunks)) as pool:
        partials = pool.map(_run_chunk, [(config, chunk) for chunk in chunks])
    merged = planner.empty_data()
    for partial in partials:
        merged.merge(partial)
    return merged
