"""Configuration of a longitudinal study run."""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Tuple

from repro.synthesis.world import WorldConfig

#: The two months contrasted throughout the paper (Figs. 2, 4, 10).
COMPARISON_MONTHS: Tuple[Tuple[int, int], ...] = ((2014, 4), (2017, 4))


@dataclass(frozen=True)
class StudyConfig:
    """Knobs of a :class:`~repro.core.study.LongitudinalStudy` run.

    ``day_stride`` samples the 54-month span (1 = every day, as in the
    paper; 3 = every third day, the default trade-off).  The comparison
    months (April 2014/2017) are always covered at full daily resolution.
    ``flow_days_per_month`` controls how many days per month are expanded
    to the flow tier for the RTT and infrastructure analyses.
    """

    world: WorldConfig = field(default_factory=WorldConfig)
    day_stride: int = 3
    flow_days_per_month: int = 1
    rtt_days_per_comparison_month: int = 4
    max_flows_per_usage: int = 8

    def __post_init__(self) -> None:
        if self.day_stride <= 0:
            raise ValueError("day_stride must be positive")
        if self.flow_days_per_month < 0:
            raise ValueError("flow_days_per_month must be >= 0")


def config_hash(config: StudyConfig) -> str:
    """Deterministic digest of every knob that shapes study results.

    Per-day checkpoints (DESIGN.md §10) are keyed by this hash: two runs
    share checkpoints iff their configs are field-for-field identical, so
    a partial result computed under one seed/population/span can never
    leak into a run with another.  The digest canonicalizes through JSON
    (sorted keys, dates via ``str``) so it is stable across processes and
    interpreter restarts.
    """
    payload = dataclasses.asdict(config)
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def small_study(seed: int = 7) -> StudyConfig:
    """A fast configuration used by tests and the quickstart example."""
    return StudyConfig(
        world=WorldConfig(seed=seed, adsl_count=120, ftth_count=60),
        day_stride=7,
        flow_days_per_month=1,
        rtt_days_per_comparison_month=2,
        max_flows_per_usage=6,
    )
