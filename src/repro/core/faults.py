"""Deterministic fault injection for the parallel study runner.

The paper's pipeline ran for five years on shared infrastructure and
treated partial failure as the normal case: probes rebooted, disks died,
and software upgrades restarted jobs mid-day (Section 2).  The
reproduction's equivalent is this harness: tests hand
:func:`~repro.core.parallel.execute_study` a :class:`FaultPlan` that
makes a *specific* worker attempt on a *specific* day raise, stall, or
die outright — so every recovery path (retry, pool repair, resume from
checkpoint) is exercised by deterministic scenarios instead of luck.

Faults key on ``(day, attempt)``: ``times=2`` fails the first two
attempts and lets the third succeed, ``times=-1`` fails every attempt (a
poison day).  Plans are small frozen dataclasses, so they pickle cleanly
into workers under both the fork and spawn start methods.
"""

from __future__ import annotations

import datetime
import time
from dataclasses import dataclass
from typing import Optional, Tuple

#: Fault kinds a :class:`FaultSpec` can inject.
KIND_TRANSIENT = "transient"  # raise TransientWorkerError (retried)
KIND_ERROR = "error"  # raise FaultInjected (deterministic, not retried)
KIND_KILL = "kill"  # os._exit — simulates a worker killed mid-chunk
KIND_SLEEP = "sleep"  # stall the attempt, then proceed normally

_KINDS = frozenset({KIND_TRANSIENT, KIND_ERROR, KIND_KILL, KIND_SLEEP})


class FaultInjected(RuntimeError):
    """A deterministic injected failure (bad input, poison day)."""


class TransientWorkerError(RuntimeError):
    """An injected failure modelling a recoverable fault (I/O hiccup)."""


#: Exception types the runner treats as transient and therefore retries.
#: Real worker code surfaces I/O flakiness as OSError/EOFError; injected
#: transient faults use :class:`TransientWorkerError`.
TRANSIENT_EXCEPTIONS: Tuple[type, ...] = (
    TransientWorkerError,
    OSError,
    EOFError,
)


def is_transient(exc: BaseException) -> bool:
    """Whether the runner should retry after ``exc`` (bounded, backed off)."""
    return isinstance(exc, TRANSIENT_EXCEPTIONS)


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: what happens on which day, how many times.

    ``times`` bounds the attempts that fault: the first ``times`` attempts
    (0-based attempt numbers ``< times``) trigger, later ones succeed;
    ``-1`` means every attempt (a poison day that never recovers).
    """

    day: datetime.date
    kind: str = KIND_TRANSIENT
    times: int = 1
    exit_code: int = 19
    sleep_seconds: float = 0.0
    #: Restrict the fault to one shard of the day; ``None`` hits every
    #: task of the day (sharded or not).
    shard: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")

    def triggers(self, attempt: int) -> bool:
        return self.times < 0 or attempt < self.times

    def matches(self, day: datetime.date, shard: Optional[int]) -> bool:
        if self.day != day:
            return False
        return self.shard is None or self.shard == shard

    def to_dict(self) -> dict:
        """JSON form for chaos trial reports (DESIGN.md §17)."""
        payload = {
            "day": self.day.isoformat(),
            "kind": self.kind,
            "times": self.times,
            "shard": self.shard,
        }
        if self.kind == KIND_KILL:
            payload["exit_code"] = self.exit_code
        if self.kind == KIND_SLEEP:
            payload["sleep_seconds"] = self.sleep_seconds
        return payload


@dataclass(frozen=True)
class FaultPlan:
    """A picklable set of :class:`FaultSpec`\\ s consulted by workers."""

    specs: Tuple[FaultSpec, ...] = ()

    @classmethod
    def of(cls, *specs: FaultSpec) -> "FaultPlan":
        return cls(specs=tuple(specs))

    def for_day(
        self, day: datetime.date, shard: Optional[int] = None
    ) -> Optional[FaultSpec]:
        for spec in self.specs:
            if spec.matches(day, shard):
                return spec
        return None

    def fire(
        self, day: datetime.date, attempt: int, shard: Optional[int] = None
    ) -> None:
        """Inject the planned fault for ``(day, shard, attempt)``, if any.

        Called by the worker entry point before real work starts.  A
        ``kill`` fault terminates the worker process without unwinding —
        exactly what a SIGKILL'd or OOM-killed worker looks like to the
        parent.  A ``sleep`` fault stalls, then returns so the attempt
        proceeds (used to hold workers busy for interrupt tests).
        """
        spec = self.for_day(day, shard)
        if spec is None or not spec.triggers(attempt):
            return
        if spec.kind == KIND_SLEEP:
            time.sleep(spec.sleep_seconds)
            return
        if spec.kind == KIND_KILL:
            import os

            os._exit(spec.exit_code)
        if spec.kind == KIND_TRANSIENT:
            raise TransientWorkerError(
                f"injected transient fault on {day.isoformat()} "
                f"(attempt {attempt})"
            )
        raise FaultInjected(
            f"injected deterministic fault on {day.isoformat()} "
            f"(attempt {attempt})"
        )
