"""The longitudinal study: one pass over five years of measurements.

:class:`LongitudinalStudy` reproduces the paper's methodology end to end:
the world model plays the role of the monitored links, the traffic
generator that of the probes' daily exports, and a single streaming pass
runs every stage-1 aggregation job, retaining only the per-day reductions
each figure needs (Section 2.2's "update predefined analytics
continuously").  Figure modules under :mod:`repro.figures` are pure
stage-2 computations over the resulting :class:`StudyData`.
"""

from __future__ import annotations

import bisect
import datetime
import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.analytics import rtt as rtt_analytics
from repro.analytics.activity import SubscriberDay, subscriber_days
from repro.analytics.infrastructure import (
    AsnBreakdown,
    DailyServerStats,
    asn_breakdown,
    daily_ip_roles,
    daily_server_census,
    domain_byte_totals,
    domain_shares,
    ip_service_pairs,
    service_ip_set,
    shares_from_totals,
)
from repro.analytics.popularity import DailyServiceStats, daily_service_stats
from repro.analytics.timeseries import Month
from repro.core.config import COMPARISON_MONTHS, StudyConfig
from repro.core.shards import ShardExtra, ShardSpec
from repro.dataflow.datalake import month_days
from repro.routing.rib import RibArchive
from repro.services import catalog
from repro.services.rules import RuleSet
from repro.services.thresholds import ActiveSubscriberCriterion, VisitClassifier
from repro.synthesis.flowgen import (
    DayTraffic,
    HourlyVolume,
    ProtocolUsage,
    TrafficGenerator,
)
from repro.synthesis.population import Technology
from repro.synthesis.studycalendar import study_days, study_months
from repro.synthesis.world import World
from repro.telemetry import runtime as telemetry
from repro.tstat.flowbatch import FlowBatch

#: Services whose infrastructure Fig. 11 tracks.
INFRA_SERVICES = (catalog.FACEBOOK, catalog.INSTAGRAM, catalog.YOUTUBE)

#: Services whose RTT Fig. 10 tracks (plus WhatsApp for the §6.1 aside).
RTT_SERVICES = (
    catalog.FACEBOOK,
    catalog.INSTAGRAM,
    catalog.YOUTUBE,
    catalog.GOOGLE,
    catalog.WHATSAPP,
)


class MergeOverlapError(ValueError):
    """Two partials claim a key that merge requires to be disjoint.

    ``dict.update`` would silently drop one side's rows; with shard
    fan-ins feeding :meth:`StudyData.merge` that would discard whole
    shards of data, so the overlap is now a hard error naming the
    colliding key.
    """

    def __init__(self, field_name: str, key: object) -> None:
        self.field_name = field_name
        self.key = key
        super().__init__(
            f"merge overlap in {field_name}: key {key!r} present in both partials"
        )


@dataclass
class StudyData:
    """Everything the figures need, reduced per day during the single pass."""

    months: List[Month] = field(default_factory=list)
    #: day → per-subscriber totals with the activity flag.
    subscriber_days: Dict[datetime.date, List[SubscriberDay]] = field(
        default_factory=dict
    )
    #: per-(day, service, technology) popularity/volume cells.
    service_stats: List[DailyServiceStats] = field(default_factory=list)
    #: per-(day, service, reported protocol) byte totals.
    protocol_rows: List[ProtocolUsage] = field(default_factory=list)
    #: 10-minute-bin volumes for the comparison months.
    hourly: List[HourlyVolume] = field(default_factory=list)
    #: Fig. 11 top: per-day census for the tracked services.
    census: List[DailyServerStats] = field(default_factory=list)
    #: Fig. 11 middle: per-day ASN breakdowns.
    asn: List[AsnBreakdown] = field(default_factory=list)
    #: Fig. 11 bottom: per-day domain shares, keyed (day, service).
    domains: List[Tuple[datetime.date, str, Dict[str, float]]] = field(
        default_factory=list
    )
    #: Fig. 11 cumulative growth: per-day server-IP sets per service.
    daily_ip_sets: Dict[str, List[Tuple[datetime.date, Set[int]]]] = field(
        default_factory=dict
    )
    #: Fig. 11 top panels: per-day (address → shared?) maps per service.
    daily_ip_roles: Dict[
        str, List[Tuple[datetime.date, Dict[int, bool]]]
    ] = field(default_factory=dict)
    #: (service, year) → per-flow min-RTT samples of that April.
    rtt_samples: Dict[Tuple[str, int], List[float]] = field(default_factory=dict)
    #: days expanded to the flow tier.
    flow_days: List[datetime.date] = field(default_factory=list)
    #: §4.3 extension: (iso-year, iso-week, service, technology) → visitors,
    #: tracked inside the full-resolution comparison months only.
    weekly_visitors: Dict[
        Tuple[int, int, str, Technology], Set[int]
    ] = field(default_factory=dict)
    #: (iso-year, iso-week, technology) → active subscribers that week.
    weekly_active: Dict[Tuple[int, int, Technology], Set[int]] = field(
        default_factory=dict
    )

    def stats_for(
        self,
        service: str,
        technology: Optional[Technology] = None,
    ) -> List[DailyServiceStats]:
        """Cells of one service; merged across technologies when None."""
        if technology is not None:
            return [
                cell
                for cell in self.service_stats
                if cell.service == service and cell.technology is technology
            ]
        merged: Dict[datetime.date, DailyServiceStats] = {}
        for cell in self.service_stats:
            if cell.service != service:
                continue
            if cell.day in merged:
                merged[cell.day] = merged[cell.day].merged(cell)
            else:
                merged[cell.day] = cell
        return [merged[day] for day in sorted(merged)]

    def all_subscriber_days(self) -> List[SubscriberDay]:
        rows: List[SubscriberDay] = []
        for day in sorted(self.subscriber_days):
            rows.extend(self.subscriber_days[day])
        return rows

    def merge(self, other: "StudyData") -> None:
        """Fold another partial result in (disjoint day sets enforced).

        ``weekly_visitors`` / ``weekly_active`` keys legitimately repeat
        across partials (one ISO week spans several days) and are
        unioned; ``subscriber_days`` keys must be disjoint and raise
        :class:`MergeOverlapError` when they collide.
        """
        if self.months and other.months and self.months != other.months:
            raise ValueError("cannot merge studies with different spans")
        if not self.months:
            self.months = list(other.months)
        overlap = self.subscriber_days.keys() & other.subscriber_days.keys()
        if overlap:
            raise MergeOverlapError("subscriber_days", min(overlap).isoformat())
        self.subscriber_days.update(other.subscriber_days)
        self.service_stats.extend(other.service_stats)
        self.protocol_rows.extend(other.protocol_rows)
        self.hourly.extend(other.hourly)
        self.census.extend(other.census)
        self.asn.extend(other.asn)
        self.domains.extend(other.domains)
        for service, entries in other.daily_ip_sets.items():
            self.daily_ip_sets.setdefault(service, []).extend(entries)
        for service, role_entries in other.daily_ip_roles.items():
            self.daily_ip_roles.setdefault(service, []).extend(role_entries)
        for key, samples in other.rtt_samples.items():
            self.rtt_samples.setdefault(key, []).extend(samples)
        # Insertion keeps flow_days sorted without re-sorting the whole
        # list on every one of the k partial merges (was O(k·n log n)).
        for day in other.flow_days:
            bisect.insort(self.flow_days, day)
        for key, visitors in other.weekly_visitors.items():
            self.weekly_visitors.setdefault(key, set()).update(visitors)
        for key, active in other.weekly_active.items():
            self.weekly_active.setdefault(key, set()).update(active)

    def weekly_reach(
        self, service: str, technology: Technology, year: int
    ) -> Optional[float]:
        """Mean fraction of weekly-active subscribers visiting ``service``
        at least once per week (weeks of the comparison month of ``year``)."""
        ratios: List[float] = []
        for (iso_year, iso_week, tech), active in self.weekly_active.items():
            if iso_year != year or tech is not technology or not active:
                continue
            visitors = self.weekly_visitors.get(
                (iso_year, iso_week, service, tech), set()
            )
            ratios.append(len(visitors) / len(active))
        if not ratios:
            return None
        # fsum: the mean must not depend on weekly_active iteration order.
        return math.fsum(ratios) / len(ratios)


class LongitudinalStudy:
    """Runs the five-year measurement + stage-1 pipeline."""

    def __init__(
        self,
        config: Optional[StudyConfig] = None,
        rules: Optional[RuleSet] = None,
        visit_classifier: Optional[VisitClassifier] = None,
        criterion: Optional[ActiveSubscriberCriterion] = None,
    ) -> None:
        self.config = config or StudyConfig()
        self.world = World(self.config.world)
        self.generator = TrafficGenerator(self.world)
        self.rules = rules or catalog.default_ruleset()
        self.visit_classifier = visit_classifier or VisitClassifier()
        self.criterion = criterion or ActiveSubscriberCriterion()

    # -- day planning --------------------------------------------------------

    def planned_days(self) -> Dict[datetime.date, Set[str]]:
        """day → set of roles ('aggregate', 'hourly', 'flows', 'rtt')."""
        config = self.config
        start, end = config.world.start, config.world.end
        plan: Dict[datetime.date, Set[str]] = {}

        def add(day: datetime.date, role: str) -> None:
            if start <= day <= end:
                plan.setdefault(day, set()).add(role)

        for day in study_days(start, end, stride=config.day_stride):
            add(day, "aggregate")
        for year, month in COMPARISON_MONTHS:
            for day in month_days(year, month):
                add(day, "aggregate")
                add(day, "hourly")
            for day in month_days(year, month)[
                7 :: max(1, 21 // max(1, config.rtt_days_per_comparison_month))
            ][: config.rtt_days_per_comparison_month]:
                add(day, "flows")
                add(day, "rtt")
        if config.flow_days_per_month:
            for year, month in study_months(start, end):
                days = month_days(year, month)
                picked = days[9 :: max(1, 18 // config.flow_days_per_month)]
                for day in picked[: config.flow_days_per_month]:
                    add(day, "aggregate")
                    add(day, "flows")
        return plan

    # -- the pass --------------------------------------------------------------

    def empty_data(self) -> StudyData:
        return StudyData(
            months=study_months(self.config.world.start, self.config.world.end)
        )

    def process_day(
        self, data: StudyData, day: datetime.date, roles: Set[str]
    ) -> None:
        """Run one planned day's generation + stage-1 into ``data``.

        The single site that opens the per-day telemetry span: serial
        runs, pool workers, and checkpoint-resumed recomputation all pass
        through here, so every execution mode yields the same trace shape
        (day → generate/aggregate/hourly/flows → expand/stage1).
        """
        with telemetry.span(
            "day", day=day.isoformat(), roles=",".join(sorted(roles))
        ):
            with telemetry.span("generate"):
                traffic = self.generator.generate_day(day)
            if not traffic.usage:
                return
            telemetry.count("study_days_processed")
            with telemetry.span("aggregate"):
                self._consume_aggregate(data, day, traffic)
            if "hourly" in roles:
                with telemetry.span("hourly"):
                    data.hourly.extend(
                        self.generator.generate_hourly(day, traffic)
                    )
            if "flows" in roles:
                with telemetry.span("flows"):
                    self._consume_flows(
                        data, day, traffic, with_rtt="rtt" in roles
                    )

    def day_partial(self, day: datetime.date, roles: Set[str]) -> StudyData:
        """One planned day reduced into a fresh :class:`StudyData`.

        The unit of fault-tolerant execution: days are independent
        (per-day seeds, DESIGN.md §6), so a worker can compute any day in
        isolation and the parent merges partials in calendar order to
        reproduce a serial run exactly.
        """
        data = self.empty_data()
        self.process_day(data, day, roles)
        return data

    def day_shard_partial(
        self, day: datetime.date, roles: Set[str], shard: ShardSpec
    ) -> Tuple[StudyData, ShardExtra]:
        """One shard of one planned day (DESIGN.md §15).

        Generation replays the full-population RNG streams and emits
        only the shard's subscriber range; stage-1 runs over the shard's
        rows alone.  The returned :class:`ShardExtra` carries what the
        fan-in (:func:`merge_day_shards`) needs to reassemble the exact
        unsharded day partial.
        """
        data = self.empty_data()
        extra = ShardExtra(day=day, shard=shard)
        with telemetry.span(
            "day",
            day=day.isoformat(),
            roles=",".join(sorted(roles)),
            shard=shard.label,
        ):
            with telemetry.span("generate"):
                traffic = self.generator.generate_day(day, shard=shard.bounds)
            ctx = traffic.shard_ctx
            if ctx is None or ctx.row_count == 0:
                return data, extra
            extra.processed = True
            if shard.is_lead:
                telemetry.count("study_days_processed")
            with telemetry.span("aggregate"):
                self._consume_aggregate_shard(data, extra, day, traffic)
            if "hourly" in roles and shard.is_lead:
                with telemetry.span("hourly"):
                    data.hourly.extend(
                        self.generator.generate_hourly(day, traffic)
                    )
            if "flows" in roles:
                with telemetry.span("flows"):
                    self._consume_flows_shard(
                        data, extra, day, traffic, with_rtt="rtt" in roles
                    )
        return data, extra

    def run(self, progress: Optional[object] = None) -> StudyData:
        """Execute the study; returns the reduced per-day data."""
        data = self.empty_data()
        plan = self.planned_days()
        for day in sorted(plan):
            self.process_day(data, day, plan[day])
            if progress is not None:
                progress(day)  # type: ignore[operator]
        return data

    def _consume_aggregate(
        self, data: StudyData, day: datetime.date, traffic: DayTraffic
    ) -> None:
        day_rows = subscriber_days(traffic.usage, self.criterion)
        data.subscriber_days[day] = day_rows
        for technology in Technology:
            data.service_stats.extend(
                daily_service_stats(
                    traffic.usage,
                    day_rows,
                    classifier=self.visit_classifier,
                    technology=technology,
                )
            )
        data.protocol_rows.extend(traffic.protocols)
        if (day.year, day.month) in COMPARISON_MONTHS:
            self._consume_weekly(data, day, traffic, day_rows)

    def _consume_aggregate_shard(
        self,
        data: StudyData,
        extra: ShardExtra,
        day: datetime.date,
        traffic: DayTraffic,
    ) -> None:
        """Shard view of :meth:`_consume_aggregate`.

        Differences from the unsharded path: the subscriber-day list is
        tagged with full-day first-appearance positions (merge restores
        the unsharded ordering), per-technology active counts ride in
        the sidecar (the popularity denominator must count the *whole*
        day's actives, not the shard's), and protocol rows — identical
        in every shard because they derive from full-width sums — are
        contributed by the lead shard only.
        """
        ctx = traffic.shard_ctx
        assert ctx is not None
        day_rows = subscriber_days(traffic.usage, self.criterion)
        data.subscriber_days[day] = day_rows
        first_position: Dict[int, int] = {}
        for position, row in zip(ctx.emit_positions.tolist(), traffic.usage):
            if row.subscriber_id not in first_position:
                first_position[row.subscriber_id] = position
        extra.first_positions = np.fromiter(
            (first_position[entry.subscriber_id] for entry in day_rows),
            np.int64,
            len(day_rows),
        )
        for technology in Technology:
            data.service_stats.extend(
                daily_service_stats(
                    traffic.usage,
                    day_rows,
                    classifier=self.visit_classifier,
                    technology=technology,
                )
            )
        extra.active_counts = {technology: 0 for technology in Technology}
        for entry in day_rows:
            if entry.active:
                extra.active_counts[entry.technology] += 1
        if extra.shard.is_lead:
            data.protocol_rows.extend(traffic.protocols)
        if (day.year, day.month) in COMPARISON_MONTHS:
            self._consume_weekly(data, day, traffic, day_rows)

    def _consume_weekly(
        self,
        data: StudyData,
        day: datetime.date,
        traffic: DayTraffic,
        day_rows,
    ) -> None:
        """Track weekly reach inside the full-resolution months (§4.3)."""
        iso_year, iso_week, _ = day.isocalendar()
        active_by_id = {
            entry.subscriber_id: entry.technology
            for entry in day_rows
            if entry.active
        }
        for subscriber_id, technology in active_by_id.items():
            data.weekly_active.setdefault(
                (iso_year, iso_week, technology), set()
            ).add(subscriber_id)
        for row in traffic.usage:
            technology = active_by_id.get(row.subscriber_id)
            if technology is None:
                continue
            if self.visit_classifier.is_visit(
                row.service, row.bytes_down + row.bytes_up
            ):
                data.weekly_visitors.setdefault(
                    (iso_year, iso_week, row.service, technology), set()
                ).add(row.subscriber_id)

    def _consume_flows(
        self,
        data: StudyData,
        day: datetime.date,
        traffic: DayTraffic,
        with_rtt: bool,
    ) -> None:
        with telemetry.span("expand"):
            flows: FlowBatch = self.generator.expand_flows_batch(
                day, traffic, max_flows_per_usage=self.config.max_flows_per_usage
            )
        with telemetry.span("stage1"):
            # One classification pass over the batch, shared by every consumer.
            codes = flows.service_view(self.rules)
            data.flow_days.append(day)
            data.census.extend(
                daily_server_census(
                    flows, self.rules, list(INFRA_SERVICES), day, codes=codes
                )
            )
            roles_by_service = daily_ip_roles(
                flows, self.rules, list(INFRA_SERVICES), day, codes=codes
            )
            for service in INFRA_SERVICES:
                data.asn.append(
                    asn_breakdown(
                        flows, self.rules, self.world.rib, service, day, codes=codes
                    )
                )
                data.domains.append(
                    (day, service, domain_shares(flows, self.rules, service, codes=codes))
                )
                data.daily_ip_sets.setdefault(service, []).append(
                    (day, service_ip_set(flows, self.rules, service, codes=codes))
                )
                data.daily_ip_roles.setdefault(service, []).append(
                    (day, roles_by_service[service])
                )
            if with_rtt:
                for service in RTT_SERVICES:
                    samples = rtt_analytics.min_rtt_samples(
                        flows, self.rules, service, codes=codes
                    )
                    telemetry.count(
                        "rtt_samples_collected", len(samples), service=service
                    )
                    data.rtt_samples.setdefault((service, day.year), []).extend(
                        samples
                    )

    def _consume_flows_shard(
        self,
        data: StudyData,
        extra: ShardExtra,
        day: datetime.date,
        traffic: DayTraffic,
        with_rtt: bool,
    ) -> None:
        """Shard view of :meth:`_consume_flows`.

        Census, ASN, domain, and role analytics mix information *across*
        flows (an address dedicated in one shard may be shared in
        another), so the shard only collects their additive raw material
        — (ip, service) pairs, domain byte totals, position-tagged RTT
        samples — and :func:`merge_day_shards` computes the day-level
        results over the union.
        """
        ctx = traffic.shard_ctx
        assert ctx is not None
        with telemetry.span("expand"):
            flows, positions = self.generator.expand_flows_batch_shard(
                day, ctx, max_flows_per_usage=self.config.max_flows_per_usage
            )
        with telemetry.span("stage1"):
            codes = flows.service_view(self.rules)
            extra.flow_stage = True
            extra.rtt_stage = with_rtt
            pair_ips, pair_codes, pair_services = ip_service_pairs(
                flows, self.rules, codes=codes
            )
            extra.pair_ips = pair_ips
            extra.pair_codes = pair_codes
            extra.pair_services = pair_services
            for service in INFRA_SERVICES:
                extra.domain_totals[service] = domain_byte_totals(
                    flows, self.rules, service, codes=codes
                )
                data.daily_ip_sets.setdefault(service, []).append(
                    (day, service_ip_set(flows, self.rules, service, codes=codes))
                )
            if with_rtt:
                for service in RTT_SERVICES:
                    mask = rtt_analytics.min_rtt_mask(
                        flows, self.rules, service, codes=codes
                    )
                    extra.rtt[service] = (
                        positions[mask],
                        flows.rtt_min[mask].copy(),
                    )
                    telemetry.count(
                        "rtt_samples_collected",
                        int(np.count_nonzero(mask)),
                        service=service,
                    )


def merge_day_shards(
    day: datetime.date,
    parts: List[Tuple[StudyData, ShardExtra]],
    rib: RibArchive,
) -> StudyData:
    """Fan one day's shard partials back into the unsharded day partial.

    Field-identical to :meth:`LongitudinalStudy.day_partial` for the same
    (seed, day, roles): order-sensitive lists are restored via the
    full-day positions the shards carried, additive counters are summed,
    cross-flow analytics (census/ASN/domains/roles) are recomputed over
    the union of the shards' raw pairs, and the full-day fields every
    shard derives identically (protocol rows, hourly volumes) come from
    the lead shard alone.
    """
    parts = sorted(parts, key=lambda part: part[1].shard.index)
    datas = [data for data, _ in parts]
    extras = [extra for _, extra in parts]
    out = StudyData(months=list(datas[0].months))
    if not any(extra.processed for extra in extras):
        return out  # full-day outage: the unsharded path returns empty too

    # subscriber_days: shards partition subscribers, so each entry is
    # already exact; restore first-appearance order over the full day.
    rows: List[SubscriberDay] = []
    position_parts: List[np.ndarray] = []
    for data, extra in parts:
        rows.extend(data.subscriber_days.get(day, []))
        if extra.first_positions is not None and extra.first_positions.size:
            position_parts.append(extra.first_positions)
    if rows:
        order = np.argsort(np.concatenate(position_parts))
        out.subscriber_days[day] = [rows[index] for index in order]
    else:
        out.subscriber_days[day] = []

    # service_stats: cells are additive except active_subscribers, which
    # is the whole-day denominator carried per shard in the sidecar.
    for technology in Technology:
        active_total = sum(
            extra.active_counts.get(technology, 0) for extra in extras
        )
        merged_cells: Dict[str, DailyServiceStats] = {}
        for data in datas:
            for cell in data.service_stats:
                if cell.technology is not technology:
                    continue
                previous = merged_cells.get(cell.service)
                if previous is None:
                    merged_cells[cell.service] = cell
                else:
                    merged_cells[cell.service] = DailyServiceStats(
                        day=day,
                        service=cell.service,
                        visitors=previous.visitors + cell.visitors,
                        active_subscribers=0,
                        bytes_down=previous.bytes_down + cell.bytes_down,
                        bytes_total=previous.bytes_total + cell.bytes_total,
                        visitor_bytes=previous.visitor_bytes + cell.visitor_bytes,
                        technology=technology,
                    )
        for service in sorted(merged_cells):
            out.service_stats.append(
                replace(merged_cells[service], active_subscribers=active_total)
            )

    # Full-day fields every shard computed identically: lead shard only.
    lead = datas[0]
    out.protocol_rows.extend(lead.protocol_rows)
    out.hourly.extend(lead.hourly)

    for data in datas:
        for visitor_key, visitors in data.weekly_visitors.items():
            out.weekly_visitors.setdefault(visitor_key, set()).update(visitors)
        for active_key, active in data.weekly_active.items():
            out.weekly_active.setdefault(active_key, set()).update(active)

    flow_extras = [extra for extra in extras if extra.flow_stage]
    if flow_extras:
        out.flow_days.append(day)
        name_of: Dict[str, int] = {}
        ip_parts: List[np.ndarray] = []
        code_parts: List[np.ndarray] = []
        for extra in flow_extras:
            if extra.pair_ips is None or extra.pair_ips.size == 0:
                continue
            remap = np.fromiter(
                (
                    name_of.setdefault(name, len(name_of))
                    for name in extra.pair_services
                ),
                np.int64,
                len(extra.pair_services),
            )
            ip_parts.append(extra.pair_ips)
            code_parts.append(remap[extra.pair_codes])
        if ip_parts:
            pairs = np.unique(
                np.stack(
                    (np.concatenate(ip_parts), np.concatenate(code_parts))
                ),
                axis=1,
            )
            pair_ips, pair_codes = pairs[0], pairs[1]
            _, inverse, counts = np.unique(
                pair_ips, return_inverse=True, return_counts=True
            )
            shared = counts[inverse] > 1
        else:
            pair_ips = np.empty(0, dtype=np.int64)
            pair_codes = np.empty(0, dtype=np.int64)
            shared = np.zeros(0, dtype=bool)

        for service in INFRA_SERVICES:
            member = pair_codes == name_of.get(service, -1)
            shared_count = int(np.count_nonzero(shared & member))
            out.census.append(
                DailyServerStats(
                    day=day,
                    service=service,
                    dedicated_ips=int(np.count_nonzero(member)) - shared_count,
                    shared_ips=shared_count,
                )
            )
        for service in INFRA_SERVICES:
            member = pair_codes == name_of.get(service, -1)
            asn_counts: Dict[str, int] = {}
            for address in pair_ips[member].tolist():
                name = rib.origin_of(address, day).name
                asn_counts[name] = asn_counts.get(name, 0) + 1
            out.asn.append(AsnBreakdown(day=day, service=service, counts=asn_counts))
            domain_totals: Dict[str, int] = {}
            for extra in flow_extras:
                for sld, volume in extra.domain_totals.get(service, {}).items():
                    domain_totals[sld] = domain_totals.get(sld, 0) + volume
            out.domains.append((day, service, shares_from_totals(domain_totals)))
            merged_ips: Set[int] = set()
            for data in datas:
                for entry_day, addresses in data.daily_ip_sets.get(service, []):
                    if entry_day == day:
                        merged_ips |= addresses
            out.daily_ip_sets.setdefault(service, []).append((day, merged_ips))
            out.daily_ip_roles.setdefault(service, []).append(
                (
                    day,
                    dict(
                        zip(pair_ips[member].tolist(), shared[member].tolist())
                    ),
                )
            )
        if any(extra.rtt_stage for extra in flow_extras):
            for service in RTT_SERVICES:
                sample_positions: List[np.ndarray] = []
                sample_values: List[np.ndarray] = []
                for extra in flow_extras:
                    if service in extra.rtt:
                        positions, samples = extra.rtt[service]
                        sample_positions.append(positions)
                        sample_values.append(samples)
                if sample_positions:
                    order = np.argsort(np.concatenate(sample_positions))
                    merged_samples = np.concatenate(sample_values)[order].tolist()
                else:
                    merged_samples = []
                out.rtt_samples.setdefault((service, day.year), []).extend(
                    merged_samples
                )
    return out
