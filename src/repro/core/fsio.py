"""Atomic persistence primitives with an injectable fault gate.

Every durable artifact in the repo — per-day checkpoints, lake
partitions, the service's run records — is finalized the same way: write
a staging file next to the target, then ``os.replace`` it into place.
This module owns that idiom so the chaos conductor (DESIGN.md §17) can
inject *filesystem* failures at the exact operation boundaries a real
deployment fears:

* **ENOSPC** — the staging write raises ``OSError(errno.ENOSPC)``
  before any byte lands, modelling a full disk;
* **torn-tmp** — the staging file is written (possibly partially) but
  the ``os.replace`` never happens, modelling a crash in the window
  between write and rename (the target keeps its previous state and a
  stale ``.tmp``/``.part`` file litters the directory);
* **torn-target** — a truncated payload is renamed into place,
  modelling a partial page flush that the subsequent CRC/manifest
  verification must catch.

Injection is opt-in and process-local: production code calls
:func:`write_and_replace` and pays one ``None`` check when no gate is
installed.  The gate itself lives with the chaos package — this module
knows only the hook, mirroring how :mod:`repro.core.faults` threads
``FaultPlan`` into workers without the workers importing the test
harness.
"""

from __future__ import annotations

import errno
import os
import re
from pathlib import Path
from typing import Callable, Optional

#: Persistence surfaces a gate can key on (one per durable artifact tier).
SURFACE_CHECKPOINT = "checkpoint"
SURFACE_LAKE = "lake"
SURFACE_REGISTRY = "registry"
SURFACE_MANIFEST = "manifest"

SURFACES = (
    SURFACE_CHECKPOINT,
    SURFACE_LAKE,
    SURFACE_REGISTRY,
    SURFACE_MANIFEST,
)

#: Fault modes a gate may request for one write (see module docstring).
MODE_ENOSPC = "enospc"
MODE_TORN_TMP = "torn-tmp"
MODE_TORN_TARGET = "torn-target"

MODES = (MODE_ENOSPC, MODE_TORN_TMP, MODE_TORN_TARGET)

#: Pid embedded in torn-tmp litter: past any kernel's pid_max, so the
#: simulated dead writer can never collide with a live process.
DEAD_WRITER_PID = 99999999

#: A gate maps ``(surface, target path)`` to a fault mode or ``None``
#: (no fault).  Called once per atomic write, *before* any byte lands.
FaultGate = Callable[[str, Path], Optional[str]]

#: The installed gate; ``None`` in production.  Process-local by design:
#: gates steer the parent's persistence calls and are never pickled into
#: workers.
_GATE: Optional[FaultGate] = None  # repro: noqa[RPR004] -- chaos-only injection hook, None in production and never shipped across the fork boundary; workers neither read nor mutate it


def install_gate(gate: Optional[FaultGate]) -> Optional[FaultGate]:
    """Install (or clear, with ``None``) the process fault gate.

    Returns the previously installed gate so callers can restore it.
    """
    global _GATE
    previous = _GATE
    _GATE = gate
    return previous


def installed_gate() -> Optional[FaultGate]:
    return _GATE


def write_and_replace(
    target: Path,
    payload: bytes,
    *,
    surface: str,
    tmp: Optional[Path] = None,
) -> Path:
    """Atomically publish ``payload`` at ``target`` via a staging file.

    ``tmp`` defaults to the repo-wide dot-prefixed staging name in the
    same directory (same filesystem, so the rename is atomic).  When a
    fault gate is installed it may turn this call into an injected
    failure; the three modes are documented in the module docstring.
    ENOSPC surfaces as ``OSError`` with ``errno.ENOSPC`` — exactly what
    the un-injected call would raise on a full disk — so callers cannot
    tell injected pressure from real pressure, which is the point.
    """
    target = Path(target)
    staging = (
        Path(tmp)
        if tmp is not None
        else target.with_name(f".{target.name}.{os.getpid()}.tmp")
    )
    mode = _GATE(surface, target) if _GATE is not None else None
    if mode == MODE_ENOSPC:
        raise OSError(
            errno.ENOSPC,
            f"injected ENOSPC writing {surface} artifact {target.name}",
        )
    if mode == MODE_TORN_TMP:
        # Crash window between staging write and rename: half the bytes
        # land under a staging name, the target never changes.  The
        # litter carries a pid that cannot exist (beyond pid_max) — the
        # simulated writer is dead, so sweeps and fsck must treat the
        # file as theirs to reclaim, not as a live writer's.
        torn = target.with_name(f".{target.name}.{DEAD_WRITER_PID}.tmp")
        torn.write_bytes(payload[: max(1, len(payload) // 2)])
        raise OSError(
            errno.EIO,
            f"injected crash before replace of {surface} artifact "
            f"{target.name} (staging file left behind)",
        )
    if mode == MODE_TORN_TARGET:
        # A truncated payload reaches the final name: detection falls to
        # the artifact's own CRC/manifest verification on next read.
        staging.write_bytes(payload[: max(1, len(payload) // 2)])
        os.replace(staging, target)
        return target
    staging.write_bytes(payload)
    os.replace(staging, target)
    return target


#: Staging-file litter a dead writer leaves behind: the repo-wide
#: dot-prefixed pattern with the writer's pid embedded.
_STALE_RE = re.compile(r"^\..+\.(\d+)\.(tmp|part)$")


def stale_staging_files(directory: Path) -> "list[Path]":
    """Staging files in ``directory`` whose writer process is gone.

    A live writer holds its staging name only for the instant between
    write and rename; anything matching the pattern whose embedded pid
    no longer exists is guaranteed litter from a crash (or an injected
    torn write) and is safe to sweep.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    stale: "list[Path]" = []
    for path in sorted(directory.iterdir()):
        match = _STALE_RE.match(path.name)
        if match is None or not path.is_file():
            continue
        if not _pid_alive(int(match.group(1))):
            stale.append(path)
    return stale


def sweep_staging_files(directory: Path) -> "list[Path]":
    """Remove dead writers' staging litter; returns what was removed."""
    removed: "list[Path]" = []
    for path in stale_staging_files(directory):
        try:
            path.unlink()
        except OSError:
            continue  # raced another sweeper or lost the file: both fine
        removed.append(path)
    return removed


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True
