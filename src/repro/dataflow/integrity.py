"""Data-plane integrity: checksummed partitions, quarantine, day admission.

The paper's pipeline shipped probe logs to a central lake daily for five
years (Section 2.2) and survived probe outages "from few hours up to some
months" (Section 2.3).  Surviving that long means the *data* plane — not
just the compute plane — must treat corruption as the normal case: torn
writes when a copy is interrupted, bit rot in long-term storage, schema
drift as probe software evolves, and partial days around outages.  This
module is the reproduction's answer, in four tiers:

* **Partition manifests** — every partition written into the lake gets a
  deterministic JSON sidecar (:class:`PartitionManifest`: CRC32 of the
  payload lines, record count, byte total, schema version) finalized
  atomically, so a torn or silently altered partition is detectable
  without trusting the data bytes themselves.
* **Record quarantine** — decode failures surface as the typed
  :class:`RecordDecodeError` naming table, day, source, and line number;
  a :class:`LakeIntegrity` policy (``strict`` | ``quarantine`` | ``skip``)
  decides whether a bad line aborts the read, is routed to
  ``<root>/_quarantine/`` with full provenance, or is dropped counted.
* **Quality-gated admission** — per-day :class:`DayQualityReport`\\ s feed
  a :class:`DayAdmission` threshold that excludes degraded days from the
  study exactly like :class:`~repro.tstat.outages.OutageCalendar` holes,
  so analytics tolerate data loss the way the paper's figures tolerate
  probe gaps.
* **Deterministic corruption injection** — a :class:`CorruptionPlan` (in
  the style of :mod:`repro.core.faults`) applies seeded, byte-reproducible
  damage keyed on ``(table, day, source)``; :func:`fsck_lake` scans a lake
  and must find every injected class with zero false positives.

Everything here is deterministic: same seed + same plan ⇒ identical
quarantine directories, identical reports, identical fsck findings.
"""

from __future__ import annotations

import datetime
import gzip
import io
import json
import os
import re
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.core import fsio
from repro.telemetry import runtime as telemetry

# ----------------------------------------------------------------------
# Policies

POLICY_STRICT = "strict"  # any corruption aborts the read (typed error)
POLICY_QUARANTINE = "quarantine"  # bad lines routed to _quarantine/, read continues
POLICY_SKIP = "skip"  # bad lines dropped (counted), nothing persisted

POLICIES = (POLICY_STRICT, POLICY_QUARANTINE, POLICY_SKIP)


def validate_policy(policy: str) -> str:
    if policy not in POLICIES:
        raise ValueError(
            f"unknown bad-records policy {policy!r}; choose from {POLICIES}"
        )
    return policy


# ----------------------------------------------------------------------
# Typed errors


class RecordDecodeError(ValueError):
    """A record failed to decode, with full provenance.

    Carries (when known) the table, day, source file, 1-based line
    number, and the offending line, so an operator can go from a stack
    trace straight to the byte in the lake.  Context is usually attached
    in layers: the parser knows the reason, the log reader adds the
    source and line number, the lake read path adds table and day.
    """

    def __init__(
        self,
        reason: str,
        *,
        table: Optional[str] = None,
        day: Optional[datetime.date] = None,
        source: Optional[str] = None,
        line_number: Optional[int] = None,
        line: Optional[str] = None,
    ) -> None:
        self.reason = reason
        self.table = table
        self.day = day
        self.source = source
        self.line_number = line_number
        self.line = line
        super().__init__(self._render())

    def _render(self) -> str:
        where: List[str] = []
        if self.table is not None:
            where.append(f"table {self.table!r}")
        if self.day is not None:
            where.append(f"day {self.day.isoformat()}")
        if self.source is not None:
            where.append(f"source {self.source!r}")
        if self.line_number is not None:
            where.append(f"line {self.line_number}")
        prefix = ", ".join(where)
        return f"{prefix}: {self.reason}" if prefix else self.reason

    def with_context(
        self,
        *,
        table: Optional[str] = None,
        day: Optional[datetime.date] = None,
        source: Optional[str] = None,
        line_number: Optional[int] = None,
        line: Optional[str] = None,
    ) -> "RecordDecodeError":
        """A copy (same type, so subclasses like ``LogFormatError``
        survive enrichment) with missing provenance fields filled in."""
        return type(self)(
            self.reason,
            table=self.table if self.table is not None else table,
            day=self.day if self.day is not None else day,
            source=self.source if self.source is not None else source,
            line_number=(
                self.line_number if self.line_number is not None else line_number
            ),
            line=self.line if self.line is not None else line,
        )


class PartitionIntegrityError(RuntimeError):
    """A whole partition failed verification; names the partition and why."""

    def __init__(
        self, path: Path, kind: str, detail: str, *,
        table: Optional[str] = None, day: Optional[datetime.date] = None,
    ) -> None:
        self.path = Path(path)
        self.kind = kind
        self.detail = detail
        self.table = table
        self.day = day
        where = f"partition {self.path}"
        if table is not None and day is not None:
            where = f"partition {table}/{day.isoformat()}/{self.path.name}"
        super().__init__(f"{where}: {kind}: {detail}")


# ----------------------------------------------------------------------
# Partition manifests

#: Bumped when the sidecar layout changes.
MANIFEST_FORMAT = 1

#: Schema version recorded for lake partitions written by this code.
LAKE_SCHEMA_VERSION = 1

_HEADER_RE = re.compile(r"^#tstat-log v(\d+)")


@dataclass(frozen=True)
class PartitionManifest:
    """What a partition *should* contain: enough to verify it later.

    The CRC covers the payload lines only (comment and blank lines are
    skipped, exactly as readers skip them), so a harmless annotation does
    not invalidate a partition while any payload change does.
    """

    records: int
    crc32: int
    payload_bytes: int
    schema_version: int = LAKE_SCHEMA_VERSION
    #: "tsv" for v1 line partitions; "colchunk" for v2 column chunks.
    #: v2 manifests also carry the partition's zone map (min/max day,
    #: distinct key-column values, row count) so readers can prune
    #: partitions without opening the data file.
    container: str = "tsv"
    zone: Optional[dict] = None

    def to_json(self) -> str:
        payload = {
            "format": MANIFEST_FORMAT,
            "records": self.records,
            "crc32": self.crc32,
            "payload_bytes": self.payload_bytes,
            "schema_version": self.schema_version,
        }
        # v1 sidecars stay byte-identical to what they always were.
        if self.container != "tsv":
            payload["container"] = self.container
        if self.zone is not None:
            payload["zone"] = self.zone
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "PartitionManifest":
        raw = json.loads(text)
        if raw.get("format") != MANIFEST_FORMAT:
            raise ValueError(f"unknown manifest format {raw.get('format')!r}")
        zone = raw.get("zone")
        if zone is not None and not isinstance(zone, dict):
            raise ValueError(f"malformed zone map {zone!r}")
        return cls(
            records=int(raw["records"]),
            crc32=int(raw["crc32"]),
            payload_bytes=int(raw["payload_bytes"]),
            schema_version=int(raw["schema_version"]),
            container=str(raw.get("container", "tsv")),
            zone=zone,
        )


def manifest_path_for(data_path: Path) -> Path:
    return data_path.with_name(data_path.name + ".manifest.json")


def write_manifest(data_path: Path, manifest: PartitionManifest) -> Path:
    """Atomically finalize a partition's sidecar manifest."""
    path = manifest_path_for(data_path)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.part")
    return fsio.write_and_replace(
        path,
        (manifest.to_json() + "\n").encode("utf-8"),
        surface=fsio.SURFACE_MANIFEST,
        tmp=tmp,
    )


def load_manifest(data_path: Path) -> Optional[PartitionManifest]:
    """The sidecar manifest of a partition, or None when absent/unreadable."""
    path = manifest_path_for(data_path)
    try:
        return PartitionManifest.from_json(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return None
    except (ValueError, KeyError, OSError) as exc:
        raise PartitionIntegrityError(
            data_path, "manifest", f"unreadable sidecar manifest: {exc!r}"
        ) from exc


class PayloadDigest:
    """Incrementally tracks what a :class:`PartitionManifest` records."""

    def __init__(self, schema_version: int = LAKE_SCHEMA_VERSION) -> None:
        self.records = 0
        self.payload_bytes = 0
        self.schema_version = schema_version
        self._crc = 0

    def add_line(self, line: str) -> None:
        """Fold one payload line (as written, with its newline) in."""
        encoded = line.encode("utf-8")
        self._crc = zlib.crc32(encoded, self._crc)
        self.records += 1
        self.payload_bytes += len(encoded)

    def manifest(self) -> PartitionManifest:
        return PartitionManifest(
            records=self.records,
            crc32=self._crc,
            payload_bytes=self.payload_bytes,
            schema_version=self.schema_version,
        )


def is_payload_line(line: str) -> bool:
    return not line.startswith("#") and bool(line.strip())


# ----------------------------------------------------------------------
# Partition verification


@dataclass(frozen=True)
class PartitionCheck:
    """Outcome of verifying one partition against its manifest."""

    path: Path
    ok: bool
    kind: str = ""  # "" | "torn" | "checksum" | "count" | "schema" | "manifest"
    detail: str = ""


def verify_partition(
    path: Path, manifest: Optional[PartitionManifest] = None
) -> PartitionCheck:
    """Stream a partition once and compare it to its manifest.

    Detects torn gzip tails and bit flips (the gzip container fails to
    decode, or the payload CRC diverges), record-count mismatches
    (dropped/duplicated lines), and foreign schema headers (an embedded
    ``#tstat-log vN`` claiming a version the manifest does not).  A
    missing manifest downgrades verification to a readability check.

    v2 column-chunk partitions (``*.colchunk``) dispatch to the chunk
    verifier, which walks the binary container (magic, header, per-column
    CRCs) and compares the manifest's whole-file CRC/size/row count.
    """
    if manifest is None:
        manifest = load_manifest(path)
    if path.name.endswith(".colchunk"):
        # Lazy import: columnar sits above this module in the layering.
        from repro.dataflow.columnar import verify_chunk

        return verify_chunk(path, manifest)
    digest = PayloadDigest()
    declared_schema: Optional[int] = None
    try:
        with _open_partition_text(path) as handle:
            for line in handle:
                header = _HEADER_RE.match(line)
                if header is not None:
                    declared_schema = int(header.group(1))
                if is_payload_line(line):
                    digest.add_line(line)
    except (OSError, EOFError, zlib.error, gzip.BadGzipFile) as exc:
        return PartitionCheck(
            path, ok=False, kind="torn",
            detail=f"unreadable partition (torn or bit-rotted): {exc!r}",
        )
    except UnicodeDecodeError as exc:
        return PartitionCheck(
            path, ok=False, kind="torn",
            detail=f"undecodable bytes (bit-rotted): {exc!r}",
        )
    if manifest is None:
        return PartitionCheck(path, ok=True, kind="manifest",
                              detail="no sidecar manifest (unverified)")
    computed = digest.manifest()
    if declared_schema is not None and declared_schema != manifest.schema_version:
        return PartitionCheck(
            path, ok=False, kind="schema",
            detail=(f"partition declares schema v{declared_schema}, "
                    f"manifest recorded v{manifest.schema_version}"),
        )
    if computed.records != manifest.records:
        return PartitionCheck(
            path, ok=False, kind="count",
            detail=(f"{computed.records} records on disk, "
                    f"manifest recorded {manifest.records}"),
        )
    if computed.crc32 != manifest.crc32:
        return PartitionCheck(
            path, ok=False, kind="checksum",
            detail=(f"payload CRC32 {computed.crc32:#010x} != "
                    f"recorded {manifest.crc32:#010x}"),
        )
    return PartitionCheck(path, ok=True)


def _open_partition_text(path: Path) -> io.TextIOWrapper:
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, "rb"), encoding="utf-8")
    return open(path, "r", encoding="utf-8")


# ----------------------------------------------------------------------
# Quarantine

QUARANTINE_DIR = "_quarantine"


class Quarantine:
    """Routes bad records (and bad partitions) aside with full provenance.

    Layout::

        <root>/<table>/day=YYYY-MM-DD/<source>.bad         one line per record
        <root>/<table>/day=YYYY-MM-DD/<source>.partition   whole-file failures

    Record lines are ``<line_number>\\t<reason>\\t<raw line>``; appends
    happen in deterministic read order, so two identical runs produce
    byte-identical quarantine trees (asserted in tests).
    """

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.records_quarantined = 0
        self.partitions_quarantined = 0

    def _day_dir(self, table: str, day: datetime.date) -> Path:
        directory = self.root / table / f"day={day.isoformat()}"
        directory.mkdir(parents=True, exist_ok=True)
        return directory

    def record(
        self,
        table: str,
        day: datetime.date,
        source: str,
        line_number: int,
        line: str,
        reason: str,
    ) -> None:
        path = self._day_dir(table, day) / f"{source}.bad"
        entry = f"{line_number}\t{reason}\t{line.rstrip(chr(10))}\n"
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(entry)
        self.records_quarantined += 1
        telemetry.count("lake_quarantined_records", table=table)

    def partition(
        self, table: str, day: datetime.date, source: str, reason: str
    ) -> None:
        path = self._day_dir(table, day) / f"{source}.partition"
        path.write_text(reason + "\n", encoding="utf-8")
        self.partitions_quarantined += 1
        telemetry.count("lake_quarantined_partitions", table=table)


# ----------------------------------------------------------------------
# Day quality and admission


@dataclass
class DayQualityReport:
    """How much of one day's data actually decoded, across all tables."""

    day: datetime.date
    decoded: int = 0
    quarantined: int = 0
    expected: int = 0  # sum of manifest record counts (0 when unmanifested)
    payload_bytes: int = 0
    partitions: int = 0
    failed_partitions: int = 0
    tables: List[str] = field(default_factory=list)

    @property
    def quality(self) -> float:
        """Fraction of the day's expected records that decoded cleanly.

        Against the manifests' expected totals when available (so a torn
        partition counts everything it *should* have held as lost),
        falling back to decoded/(decoded+quarantined) otherwise.  An
        empty, undamaged day is perfect by definition.
        """
        denominator = max(self.expected, self.decoded + self.quarantined)
        if denominator == 0:
            return 0.0 if self.failed_partitions else 1.0
        return self.decoded / denominator

    def degraded(self, min_quality: float) -> bool:
        return self.quality < min_quality

    def to_dict(self) -> dict:
        return {
            "day": self.day.isoformat(),
            "decoded": self.decoded,
            "quarantined": self.quarantined,
            "expected": self.expected,
            "payload_bytes": self.payload_bytes,
            "partitions": self.partitions,
            "failed_partitions": self.failed_partitions,
            "quality": round(self.quality, 6),
            "tables": sorted(set(self.tables)),
        }


class DayAdmission:
    """The quality gate: which degraded days enter the study calendar.

    Days whose :class:`DayQualityReport` falls below ``min_quality`` are
    excluded from the merged study — the same hole the analytics already
    tolerate for probe outages — and recorded for the run manifest.
    """

    def __init__(self, min_quality: float = 0.999) -> None:
        if not 0.0 <= min_quality <= 1.0:
            raise ValueError("min_quality must be within [0, 1]")
        self.min_quality = min_quality
        self.reports: List[DayQualityReport] = []
        self.excluded: List[datetime.date] = []

    def admit(self, report: DayQualityReport) -> bool:
        self.reports.append(report)
        if report.degraded(self.min_quality):
            self.excluded.append(report.day)
            telemetry.count("lake_days_excluded")
            return False
        return True

    def quality_dicts(self) -> List[dict]:
        return [report.to_dict() for report in self.reports]


class QualityLedger:
    """Accumulates per-day read statistics as lake partitions stream."""

    def __init__(self) -> None:
        self._reports: Dict[datetime.date, DayQualityReport] = {}

    def report_for(self, day: datetime.date) -> DayQualityReport:
        report = self._reports.get(day)
        if report is None:
            report = DayQualityReport(day=day)
            self._reports[day] = report
        return report

    def note_partition(
        self,
        table: str,
        day: datetime.date,
        manifest: Optional[PartitionManifest],
    ) -> None:
        report = self.report_for(day)
        report.partitions += 1
        report.tables.append(table)
        if manifest is not None:
            report.expected += manifest.records

    def note_decoded(self, day: datetime.date, payload_bytes: int) -> None:
        report = self.report_for(day)
        report.decoded += 1
        report.payload_bytes += payload_bytes

    def note_quarantined(self, day: datetime.date) -> None:
        self.report_for(day).quarantined += 1

    def note_failed_partition(self, day: datetime.date) -> None:
        self.report_for(day).failed_partitions += 1

    def reports(self) -> List[DayQualityReport]:
        return [self._reports[day] for day in sorted(self._reports)]


@dataclass
class LakeIntegrity:
    """How a lake read treats corruption: policy + sinks + bookkeeping.

    ``policy`` routes bad *records*; ``verify_checksums`` arms lazy
    per-partition manifest verification; partition-level failures follow
    the same policy (strict ⇒ :class:`PartitionIntegrityError`, otherwise
    the partition is quarantined/skipped whole and its manifest-expected
    records count as lost in the day's quality report).
    """

    policy: str = POLICY_STRICT
    verify_checksums: bool = True
    quarantine: Optional[Quarantine] = None
    ledger: QualityLedger = field(default_factory=QualityLedger)

    def __post_init__(self) -> None:
        validate_policy(self.policy)

    @classmethod
    def for_lake_root(
        cls, root: Path, policy: str = POLICY_STRICT, verify: bool = True
    ) -> "LakeIntegrity":
        quarantine = (
            Quarantine(Path(root) / QUARANTINE_DIR)
            if policy == POLICY_QUARANTINE
            else None
        )
        return cls(policy=policy, verify_checksums=verify, quarantine=quarantine)

    # -- record-level routing ----------------------------------------------

    def bad_record(
        self,
        error: RecordDecodeError,
        *,
        table: str,
        day: datetime.date,
        source: str,
        line_number: int,
        line: str,
    ) -> None:
        """Route one undecodable line per policy (raises under strict)."""
        enriched = error.with_context(
            table=table, day=day, source=source,
            line_number=line_number, line=line,
        )
        if self.policy == POLICY_STRICT:
            raise enriched
        self.ledger.note_quarantined(day)
        if self.quarantine is not None:
            self.quarantine.record(
                table, day, source, line_number, line, enriched.reason
            )
        else:
            telemetry.count("lake_skipped_records", table=table)

    # -- partition-level routing -------------------------------------------

    def bad_partition(
        self,
        check: PartitionCheck,
        *,
        table: str,
        day: datetime.date,
        source: str,
    ) -> None:
        """Route one failed partition per policy (raises under strict)."""
        telemetry.count("lake_checksum_failures", table=table)
        if self.policy == POLICY_STRICT:
            raise PartitionIntegrityError(
                check.path, check.kind, check.detail, table=table, day=day
            )
        self.ledger.note_failed_partition(day)
        if self.quarantine is not None:
            self.quarantine.partition(
                table, day, source, f"{check.kind}: {check.detail}"
            )


# ----------------------------------------------------------------------
# Deterministic corruption injection

CORRUPT_TRUNCATE = "truncate"  # cut the gzip tail: a torn copy
CORRUPT_BIT_FLIP = "bit_flip"  # flip one byte mid-stream: bit rot
CORRUPT_DROP_COLUMN = "drop_column"  # remove a field from every line: drift
CORRUPT_DUPLICATE_LINE = "duplicate_line"  # repeat a line: count mismatch
CORRUPT_FOREIGN_HEADER = "foreign_header"  # claim an alien schema version

_CORRUPTION_KINDS = frozenset(
    {
        CORRUPT_TRUNCATE,
        CORRUPT_BIT_FLIP,
        CORRUPT_DROP_COLUMN,
        CORRUPT_DUPLICATE_LINE,
        CORRUPT_FOREIGN_HEADER,
    }
)


@dataclass(frozen=True)
class CorruptionSpec:
    """One injected corruption: what happens to which partition."""

    table: str
    day: datetime.date
    kind: str
    source: str = "part-0"

    def __post_init__(self) -> None:
        if self.kind not in _CORRUPTION_KINDS:
            raise ValueError(f"unknown corruption kind {self.kind!r}")

    def to_dict(self) -> dict:
        """JSON form for chaos trial reports (DESIGN.md §17)."""
        return {
            "table": self.table,
            "day": self.day.isoformat(),
            "kind": self.kind,
            "source": self.source,
        }


@dataclass(frozen=True)
class CorruptionPlan:
    """A deterministic set of :class:`CorruptionSpec`\\ s to apply to a lake.

    In the style of :class:`~repro.core.faults.FaultPlan`: fully keyed
    (table, day, source, kind, seed), so applying the same plan to two
    identical lakes damages them byte-identically — which is what lets
    the determinism-under-corruption tests compare whole study runs.
    """

    specs: Tuple[CorruptionSpec, ...] = ()
    seed: int = 0

    @classmethod
    def of(cls, *specs: CorruptionSpec, seed: int = 0) -> "CorruptionPlan":
        return cls(specs=tuple(specs), seed=seed)

    def apply(self, lake_root: Path) -> List[Path]:
        """Damage the lake in place; returns the partitions touched."""
        touched: List[Path] = []
        for spec in self.specs:
            path = _partition_path(lake_root, spec)
            if not path.is_file():
                raise FileNotFoundError(
                    f"cannot corrupt missing partition {path}"
                )
            _apply_one(path, spec, self.seed)
            touched.append(path)
        return touched


#: Corruption kinds that operate on raw bytes and therefore apply to
#: binary v2 chunks as well as v1 gzip-TSV; the line-oriented kinds
#: (drop_column, duplicate_line, foreign_header) are v1-only.
_BINARY_SAFE_KINDS = frozenset({CORRUPT_TRUNCATE, CORRUPT_BIT_FLIP})


def _partition_path(lake_root: Path, spec: CorruptionSpec) -> Path:
    day = spec.day
    directory = (
        Path(lake_root)
        / spec.table
        / f"year={day.year:04d}"
        / f"month={day.month:02d}"
        / f"day={day.day:02d}"
    )
    v1 = directory / f"{spec.source}.tsv.gz"
    if v1.is_file():
        return v1
    v2 = directory / f"{spec.source}.colchunk"
    if v2.is_file():
        return v2
    return v1  # apply() reports the canonical missing path


def _spec_offset(spec: CorruptionSpec, seed: int, span: int) -> int:
    """A deterministic offset in [0, span) keyed by the spec, not by RNG
    state shared across specs (plans must not be order-sensitive)."""
    key = f"{spec.table}|{spec.day.isoformat()}|{spec.source}|{spec.kind}|{seed}"
    return zlib.crc32(key.encode("utf-8")) % max(1, span)


def _apply_one(path: Path, spec: CorruptionSpec, seed: int) -> None:
    if spec.kind == CORRUPT_TRUNCATE:
        blob = path.read_bytes()
        keep = max(12, len(blob) * 3 // 5)  # past the container header, pre-tail
        path.write_bytes(blob[:keep])
        return
    if spec.kind == CORRUPT_BIT_FLIP:
        blob = bytearray(path.read_bytes())
        # Flip a byte inside the payload: after the 10-byte gzip header
        # (for chunks: past the magic), before the 8-byte gzip trailer.
        span = max(1, len(blob) - 18)
        offset = 10 + _spec_offset(spec, seed, span)
        blob[offset] ^= 0xFF
        path.write_bytes(bytes(blob))
        return
    if path.name.endswith(".colchunk"):
        raise ValueError(
            f"corruption kind {spec.kind!r} is line-oriented and does not "
            f"apply to binary chunk partition {path.name}"
        )
    lines = _read_lines(path)
    payload_indices = [
        index for index, line in enumerate(lines) if is_payload_line(line)
    ]
    if spec.kind == CORRUPT_FOREIGN_HEADER:
        lines.insert(0, "#tstat-log v99\n")
    elif spec.kind == CORRUPT_DUPLICATE_LINE and payload_indices:
        victim = payload_indices[
            _spec_offset(spec, seed, len(payload_indices))
        ]
        lines.insert(victim, lines[victim])
    elif spec.kind == CORRUPT_DROP_COLUMN:
        lines = [
            _drop_last_field(line) if is_payload_line(line) else line
            for line in lines
        ]
    _write_lines(path, lines)


def _drop_last_field(line: str) -> str:
    fields = line.rstrip("\n").split("\t")
    return "\t".join(fields[:-1]) + "\n"


def _read_lines(path: Path) -> List[str]:
    with _open_partition_text(path) as handle:
        return handle.readlines()


def _write_lines(path: Path, lines: List[str]) -> None:
    # mtime=0 keeps the rewritten gzip byte-deterministic, matching the
    # lake's own writes.
    buffer = io.BytesIO()
    with gzip.GzipFile(filename="", mode="wb", fileobj=buffer, mtime=0) as gz:
        gz.write("".join(lines).encode("utf-8"))
    path.write_bytes(buffer.getvalue())


# ----------------------------------------------------------------------
# fsck


@dataclass(frozen=True)
class IntegrityFinding:
    """One fsck discovery: which partition, what class of damage."""

    table: str
    day: datetime.date
    source: str
    kind: str  # "torn" | "checksum" | "count" | "schema" | "record" | "manifest" | "litter"
    detail: str

    def render(self) -> str:
        return (
            f"{self.table}/{self.day.isoformat()}/{self.source}  "
            f"[{self.kind}] {self.detail}"
        )

    def to_dict(self) -> dict:
        return {
            "table": self.table,
            "day": self.day.isoformat(),
            "source": self.source,
            "kind": self.kind,
            "detail": self.detail,
        }


@dataclass
class FsckReport:
    """Everything ``repro fsck`` learned about a lake."""

    root: Path
    partitions_scanned: int = 0
    records_decoded: int = 0
    findings: List[IntegrityFinding] = field(default_factory=list)
    quarantined_records: int = 0
    quarantined_partitions: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def kinds(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.kind] = counts.get(finding.kind, 0) + 1
        return dict(sorted(counts.items()))

    def summary_lines(self) -> List[str]:
        lines = [
            f"fsck {self.root}: {self.partitions_scanned} partition(s), "
            f"{self.records_decoded} record(s) decoded",
        ]
        if self.clean:
            lines.append("clean: no integrity findings")
            return lines
        kinds = ", ".join(f"{kind}={n}" for kind, n in self.kinds().items())
        lines.append(f"{len(self.findings)} finding(s): {kinds}")
        lines.extend(finding.render() for finding in self.findings)
        if self.quarantined_records or self.quarantined_partitions:
            lines.append(
                f"quarantined: {self.quarantined_records} record(s), "
                f"{self.quarantined_partitions} partition(s)"
            )
        return lines

    def to_dict(self) -> dict:
        return {
            "root": str(self.root),
            "partitions_scanned": self.partitions_scanned,
            "records_decoded": self.records_decoded,
            "clean": self.clean,
            "kinds": self.kinds(),
            "findings": [finding.to_dict() for finding in self.findings],
            "quarantined_records": self.quarantined_records,
            "quarantined_partitions": self.quarantined_partitions,
        }


#: Providers of per-table record decoders, registered by the layers that
#: own the codecs (``tstat.logs`` for flow logs, ``core.persistence`` for
#: the aggregate tables).  Integrity sits *beneath* those layers, so it
#: must not import them — they push their decoders down at import time.
_CODEC_PROVIDERS: List[Callable[[], Dict[str, object]]] = []  # repro: noqa[RPR004] -- append-only at import time, before any worker forks


def register_codec_provider(
    provider: Callable[[], Dict[str, object]]
) -> None:
    """Register a table→decoder mapping for :func:`default_codecs`.

    A registered decoder is either a plain line callable (v1 text
    partitions only) or a :class:`~repro.dataflow.columnar.ColumnarCodec`
    (decodes both containers: its ``decode`` handles v1 lines, its
    ``from_row`` handles v2 chunk rows).  Later registrations win, so a
    layer can upgrade a table's decoder to the columnar codec.
    """
    _CODEC_PROVIDERS.append(provider)


def default_codecs() -> Dict[str, object]:
    """Decoders fsck uses per table to surface bad *records* (not just bad
    partitions).  Unknown tables still get structural verification.  Only
    tables whose owning module has been imported are decodable — the CLI
    imports them all before scanning."""
    codecs: Dict[str, object] = {}
    for provider in _CODEC_PROVIDERS:
        codecs.update(provider())
    return codecs


def fsck_lake(
    lake,
    *,
    decode: bool = True,
    quarantine: bool = False,
    codecs: Optional[Dict[str, object]] = None,
) -> FsckReport:
    """Scan every partition of a lake and report integrity findings.

    Structural checks (torn gzip, CRC, record count, schema header) run
    against the sidecar manifests; with ``decode=True``, tables with a
    known codec are additionally decoded line by line so malformed
    records are named individually.  ``quarantine=True`` routes bad
    records and failed partitions into ``<root>/_quarantine/``.

    ``lake`` is any object with the :class:`~repro.dataflow.datalake.
    DataLake` surface (``root``, ``tables()``, ``days()``, ``day_dir()``).
    """
    if codecs is None:
        codecs = default_codecs() if decode else {}
    sink = Quarantine(Path(lake.root) / QUARANTINE_DIR) if quarantine else None
    report = FsckReport(root=Path(lake.root))
    for table in lake.tables():
        decoder = codecs.get(table) if decode else None
        # Litter scan walks the directory tree structurally rather than
        # via ``lake.days()``: a writer that died before its first rename
        # leaves a day dir holding *only* staging litter, which the
        # partition-based day enumeration deliberately skips.
        table_dir = Path(lake.root) / table
        for day_path in sorted(table_dir.glob("year=*/month=*/day=*")):
            try:
                stale_day = datetime.date(
                    int(day_path.parent.parent.name.split("=")[1]),
                    int(day_path.parent.name.split("=")[1]),
                    int(day_path.name.split("=")[1]),
                )
            except (IndexError, ValueError):
                continue
            for stale in fsio.stale_staging_files(day_path):
                # A dead writer's staging file: invisible to reads (the
                # partition globs skip dot-prefixed names) but worth
                # surfacing — it marks an interrupted write whose final
                # rename never happened.
                report.findings.append(
                    IntegrityFinding(
                        table, stale_day, stale.name, "litter",
                        "staging file from an interrupted write "
                        "(crash between write and rename)",
                    )
                )
        for day in lake.days(table):
            directory = lake.day_dir(table, day)
            paths = sorted(
                list(directory.glob("*.tsv.gz"))
                + list(directory.glob("*.colchunk"))
            )
            for path in paths:
                source = partition_source_name(path)
                report.partitions_scanned += 1
                telemetry.count("fsck_partitions_scanned", table=table)
                try:
                    check = verify_partition(path)
                except PartitionIntegrityError as exc:
                    check = PartitionCheck(
                        path, ok=False, kind=exc.kind, detail=exc.detail
                    )
                if not check.ok:
                    report.findings.append(
                        IntegrityFinding(table, day, source, check.kind,
                                         check.detail)
                    )
                    telemetry.count("lake_checksum_failures", table=table)
                    if sink is not None:
                        sink.partition(
                            table, day, source, f"{check.kind}: {check.detail}"
                        )
                    continue
                if check.kind == "manifest":
                    report.findings.append(
                        IntegrityFinding(table, day, source, "manifest",
                                         check.detail)
                    )
                if decoder is not None:
                    if path.name.endswith(".colchunk"):
                        _fsck_decode_chunk(
                            report, sink, decoder, path, table, day, source
                        )
                    else:
                        _fsck_decode(
                            report, sink, decoder, path, table, day, source
                        )
    if sink is not None:
        report.quarantined_records = sink.records_quarantined
        report.quarantined_partitions = sink.partitions_quarantined
    return report


def partition_source_name(path: Path) -> str:
    """The source stem of a partition file, either container suffix."""
    for suffix in (".tsv.gz", ".colchunk"):
        if path.name.endswith(suffix):
            return path.name[: -len(suffix)]
    return path.name


def _fsck_decode_chunk(
    report: FsckReport,
    sink: Optional[Quarantine],
    decoder: object,
    path: Path,
    table: str,
    day: datetime.date,
    source: str,
) -> None:
    """Decode every row of one structurally-verified v2 chunk.

    Registered codecs that carry a column schema (``from_row``) decode
    row by row; a plain line decoder cannot read a binary chunk, so such
    tables keep structural verification only.
    """
    if not hasattr(decoder, "from_row"):
        return
    from repro.dataflow.columnar import read_chunk

    try:
        scan = read_chunk(path, decoder)  # type: ignore[arg-type]
    except PartitionIntegrityError as exc:
        report.findings.append(
            IntegrityFinding(table, day, source, exc.kind, exc.detail)
        )
        if sink is not None:
            sink.partition(table, day, source, f"{exc.kind}: {exc.detail}")
        return
    except Exception as exc:  # noqa: BLE001 — normalized below
        reason = (
            exc.reason
            if isinstance(exc, RecordDecodeError)
            else f"undecodable chunk rows: {exc!r}"
        )
        report.findings.append(
            IntegrityFinding(table, day, source, "record", reason)
        )
        if sink is not None:
            sink.partition(table, day, source, f"record: {reason}")
        return
    report.records_decoded += len(scan.records)


def _fsck_decode(
    report: FsckReport,
    sink: Optional[Quarantine],
    decoder: object,
    path: Path,
    table: str,
    day: datetime.date,
    source: str,
) -> None:
    """Decode every payload line of one verified partition."""
    decode_line: Callable[[str], object] = (
        decoder.decode if hasattr(decoder, "decode") else decoder  # type: ignore[union-attr,assignment]
    )
    with _open_partition_text(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            if not is_payload_line(line):
                continue
            try:
                decode_line(line)
            except Exception as exc:  # noqa: BLE001 — normalized below
                reason = (
                    exc.reason
                    if isinstance(exc, RecordDecodeError)
                    else f"undecodable record: {exc!r}"
                )
                report.findings.append(
                    IntegrityFinding(
                        table, day, source, "record",
                        f"line {line_number}: {reason}",
                    )
                )
                if sink is not None:
                    sink.record(table, day, source, line_number, line, reason)
            else:
                report.records_decoded += 1


def quarantine_tree(root: Path) -> Dict[str, str]:
    """Relative path → content of a quarantine directory (for equality
    assertions: two deterministic runs must produce identical trees)."""
    root = Path(root)
    if not root.is_dir():
        return {}
    return {
        path.relative_to(root).as_posix(): path.read_text(encoding="utf-8")
        for path in sorted(root.rglob("*"))
        if path.is_file()
    }
