"""The data lake: day-partitioned long-term storage of probe exports.

"Daily, logs are copied into a long-term storage in a centralized data
center" (Section 2.2).  The layout is the conventional one for date-keyed
analytics at rest::

    <root>/<table>/year=YYYY/month=MM/day=DD/<probe>.tsv.gz

Tables are typed through a :class:`LineCodec`; flow logs reuse the probe's
on-disk format so a file written by a probe can be dropped into the lake
unchanged.  Reads come back as lazy :class:`~repro.dataflow.engine.Dataset`
partitions — one partition per stored file — so stage-1 jobs stream.

Every partition is finalized atomically (temp file + ``os.replace``) and
carries a sidecar :class:`~repro.dataflow.integrity.PartitionManifest`
(CRC32 + record count + schema version), so torn copies and bit rot are
detectable.  Reads accept a :class:`~repro.dataflow.integrity.LakeIntegrity`
that verifies partitions lazily and routes undecodable records per policy
(``strict`` | ``quarantine`` | ``skip``); without one, reads behave as
before except that decode failures surface as the typed
:class:`~repro.dataflow.integrity.RecordDecodeError` naming the table,
day, source file, and line number.
"""

from __future__ import annotations

import datetime
import gzip
import io
import os
import pickle
import zlib
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Generic,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    TypeVar,
)

from repro.core import fsio
from repro.dataflow.columnar import (
    CHUNK_SUFFIX,
    ColumnarCodec,
    ColumnSpec,
    ScanPredicate,
    encode_chunk,
    read_chunk,
)
from repro.dataflow.engine import Dataset
from repro.dataflow.integrity import (
    LakeIntegrity,
    PartitionCheck,
    PartitionIntegrityError,
    PayloadDigest,
    RecordDecodeError,
    load_manifest,
    partition_source_name,
    register_codec_provider,
    verify_partition,
    write_manifest,
)
from repro.telemetry import runtime as telemetry
from repro.tstat.flow import (
    FlowRecord,
    NameSource,
    RttSummary,
    Transport,
    WebProtocol,
)
from repro.tstat.logs import format_record, parse_record

T = TypeVar("T")

#: Lake write formats: v1 gzip-TSV lines, v2 column chunks + zone maps.
LAKE_FORMAT_V1 = "v1"
LAKE_FORMAT_V2 = "v2"
LAKE_FORMATS = (LAKE_FORMAT_V1, LAKE_FORMAT_V2)


class LineCodec(Generic[T]):
    """Encodes/decodes one record per text line."""

    def __init__(
        self, encode: Callable[[T], str], decode: Callable[[str], T]
    ) -> None:
        self.encode = encode
        self.decode = decode


def _flow_to_row(record: FlowRecord) -> tuple:
    # Stored at v1 wire precision (ts %.6f, RTT %.3f) so the same records
    # read back field-identical from either lake format.
    return (
        record.client_id,
        record.server_ip,
        record.client_port,
        record.server_port,
        record.transport.value,
        float(f"{record.ts_start:.6f}"),
        float(f"{record.ts_end:.6f}"),
        record.packets_up,
        record.packets_down,
        record.bytes_up,
        record.bytes_down,
        record.protocol.value,
        record.server_name,
        record.name_source.value,
        record.rtt.samples,
        float(f"{record.rtt.min_ms:.3f}"),
        float(f"{record.rtt.avg_ms:.3f}"),
        float(f"{record.rtt.max_ms:.3f}"),
        record.vantage,
    )


def _flow_from_row(row: tuple) -> FlowRecord:
    return FlowRecord(
        client_id=row[0],
        server_ip=row[1],
        client_port=row[2],
        server_port=row[3],
        transport=Transport(row[4]),
        ts_start=row[5],
        ts_end=row[6],
        packets_up=row[7],
        packets_down=row[8],
        bytes_up=row[9],
        bytes_down=row[10],
        protocol=WebProtocol(row[11]),
        server_name=row[12],
        name_source=NameSource(row[13]),
        rtt=RttSummary(samples=row[14], min_ms=row[15], avg_ms=row[16], max_ms=row[17]),
        vantage=row[18],
    )


#: Codec for probe flow records (same format as the probe's own logs);
#: columnar, so flow partitions can be stored as v2 chunks too.
FLOW_CODEC: ColumnarCodec[FlowRecord] = ColumnarCodec(
    encode=format_record,
    decode=parse_record,
    columns=[
        ColumnSpec("client_id", "int"),
        ColumnSpec("server_ip", "int"),
        ColumnSpec("client_port", "int"),
        ColumnSpec("server_port", "int"),
        ColumnSpec("transport", "str"),
        ColumnSpec("ts_start", "float"),
        ColumnSpec("ts_end", "float"),
        ColumnSpec("packets_up", "int"),
        ColumnSpec("packets_down", "int"),
        ColumnSpec("bytes_up", "int"),
        ColumnSpec("bytes_down", "int"),
        ColumnSpec("protocol", "str"),
        ColumnSpec("server_name", "str"),
        ColumnSpec("name_source", "str"),
        ColumnSpec("rtt_samples", "int"),
        ColumnSpec("rtt_min_ms", "float"),
        ColumnSpec("rtt_avg_ms", "float"),
        ColumnSpec("rtt_max_ms", "float"),
        ColumnSpec("vantage", "str"),
    ],
    to_row=_flow_to_row,
    from_row=_flow_from_row,
    zone_columns=("vantage", "protocol"),
)

# Upgrade fsck's flow decoder to the columnar codec (v1 lines + v2
# chunks); later registrations win over tstat.logs' line-only one.
register_codec_provider(lambda: {"flows": FLOW_CODEC})


def tsv_codec(
    from_fields: Callable[[List[str]], T], to_fields: Callable[[T], List[str]]
) -> LineCodec[T]:
    """Build a codec for tab-separated rows of typed fields."""
    return LineCodec(
        encode=lambda record: "\t".join(to_fields(record)),
        decode=lambda line: from_fields(line.rstrip("\n").split("\t")),
    )


class DataLake:
    """A directory-rooted, day-partitioned record store.

    ``write_format`` selects the on-disk container for new partitions:
    ``"v1"`` (gzip-TSV lines, the historical default) or ``"v2"``
    (column chunks with zone-mapped manifests).  Reads are always
    format-agnostic — a lake may hold both containers side by side and
    :meth:`read_day`/:meth:`read_range` decode whichever is present.
    """

    def __init__(self, root: Path, write_format: str = LAKE_FORMAT_V1) -> None:
        if write_format not in LAKE_FORMATS:
            raise ValueError(
                f"unknown lake write format {write_format!r}; "
                f"choose from {LAKE_FORMATS}"
            )
        self.root = Path(root)
        self.write_format = write_format
        self.root.mkdir(parents=True, exist_ok=True)

    # -- paths ---------------------------------------------------------------

    def day_dir(self, table: str, day: datetime.date) -> Path:
        return (
            self.root
            / table
            / f"year={day.year:04d}"
            / f"month={day.month:02d}"
            / f"day={day.day:02d}"
        )

    # -- writes ---------------------------------------------------------------

    def write_day(
        self,
        table: str,
        day: datetime.date,
        records: Iterable[T],
        codec: LineCodec[T],
        source: str = "part-0",
    ) -> Path:
        """Write one source file into a day partition; returns its path.

        The data file is staged to a temp name and ``os.replace``\\ d into
        place, then its sidecar manifest is finalized the same way — so a
        crash mid-write leaves either nothing, or a complete data file
        whose missing/stale manifest flags it as unverified.  The gzip
        header is written with ``mtime=0``: identical records produce
        byte-identical partitions.

        Under ``write_format="v2"`` the partition is a column chunk
        (requires a :class:`~repro.dataflow.columnar.ColumnarCodec`) and
        the manifest additionally carries the zone map.
        """
        directory = self.day_dir(table, day)
        directory.mkdir(parents=True, exist_ok=True)
        if self.write_format == LAKE_FORMAT_V2:
            if not isinstance(codec, ColumnarCodec):
                raise TypeError(
                    f"table {table!r}: v2 chunk partitions need a "
                    f"ColumnarCodec, got {type(codec).__name__}"
                )
            path = directory / f"{source}{CHUNK_SUFFIX}"
            tmp = directory / f".{source}{CHUNK_SUFFIX}.{os.getpid()}.part"
            payload, manifest = encode_chunk(records, codec, day)
            fsio.write_and_replace(
                path, payload, surface=fsio.SURFACE_LAKE, tmp=tmp
            )
            write_manifest(path, manifest)
            telemetry.count("datalake_files_written", table=table)
            return path
        path = directory / f"{source}.tsv.gz"
        tmp = directory / f".{source}.tsv.gz.{os.getpid()}.part"
        digest = PayloadDigest()
        buffer = io.BytesIO()
        gz = gzip.GzipFile(filename="", mode="wb", fileobj=buffer, mtime=0)
        with io.TextIOWrapper(gz, encoding="utf-8") as handle:
            for record in records:
                line = codec.encode(record) + "\n"
                handle.write(line)
                digest.add_line(line)
        fsio.write_and_replace(
            path, buffer.getvalue(), surface=fsio.SURFACE_LAKE, tmp=tmp
        )
        write_manifest(path, digest.manifest())
        telemetry.count("datalake_files_written", table=table)
        return path

    # -- reads ----------------------------------------------------------------

    @staticmethod
    def _partition_files(directory: Path) -> List[Path]:
        """Data files of one day partition, both containers, sorted."""
        if not directory.is_dir():
            return []
        return sorted(
            list(directory.glob("*.tsv.gz")) + list(directory.glob("*.colchunk"))
        )

    def has_day(self, table: str, day: datetime.date) -> bool:
        return bool(self._partition_files(self.day_dir(table, day)))

    def days(self, table: str) -> List[datetime.date]:
        """Every day for which the table holds at least one file."""
        table_dir = self.root / table
        found: List[datetime.date] = []
        if not table_dir.is_dir():
            return found
        for year_dir in sorted(table_dir.glob("year=*")):
            for month_dir in sorted(year_dir.glob("month=*")):
                for day_dir in sorted(month_dir.glob("day=*")):
                    if self._partition_files(day_dir):
                        found.append(
                            datetime.date(
                                int(year_dir.name.split("=")[1]),
                                int(month_dir.name.split("=")[1]),
                                int(day_dir.name.split("=")[1]),
                            )
                        )
        return found

    def read_day(
        self,
        table: str,
        day: datetime.date,
        codec: LineCodec[T],
        integrity: Optional[LakeIntegrity] = None,
        where: Optional[ScanPredicate] = None,
    ) -> Dataset[T]:
        """The records of one day as a lazy dataset (one partition/file).

        With an ``integrity`` context, each partition is verified against
        its sidecar manifest at first iteration and undecodable records
        are routed per the context's policy; without one, reads are
        unverified and any decode failure raises a typed
        :class:`RecordDecodeError` naming the partition and line.

        With a ``where`` predicate (needs a :class:`ColumnarCodec`), the
        day's partitions are zone-map pruned through the engine and the
        predicate is pushed into surviving partitions: v2 chunks decode
        only the columns the predicate needs (plus projected survivors),
        v1 text partitions filter record-by-record to the same result.
        """
        dataset, _, _ = self._day_dataset(table, day, codec, integrity, where)
        return dataset

    def _day_dataset(
        self,
        table: str,
        day: datetime.date,
        codec: LineCodec[T],
        integrity: Optional[LakeIntegrity],
        where: Optional[ScanPredicate],
    ) -> "tuple[Dataset[T], int, int]":
        """One day's dataset plus (total, pruned) partition counts."""
        files = self._partition_files(self.day_dir(table, day))
        if not files:
            return Dataset.empty(), 0, 0
        if where is not None and not isinstance(codec, ColumnarCodec):
            raise TypeError(
                f"table {table!r}: predicate reads need a ColumnarCodec, "
                f"got {type(codec).__name__}"
            )
        sources = []
        stats: List[Optional[dict]] = []
        day_zone = {"day_min": day.isoformat(), "day_max": day.isoformat()}
        for path in files:
            if path.name.endswith(CHUNK_SUFFIX):
                sources.append(
                    _chunk_source(path, codec, table, day, integrity, where)
                )
            else:
                sources.append(
                    _file_source(path, codec, table, day, integrity, where)
                )
            zone: Optional[dict] = day_zone
            if where is not None:
                try:
                    manifest = load_manifest(path)
                except PartitionIntegrityError:
                    manifest = None  # damaged sidecar: the read path decides
                if manifest is not None and manifest.zone is not None:
                    zone = manifest.zone
            stats.append(zone)
        dataset: Dataset[T] = Dataset.from_partitions(sources, stats)
        if where is None:
            return dataset, len(files), 0
        pruned_dataset = dataset.prune(where.matches_zone)
        pruned = dataset.num_partitions - pruned_dataset.num_partitions
        if pruned:
            telemetry.count("lake_partitions_pruned", pruned, table=table)
        return pruned_dataset, len(files), pruned

    def read_range(
        self,
        table: str,
        start: datetime.date,
        end: datetime.date,
        codec: LineCodec[T],
        integrity: Optional[LakeIntegrity] = None,
        where: Optional[ScanPredicate] = None,
    ) -> Dataset[T]:
        """Records of every stored day in [start, end] (missing days skip).

        A ``where`` predicate narrows the scan: days outside the
        predicate's day range are skipped outright, remaining partitions
        are zone-map pruned, and surviving partitions decode with the
        predicate pushed down (see :meth:`read_day`).  The planning span
        records how effective pruning was.
        """
        planned: List["tuple[datetime.date, bool]"] = []
        for day in self.days(table):
            if not (start <= day <= end):
                continue
            skipped = where is not None and not where.admits_day(day)
            planned.append((day, skipped))
        total = 0
        pruned = 0
        datasets: List[Dataset[T]] = []
        for day, skipped in planned:
            if skipped:
                files = len(self._partition_files(self.day_dir(table, day)))
                total += files
                pruned += files
                if files:
                    telemetry.count(
                        "lake_partitions_pruned", files, table=table
                    )
                continue
            dataset, day_total, day_pruned = self._day_dataset(
                table, day, codec, integrity, where
            )
            total += day_total
            pruned += day_pruned
            datasets.append(dataset)
        with telemetry.span(
            "lake_read_range",
            table=table,
            partitions=total,
            pruned=pruned,
            pushdown=where is not None,
        ):
            combined: Dataset[T] = Dataset.empty()
            for dataset in datasets:
                combined = combined.union(dataset)
        return combined

    def tables(self) -> List[str]:
        """Every data table in the lake (service dirs like ``_quarantine``
        are kept out of the namespace by their underscore prefix)."""
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and not entry.name.startswith("_")
        )


def _file_source(
    path: Path,
    codec: LineCodec[T],
    table: str,
    day: datetime.date,
    integrity: Optional[LakeIntegrity],
    where: Optional[ScanPredicate] = None,
) -> Callable[[], Iterator[T]]:
    source = partition_source_name(path)

    def read() -> Iterator[T]:
        telemetry.count("datalake_files_read")
        if integrity is not None:
            try:
                manifest = load_manifest(path)
            except PartitionIntegrityError as exc:
                integrity.ledger.note_partition(table, day, None)
                integrity.bad_partition(
                    PartitionCheck(path, ok=False, kind=exc.kind, detail=exc.detail),
                    table=table, day=day, source=source,
                )
                return
            integrity.ledger.note_partition(table, day, manifest)
            if integrity.verify_checksums:
                check = verify_partition(path, manifest)
                if not check.ok:
                    integrity.bad_partition(
                        check, table=table, day=day, source=source
                    )
                    return
        try:
            with io.TextIOWrapper(gzip.open(path, "rb"), encoding="utf-8") as handle:
                for line_number, line in enumerate(handle, start=1):
                    if line.startswith("#") or not line.strip():
                        continue
                    try:
                        record = codec.decode(line)
                    except Exception as exc:  # noqa: BLE001 — normalized below
                        error = (
                            exc
                            if isinstance(exc, RecordDecodeError)
                            else RecordDecodeError(f"undecodable record: {exc!r}")
                        )
                        if integrity is None:
                            raise error.with_context(
                                table=table, day=day, source=source,
                                line_number=line_number, line=line,
                            ) from exc
                        integrity.bad_record(
                            error, table=table, day=day, source=source,
                            line_number=line_number, line=line,
                        )
                        continue
                    if integrity is not None:
                        integrity.ledger.note_decoded(
                            day, len(line.encode("utf-8"))
                        )
                    if where is not None and not where.matches_record(
                        codec, record
                    ):
                        continue
                    yield record
        except (OSError, EOFError, zlib.error, gzip.BadGzipFile) as exc:
            # A stream-level failure mid-read (torn tail reached without a
            # prior verification pass): treat the partition as bad.
            if integrity is None:
                if isinstance(exc, FileNotFoundError):
                    raise  # a vanished file is not corruption
                raise PartitionIntegrityError(
                    path, "torn", f"unreadable partition: {exc!r}",
                    table=table, day=day,
                ) from exc
            integrity.bad_partition(
                PartitionCheck(
                    path, ok=False, kind="torn",
                    detail=f"unreadable partition: {exc!r}",
                ),
                table=table, day=day, source=source,
            )

    return read


def _chunk_source(
    path: Path,
    codec: "ColumnarCodec[T]",
    table: str,
    day: datetime.date,
    integrity: Optional[LakeIntegrity],
    where: Optional[ScanPredicate] = None,
) -> Callable[[], Iterator[T]]:
    source = partition_source_name(path)

    def read() -> Iterator[T]:
        telemetry.count("datalake_files_read")
        manifest = None
        if integrity is not None:
            try:
                manifest = load_manifest(path)
            except PartitionIntegrityError as exc:
                integrity.ledger.note_partition(table, day, None)
                integrity.bad_partition(
                    PartitionCheck(path, ok=False, kind=exc.kind, detail=exc.detail),
                    table=table, day=day, source=source,
                )
                return
            integrity.ledger.note_partition(table, day, manifest)
            if integrity.verify_checksums:
                check = verify_partition(path, manifest)
                if not check.ok:
                    integrity.bad_partition(
                        check, table=table, day=day, source=source
                    )
                    return
        try:
            scan = read_chunk(path, codec, where)
        except PartitionIntegrityError as exc:
            if integrity is None:
                raise PartitionIntegrityError(
                    path, exc.kind, exc.detail, table=table, day=day
                ) from exc
            integrity.bad_partition(
                PartitionCheck(path, ok=False, kind=exc.kind, detail=exc.detail),
                table=table, day=day, source=source,
            )
            return
        except OSError as exc:
            if integrity is None:
                if isinstance(exc, FileNotFoundError):
                    raise  # a vanished file is not corruption
                raise PartitionIntegrityError(
                    path, "torn", f"unreadable partition: {exc!r}",
                    table=table, day=day,
                ) from exc
            integrity.bad_partition(
                PartitionCheck(
                    path, ok=False, kind="torn",
                    detail=f"unreadable partition: {exc!r}",
                ),
                table=table, day=day, source=source,
            )
            return
        if scan.columns_skipped:
            telemetry.count(
                "lake_columns_skipped", scan.columns_skipped, table=table
            )
        if integrity is not None and scan.rows_total:
            # The chunk decoded cleanly end to end, so the quality ledger
            # counts every stored row — decode integrity is what it
            # measures, not predicate selectivity.
            bytes_per_row = (
                manifest.payload_bytes // scan.rows_total
                if manifest is not None
                else 0
            )
            for _ in range(scan.rows_total):
                integrity.ledger.note_decoded(day, bytes_per_row)
        yield from scan.records

    return read


class CheckpointError(RuntimeError):
    """A checkpoint file is unreadable or keyed for a different run."""


#: Bumped whenever the checkpoint payload layout changes; older files
#: are rejected (and recomputed) instead of being misread.  v2 pickles
#: the payload separately and stores its CRC32 alongside, so truncation
#: and bit rot inside the payload are detected, not just torn envelopes.
CHECKPOINT_VERSION = 2


class CheckpointStore:
    """Crash-safe per-day storage of partial results, keyed by config.

    The fault-tolerance tier of the lake (DESIGN.md §10): while the
    study runs, each completed day's packed partial is persisted under
    ``<root>/config=<config_hash>/day=<ISO>.ckpt``.  A killed run
    resumes by loading finished days and recomputing only the rest.

    Sharded runs (DESIGN.md §15) pass ``shard=(index, count)``, which
    keys both the filename — ``day=<ISO>.shard=<k>of<N>.ckpt`` — and the
    in-file header, so a killed N-shard run resumes *mid-day* and shard
    checkpoints can never be merged into a run with a different fan-out.
    Unsharded runs (``shard=None``) keep the exact legacy filenames and
    payload layout; pre-shard checkpoint files stay loadable.

    Two guarantees make resumes trustworthy:

    * **Keying.** The directory *and* an in-file header carry the config
      hash and the day; :meth:`load` verifies both, so a checkpoint
      written under a different configuration (or renamed on disk) is
      rejected with :class:`CheckpointError` rather than silently merged.
    * **Atomicity.** :meth:`save` writes to a temp file in the same
      directory and ``os.replace``\\ s it into place, so a crash mid-write
      leaves either the previous state or the complete new file — never a
      torn checkpoint.
    * **Verification.** The payload is pickled separately and stored with
      its CRC32; :meth:`load` checks the CRC before unpickling, so a
      truncated or bit-rotted file raises :class:`CheckpointError` (which
      resume treats as "missing: recompute") instead of crashing the run
      or silently merging garbage.
    """

    def __init__(self, root: Path, config_hash: str) -> None:
        self.root = Path(root)
        self.config_hash = config_hash
        self.directory = self.root / f"config={config_hash}"
        self.directory.mkdir(parents=True, exist_ok=True)
        # A writer that died between staging write and rename left a
        # `.day=...tmp` behind; sweeping here keeps torn-write litter
        # from accumulating across resumes (live writers are spared via
        # the embedded pid).
        swept = fsio.sweep_staging_files(self.directory)
        if swept:
            telemetry.count("checkpoint_litter_swept", len(swept))

    # -- paths ---------------------------------------------------------------

    def path_for(
        self,
        day: datetime.date,
        shard: Optional[Tuple[int, int]] = None,
    ) -> Path:
        if shard is None:
            return self.directory / f"day={day.isoformat()}.ckpt"
        index, count = shard
        return self.directory / (
            f"day={day.isoformat()}.shard={index}of{count}.ckpt"
        )

    @property
    def manifest_path(self) -> Path:
        return self.directory / "manifest.json"

    # -- io ------------------------------------------------------------------

    def has(
        self,
        day: datetime.date,
        shard: Optional[Tuple[int, int]] = None,
    ) -> bool:
        return self.path_for(day, shard).is_file()

    def save(
        self,
        day: datetime.date,
        payload: Any,
        shard: Optional[Tuple[int, int]] = None,
    ) -> Path:
        """Persist one day's payload atomically; returns the final path."""
        path = self.path_for(day, shard)
        payload_blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        record: Dict[str, Any] = {
            "version": CHECKPOINT_VERSION,
            "config_hash": self.config_hash,
            "day": day,
            "payload_blob": payload_blob,
            "crc": zlib.crc32(payload_blob),
        }
        if shard is not None:
            # Only sharded records carry the key: unsharded files stay
            # byte-compatible with pre-shard checkpoints.
            record["shard"] = tuple(shard)
        blob = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        fsio.write_and_replace(path, blob, surface=fsio.SURFACE_CHECKPOINT)
        telemetry.count("checkpoint_saves")
        return path

    def load(
        self,
        day: datetime.date,
        shard: Optional[Tuple[int, int]] = None,
    ) -> Any:
        """The payload checkpointed for ``day`` (and shard); raises
        CheckpointError when the file is corrupt or keyed for another
        config/day/shard."""
        try:
            payload = self._load(day, shard)
        except CheckpointError:
            telemetry.count("checkpoint_load_errors")
            raise
        telemetry.count("checkpoint_loads")
        return payload

    def _load(
        self,
        day: datetime.date,
        shard: Optional[Tuple[int, int]] = None,
    ) -> Any:
        path = self.path_for(day, shard)
        try:
            record = pickle.loads(path.read_bytes())
        except FileNotFoundError:
            raise CheckpointError(f"no checkpoint for {day.isoformat()}") from None
        except Exception as exc:
            raise CheckpointError(
                f"unreadable checkpoint {path}: {exc!r}"
            ) from exc
        if not isinstance(record, dict):
            raise CheckpointError(f"malformed checkpoint {path}")
        if record.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {path} has version {record.get('version')!r}, "
                f"expected {CHECKPOINT_VERSION}"
            )
        if record.get("config_hash") != self.config_hash:
            raise CheckpointError(
                f"checkpoint {path} belongs to config "
                f"{record.get('config_hash')!r}, not {self.config_hash!r}"
            )
        if record.get("day") != day:
            raise CheckpointError(
                f"checkpoint {path} holds {record.get('day')!r}, not {day}"
            )
        stored_shard = record.get("shard")
        wanted = tuple(shard) if shard is not None else None
        if (tuple(stored_shard) if stored_shard is not None else None) != wanted:
            raise CheckpointError(
                f"checkpoint {path} is keyed for shard {stored_shard!r}, "
                f"not {wanted!r}"
            )
        payload_blob = record.get("payload_blob")
        if not isinstance(payload_blob, bytes):
            raise CheckpointError(f"malformed checkpoint {path}: no payload")
        if zlib.crc32(payload_blob) != record.get("crc"):
            raise CheckpointError(
                f"checkpoint {path} failed CRC verification (truncated or "
                f"bit-rotted payload)"
            )
        try:
            return pickle.loads(payload_blob)
        except Exception as exc:
            raise CheckpointError(
                f"checkpoint {path} payload does not unpickle: {exc!r}"
            ) from exc

    def days(self) -> List[datetime.date]:
        """Every day with an *unsharded* checkpoint on disk, sorted.

        Shard checkpoint names (``day=<ISO>.shard=...``) deliberately
        fail the ISO parse and are skipped: a day is only "done" for
        whole-day consumers when its unsharded partial exists.
        """
        found: List[datetime.date] = []
        for path in self.directory.glob("day=*.ckpt"):
            raw = path.name[len("day=") : -len(".ckpt")]
            try:
                found.append(datetime.date.fromisoformat(raw))
            except ValueError:
                continue
        return sorted(found)


def month_days(year: int, month: int) -> List[datetime.date]:
    """Every calendar day of a month (shared helper for analytics)."""
    day = datetime.date(year, month, 1)
    days = []
    while day.month == month:
        days.append(day)
        day += datetime.timedelta(days=1)
    return days
