"""The data lake: day-partitioned long-term storage of probe exports.

"Daily, logs are copied into a long-term storage in a centralized data
center" (Section 2.2).  The layout is the conventional one for date-keyed
analytics at rest::

    <root>/<table>/year=YYYY/month=MM/day=DD/<probe>.tsv.gz

Tables are typed through a :class:`LineCodec`; flow logs reuse the probe's
on-disk format so a file written by a probe can be dropped into the lake
unchanged.  Reads come back as lazy :class:`~repro.dataflow.engine.Dataset`
partitions — one partition per stored file — so stage-1 jobs stream.
"""

from __future__ import annotations

import datetime
import gzip
import io
import os
import pickle
from pathlib import Path
from typing import Any, Callable, Generic, Iterable, Iterator, List, TypeVar

from repro.dataflow.engine import Dataset
from repro.telemetry import runtime as telemetry
from repro.tstat.flow import FlowRecord
from repro.tstat.logs import format_record, parse_record

T = TypeVar("T")


class LineCodec(Generic[T]):
    """Encodes/decodes one record per text line."""

    def __init__(
        self, encode: Callable[[T], str], decode: Callable[[str], T]
    ) -> None:
        self.encode = encode
        self.decode = decode


#: Codec for probe flow records (same format as the probe's own logs).
FLOW_CODEC: LineCodec[FlowRecord] = LineCodec(format_record, parse_record)


def tsv_codec(
    from_fields: Callable[[List[str]], T], to_fields: Callable[[T], List[str]]
) -> LineCodec[T]:
    """Build a codec for tab-separated rows of typed fields."""
    return LineCodec(
        encode=lambda record: "\t".join(to_fields(record)),
        decode=lambda line: from_fields(line.rstrip("\n").split("\t")),
    )


class DataLake:
    """A directory-rooted, day-partitioned record store."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- paths ---------------------------------------------------------------

    def day_dir(self, table: str, day: datetime.date) -> Path:
        return (
            self.root
            / table
            / f"year={day.year:04d}"
            / f"month={day.month:02d}"
            / f"day={day.day:02d}"
        )

    # -- writes ---------------------------------------------------------------

    def write_day(
        self,
        table: str,
        day: datetime.date,
        records: Iterable[T],
        codec: LineCodec[T],
        source: str = "part-0",
    ) -> Path:
        """Write one source file into a day partition; returns its path."""
        directory = self.day_dir(table, day)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{source}.tsv.gz"
        with io.TextIOWrapper(gzip.open(path, "wb"), encoding="utf-8") as handle:
            for record in records:
                handle.write(codec.encode(record) + "\n")
        telemetry.count("datalake_files_written", table=table)
        return path

    # -- reads ----------------------------------------------------------------

    def has_day(self, table: str, day: datetime.date) -> bool:
        directory = self.day_dir(table, day)
        return directory.is_dir() and any(directory.glob("*.tsv.gz"))

    def days(self, table: str) -> List[datetime.date]:
        """Every day for which the table holds at least one file."""
        table_dir = self.root / table
        found: List[datetime.date] = []
        if not table_dir.is_dir():
            return found
        for year_dir in sorted(table_dir.glob("year=*")):
            for month_dir in sorted(year_dir.glob("month=*")):
                for day_dir in sorted(month_dir.glob("day=*")):
                    if any(day_dir.glob("*.tsv.gz")):
                        found.append(
                            datetime.date(
                                int(year_dir.name.split("=")[1]),
                                int(month_dir.name.split("=")[1]),
                                int(day_dir.name.split("=")[1]),
                            )
                        )
        return found

    def read_day(
        self, table: str, day: datetime.date, codec: LineCodec[T]
    ) -> Dataset[T]:
        """The records of one day as a lazy dataset (one partition/file)."""
        directory = self.day_dir(table, day)
        if not directory.is_dir():
            return Dataset.empty()
        sources = [
            _file_source(path, codec) for path in sorted(directory.glob("*.tsv.gz"))
        ]
        return Dataset.from_partitions(sources)

    def read_range(
        self,
        table: str,
        start: datetime.date,
        end: datetime.date,
        codec: LineCodec[T],
    ) -> Dataset[T]:
        """Records of every stored day in [start, end] (missing days skip)."""
        datasets = [
            self.read_day(table, day, codec)
            for day in self.days(table)
            if start <= day <= end
        ]
        combined: Dataset[T] = Dataset.empty()
        for dataset in datasets:
            combined = combined.union(dataset)
        return combined

    def tables(self) -> List[str]:
        return sorted(
            entry.name for entry in self.root.iterdir() if entry.is_dir()
        )


def _file_source(path: Path, codec: LineCodec[T]) -> Callable[[], Iterator[T]]:
    def read() -> Iterator[T]:
        telemetry.count("datalake_files_read")
        with io.TextIOWrapper(gzip.open(path, "rb"), encoding="utf-8") as handle:
            for line in handle:
                if line.startswith("#") or not line.strip():
                    continue
                yield codec.decode(line)

    return read


class CheckpointError(RuntimeError):
    """A checkpoint file is unreadable or keyed for a different run."""


#: Bumped whenever the checkpoint payload layout changes; older files
#: are rejected (and recomputed) instead of being misread.
CHECKPOINT_VERSION = 1


class CheckpointStore:
    """Crash-safe per-day storage of partial results, keyed by config.

    The fault-tolerance tier of the lake (DESIGN.md §10): while the
    study runs, each completed day's packed partial is persisted under
    ``<root>/config=<config_hash>/day=<ISO>.ckpt``.  A killed run
    resumes by loading finished days and recomputing only the rest.

    Two guarantees make resumes trustworthy:

    * **Keying.** The directory *and* an in-file header carry the config
      hash and the day; :meth:`load` verifies both, so a checkpoint
      written under a different configuration (or renamed on disk) is
      rejected with :class:`CheckpointError` rather than silently merged.
    * **Atomicity.** :meth:`save` writes to a temp file in the same
      directory and ``os.replace``\\ s it into place, so a crash mid-write
      leaves either the previous state or the complete new file — never a
      torn checkpoint.
    """

    def __init__(self, root: Path, config_hash: str) -> None:
        self.root = Path(root)
        self.config_hash = config_hash
        self.directory = self.root / f"config={config_hash}"
        self.directory.mkdir(parents=True, exist_ok=True)

    # -- paths ---------------------------------------------------------------

    def path_for(self, day: datetime.date) -> Path:
        return self.directory / f"day={day.isoformat()}.ckpt"

    @property
    def manifest_path(self) -> Path:
        return self.directory / "manifest.json"

    # -- io ------------------------------------------------------------------

    def has(self, day: datetime.date) -> bool:
        return self.path_for(day).is_file()

    def save(self, day: datetime.date, payload: Any) -> Path:
        """Persist one day's payload atomically; returns the final path."""
        path = self.path_for(day)
        blob = pickle.dumps(
            {
                "version": CHECKPOINT_VERSION,
                "config_hash": self.config_hash,
                "day": day,
                "payload": payload,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_bytes(blob)
        os.replace(tmp, path)
        telemetry.count("checkpoint_saves")
        return path

    def load(self, day: datetime.date) -> Any:
        """The payload checkpointed for ``day``; raises CheckpointError
        when the file is corrupt or keyed for another config/day."""
        try:
            payload = self._load(day)
        except CheckpointError:
            telemetry.count("checkpoint_load_errors")
            raise
        telemetry.count("checkpoint_loads")
        return payload

    def _load(self, day: datetime.date) -> Any:
        path = self.path_for(day)
        try:
            record = pickle.loads(path.read_bytes())
        except FileNotFoundError:
            raise CheckpointError(f"no checkpoint for {day.isoformat()}") from None
        except Exception as exc:
            raise CheckpointError(
                f"unreadable checkpoint {path}: {exc!r}"
            ) from exc
        if not isinstance(record, dict):
            raise CheckpointError(f"malformed checkpoint {path}")
        if record.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {path} has version {record.get('version')!r}, "
                f"expected {CHECKPOINT_VERSION}"
            )
        if record.get("config_hash") != self.config_hash:
            raise CheckpointError(
                f"checkpoint {path} belongs to config "
                f"{record.get('config_hash')!r}, not {self.config_hash!r}"
            )
        if record.get("day") != day:
            raise CheckpointError(
                f"checkpoint {path} holds {record.get('day')!r}, not {day}"
            )
        return record["payload"]

    def days(self) -> List[datetime.date]:
        """Every day with a checkpoint on disk, sorted."""
        found: List[datetime.date] = []
        for path in self.directory.glob("day=*.ckpt"):
            raw = path.name[len("day=") : -len(".ckpt")]
            try:
                found.append(datetime.date.fromisoformat(raw))
            except ValueError:
                continue
        return sorted(found)


def month_days(year: int, month: int) -> List[datetime.date]:
    """Every calendar day of a month (shared helper for analytics)."""
    day = datetime.date(year, month, 1)
    days = []
    while day.month == month:
        days.append(day)
        day += datetime.timedelta(days=1)
    return days
