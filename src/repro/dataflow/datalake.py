"""The data lake: day-partitioned long-term storage of probe exports.

"Daily, logs are copied into a long-term storage in a centralized data
center" (Section 2.2).  The layout is the conventional one for date-keyed
analytics at rest::

    <root>/<table>/year=YYYY/month=MM/day=DD/<probe>.tsv.gz

Tables are typed through a :class:`LineCodec`; flow logs reuse the probe's
on-disk format so a file written by a probe can be dropped into the lake
unchanged.  Reads come back as lazy :class:`~repro.dataflow.engine.Dataset`
partitions — one partition per stored file — so stage-1 jobs stream.
"""

from __future__ import annotations

import datetime
import gzip
import io
from pathlib import Path
from typing import Callable, Generic, Iterable, Iterator, List, TypeVar

from repro.dataflow.engine import Dataset
from repro.tstat.flow import FlowRecord
from repro.tstat.logs import format_record, parse_record

T = TypeVar("T")


class LineCodec(Generic[T]):
    """Encodes/decodes one record per text line."""

    def __init__(
        self, encode: Callable[[T], str], decode: Callable[[str], T]
    ) -> None:
        self.encode = encode
        self.decode = decode


#: Codec for probe flow records (same format as the probe's own logs).
FLOW_CODEC: LineCodec[FlowRecord] = LineCodec(format_record, parse_record)


def tsv_codec(
    from_fields: Callable[[List[str]], T], to_fields: Callable[[T], List[str]]
) -> LineCodec[T]:
    """Build a codec for tab-separated rows of typed fields."""
    return LineCodec(
        encode=lambda record: "\t".join(to_fields(record)),
        decode=lambda line: from_fields(line.rstrip("\n").split("\t")),
    )


class DataLake:
    """A directory-rooted, day-partitioned record store."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- paths ---------------------------------------------------------------

    def day_dir(self, table: str, day: datetime.date) -> Path:
        return (
            self.root
            / table
            / f"year={day.year:04d}"
            / f"month={day.month:02d}"
            / f"day={day.day:02d}"
        )

    # -- writes ---------------------------------------------------------------

    def write_day(
        self,
        table: str,
        day: datetime.date,
        records: Iterable[T],
        codec: LineCodec[T],
        source: str = "part-0",
    ) -> Path:
        """Write one source file into a day partition; returns its path."""
        directory = self.day_dir(table, day)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{source}.tsv.gz"
        with io.TextIOWrapper(gzip.open(path, "wb"), encoding="utf-8") as handle:
            for record in records:
                handle.write(codec.encode(record) + "\n")
        return path

    # -- reads ----------------------------------------------------------------

    def has_day(self, table: str, day: datetime.date) -> bool:
        directory = self.day_dir(table, day)
        return directory.is_dir() and any(directory.glob("*.tsv.gz"))

    def days(self, table: str) -> List[datetime.date]:
        """Every day for which the table holds at least one file."""
        table_dir = self.root / table
        found: List[datetime.date] = []
        if not table_dir.is_dir():
            return found
        for year_dir in sorted(table_dir.glob("year=*")):
            for month_dir in sorted(year_dir.glob("month=*")):
                for day_dir in sorted(month_dir.glob("day=*")):
                    if any(day_dir.glob("*.tsv.gz")):
                        found.append(
                            datetime.date(
                                int(year_dir.name.split("=")[1]),
                                int(month_dir.name.split("=")[1]),
                                int(day_dir.name.split("=")[1]),
                            )
                        )
        return found

    def read_day(
        self, table: str, day: datetime.date, codec: LineCodec[T]
    ) -> Dataset[T]:
        """The records of one day as a lazy dataset (one partition/file)."""
        directory = self.day_dir(table, day)
        if not directory.is_dir():
            return Dataset.empty()
        sources = [
            _file_source(path, codec) for path in sorted(directory.glob("*.tsv.gz"))
        ]
        return Dataset.from_partitions(sources)

    def read_range(
        self,
        table: str,
        start: datetime.date,
        end: datetime.date,
        codec: LineCodec[T],
    ) -> Dataset[T]:
        """Records of every stored day in [start, end] (missing days skip)."""
        datasets = [
            self.read_day(table, day, codec)
            for day in self.days(table)
            if start <= day <= end
        ]
        combined: Dataset[T] = Dataset.empty()
        for dataset in datasets:
            combined = combined.union(dataset)
        return combined

    def tables(self) -> List[str]:
        return sorted(
            entry.name for entry in self.root.iterdir() if entry.is_dir()
        )


def _file_source(path: Path, codec: LineCodec[T]) -> Callable[[], Iterator[T]]:
    def read() -> Iterator[T]:
        with io.TextIOWrapper(gzip.open(path, "rb"), encoding="utf-8") as handle:
            for line in handle:
                if line.startswith("#") or not line.strip():
                    continue
                yield codec.decode(line)

    return read


def month_days(year: int, month: int) -> List[datetime.date]:
    """Every calendar day of a month (shared helper for analytics)."""
    day = datetime.date(year, month, 1)
    days = []
    while day.month == month:
        days.append(day)
        day += datetime.timedelta(days=1)
    return days
