"""A small Spark-like dataflow engine.

The paper processes 247 billion flow records on a Hadoop cluster running
Apache Spark (Section 2.2).  The analytics in this reproduction are written
against the same logical operations — lazy ``map``/``filter``/``flat_map``
pipelines over partitioned datasets, plus ``reduce_by_key`` /
``aggregate_by_key`` shuffles — provided by this module.  Execution is
single-process (our datasets fit one machine); the partitioned, lazy
structure is preserved so jobs stream instead of materializing
intermediates, which is what makes the two-stage methodology honest.
"""

from __future__ import annotations

import heapq
import itertools
from typing import (
    Any,
    Callable,
    Dict,
    Generic,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    TypeVar,
)

from repro.telemetry import runtime as telemetry

T = TypeVar("T")
U = TypeVar("U")
K = TypeVar("K", bound=Hashable)
V = TypeVar("V")
W = TypeVar("W")

PartitionSource = Callable[[], Iterator[T]]


class Dataset(Generic[T]):
    """A lazy, partitioned collection of records.

    Each partition may carry optional **stats** (an opaque per-partition
    summary such as a lake zone map); :meth:`prune` drops partitions
    whose stats prove they cannot contribute, without iterating them —
    the engine half of the lake's predicate pushdown.
    """

    def __init__(
        self,
        sources: List[PartitionSource],
        stats: Optional[List[Optional[Any]]] = None,
    ) -> None:
        self._sources = sources
        if stats is None:
            stats = [None] * len(sources)
        if len(stats) != len(sources):
            raise ValueError(
                f"{len(stats)} stats for {len(sources)} partitions"
            )
        self._stats = stats

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_iterable(cls, items: Iterable[T], partitions: int = 4) -> "Dataset[T]":
        """Materialize ``items`` into a fixed number of partitions."""
        if partitions <= 0:
            raise ValueError("partitions must be positive")
        buckets: List[List[T]] = [[] for _ in range(partitions)]
        for index, item in enumerate(items):
            buckets[index % partitions].append(item)
        return cls([_replay(bucket) for bucket in buckets])

    @classmethod
    def from_partitions(
        cls,
        sources: Iterable[PartitionSource],
        stats: Optional[Iterable[Optional[Any]]] = None,
    ) -> "Dataset[T]":
        """Build from partition generator callables (re-iterable)."""
        return cls(
            list(sources), list(stats) if stats is not None else None
        )

    @classmethod
    def empty(cls) -> "Dataset[T]":
        return cls([])

    # -- structure ---------------------------------------------------------

    @property
    def num_partitions(self) -> int:
        return len(self._sources)

    @property
    def partition_stats(self) -> List[Optional[Any]]:
        """Per-partition stats, parallel to the partition list."""
        return list(self._stats)

    def union(self, other: "Dataset[T]") -> "Dataset[T]":
        """Concatenate partitions of two datasets (no shuffle)."""
        return Dataset(
            self._sources + other._sources, self._stats + other._stats
        )

    def prune(self, keep: Callable[[Any], bool]) -> "Dataset[T]":
        """Drop partitions whose stats prove they cannot match.

        ``keep(stats)`` runs only for partitions that *have* stats;
        statless partitions always survive (prune on proof, never on
        absence).  Pruned partitions are never opened or iterated.
        """
        kept_sources: List[PartitionSource] = []
        kept_stats: List[Optional[Any]] = []
        pruned = 0
        for source, stat in zip(self._sources, self._stats):
            if stat is not None and not keep(stat):
                pruned += 1
                continue
            kept_sources.append(source)
            kept_stats.append(stat)
        if pruned:
            telemetry.count("dataflow_partitions_pruned", pruned)
        return Dataset(kept_sources, kept_stats)

    # -- narrow transformations (no shuffle) --------------------------------

    def map(self, fn: Callable[[T], U]) -> "Dataset[U]":
        return Dataset(
            [_mapped(source, fn) for source in self._sources]
        )

    def filter(self, predicate: Callable[[T], bool]) -> "Dataset[T]":
        return Dataset(
            [_filtered(source, predicate) for source in self._sources]
        )

    def flat_map(self, fn: Callable[[T], Iterable[U]]) -> "Dataset[U]":
        return Dataset(
            [_flat_mapped(source, fn) for source in self._sources]
        )

    def map_partitions(
        self, fn: Callable[[Iterator[T]], Iterator[U]]
    ) -> "Dataset[U]":
        return Dataset(
            [_partition_mapped(source, fn) for source in self._sources]
        )

    def key_by(self, fn: Callable[[T], K]) -> "Dataset[Tuple[K, T]]":
        return self.map(lambda item: (fn(item), item))

    def guard_partitions(
        self, handler: Callable[[int, Exception], bool]
    ) -> "Dataset[T]":
        """Contain partition-level failures instead of killing the job.

        When iterating a partition raises, ``handler(partition_index,
        exc)`` decides the outcome: ``True`` suppresses the rest of that
        partition (records already yielded stand — the lake's quarantine
        path uses this to drop a torn tail without losing the day), and
        ``False`` re-raises.  Transformations stacked *after* the guard
        run inside it; failures in earlier stages pass through untouched.
        """
        return Dataset(
            [
                _guarded(source, index, handler)
                for index, source in enumerate(self._sources)
            ]
        )

    # -- wide transformations (shuffle) --------------------------------------

    def reduce_by_key(
        self: "Dataset[Tuple[K, V]]", fn: Callable[[V, V], V]
    ) -> "Dataset[Tuple[K, V]]":
        """Combine values per key; combiners run per-partition first."""

        def build() -> Iterator[Tuple[K, V]]:
            table: Dict[K, V] = {}
            for source in self._sources:
                for key, value in source():
                    if key in table:
                        table[key] = fn(table[key], value)
                    else:
                        table[key] = value
            return iter(list(table.items()))

        return Dataset([build])

    def aggregate_by_key(
        self: "Dataset[Tuple[K, V]]",
        zero: Callable[[], U],
        seq_fn: Callable[[U, V], U],
        comb_fn: Optional[Callable[[U, U], U]] = None,
    ) -> "Dataset[Tuple[K, U]]":
        """Fold values per key into an accumulator created by ``zero``."""

        def build() -> Iterator[Tuple[K, U]]:
            table: Dict[K, U] = {}
            for source in self._sources:
                for key, value in source():
                    if key not in table:
                        table[key] = zero()
                    table[key] = seq_fn(table[key], value)
            return iter(list(table.items()))

        return Dataset([build])

    def group_by_key(
        self: "Dataset[Tuple[K, V]]",
    ) -> "Dataset[Tuple[K, List[V]]]":
        def append(acc: List[V], value: V) -> List[V]:
            acc.append(value)
            return acc

        return self.aggregate_by_key(list, append)

    def distinct(self) -> "Dataset[T]":
        def build() -> Iterator[T]:
            # First-seen order, not set order: output must not depend on
            # hash randomization (RPR006).
            seen = set()
            ordered: List[T] = []
            for source in self._sources:
                for item in source():
                    if item not in seen:
                        seen.add(item)
                        ordered.append(item)
            return iter(ordered)

        return Dataset([build])

    def join(
        self: "Dataset[Tuple[K, V]]", other: "Dataset[Tuple[K, W]]"
    ) -> "Dataset[Tuple[K, Tuple[V, W]]]":
        """Inner hash join on key."""

        def build() -> Iterator[Tuple[K, Tuple[V, W]]]:
            left: Dict[K, List[V]] = {}
            for source in self._sources:
                for key, value in source():
                    left.setdefault(key, []).append(value)
            results: List[Tuple[K, Tuple[V, W]]] = []
            for source in other._sources:
                for key, wvalue in source():
                    for lvalue in left.get(key, ()):
                        results.append((key, (lvalue, wvalue)))
            return iter(results)

        return Dataset([build])

    # -- actions -------------------------------------------------------------

    def iterate(self) -> Iterator[T]:
        """Stream every record of every partition."""
        for source in self._sources:
            telemetry.count("dataflow_partitions_scanned")
            yield from source()

    def collect(self) -> List[T]:
        return list(self.iterate())

    def count(self) -> int:
        return sum(1 for _ in self.iterate())

    def take(self, count: int) -> List[T]:
        return list(itertools.islice(self.iterate(), count))

    def reduce(self, fn: Callable[[T, T], T]) -> T:
        iterator = self.iterate()
        try:
            accumulator = next(iterator)
        except StopIteration:
            raise ValueError("reduce of empty dataset") from None
        for item in iterator:
            accumulator = fn(accumulator, item)
        return accumulator

    def sum(self: "Dataset[Any]") -> Any:
        return sum(self.iterate())

    def top(self, count: int, key: Optional[Callable[[T], Any]] = None) -> List[T]:
        """Largest ``count`` records without materializing everything."""
        if key is None:
            return heapq.nlargest(count, self.iterate())
        return heapq.nlargest(count, self.iterate(), key=key)

    def count_by_key(self: "Dataset[Tuple[K, V]]") -> Dict[K, int]:
        counts: Dict[K, int] = {}
        for key, _ in self.iterate():
            counts[key] = counts.get(key, 0) + 1
        return counts

    def collect_as_map(self: "Dataset[Tuple[K, V]]") -> Dict[K, V]:
        """Collect key-value pairs; later pairs overwrite earlier ones."""
        return dict(self.iterate())


# Partition-closure helpers: defined at module level so each transformation
# captures exactly the variables it needs (late-binding-in-loop safe).


def _replay(bucket: List[T]) -> PartitionSource:
    return lambda: iter(bucket)


def _mapped(source: PartitionSource, fn: Callable[[T], U]) -> PartitionSource:
    return lambda: (fn(item) for item in source())


def _filtered(
    source: PartitionSource, predicate: Callable[[T], bool]
) -> PartitionSource:
    return lambda: (item for item in source() if predicate(item))


def _flat_mapped(
    source: PartitionSource, fn: Callable[[T], Iterable[U]]
) -> PartitionSource:
    def generate() -> Iterator[U]:
        for item in source():
            yield from fn(item)

    return generate


def _partition_mapped(
    source: PartitionSource, fn: Callable[[Iterator[T]], Iterator[U]]
) -> PartitionSource:
    return lambda: fn(source())


def _guarded(
    source: PartitionSource,
    index: int,
    handler: Callable[[int, Exception], bool],
) -> PartitionSource:
    def generate() -> Iterator[T]:
        iterator = source()
        while True:
            try:
                item = next(iterator)
            except StopIteration:
                return
            except Exception as exc:  # noqa: BLE001 — routed to the handler
                telemetry.count("dataflow_partitions_guarded")
                if handler(index, exc):
                    return
                raise
            yield item

    return generate
