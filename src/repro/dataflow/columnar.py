"""Lake v2: column-chunk partitions with zone maps and predicate pushdown.

The paper's platform re-queries five years of daily partitions for every
new analysis (Section 2.2); at that scale row-at-a-time gzip-TSV decoding
is the dominant cost of a historical query.  Lake v2 stores each
``(table, day)`` partition as one **column chunk**: NumPy-backed columns
(ints and floats packed little-endian, strings dictionary-encoded)
individually zlib-compressed behind a JSON header, plus a **zone map**
(min/max day, distinct values of designated key columns, row count) in
the partition's sidecar manifest.  Readers holding a
:class:`ScanPredicate` can then

* **prune partitions** whose zone map proves no row can match, without
  opening the data file at all, and
* **push the predicate down** into the chunk: decode only the predicate
  columns, compute the row mask, and decompress the remaining columns
  only when rows survive (skipping them entirely when none do).

v1 gzip-TSV partitions remain readable behind the same API — a
:class:`ColumnarCodec` is a drop-in :class:`~repro.dataflow.datalake.
LineCodec` (line ``encode``/``decode``) extended with a column schema
(``to_row``/``from_row``), so the same codec object serves both formats
and a predicate filters v1 rows to the identical result, just without
the decode savings.

Everything is byte-deterministic: fixed zlib level, no timestamps, dict
codes in first-appearance order — identical records produce identical
chunks (the lake invariant manifests rely on).
"""

from __future__ import annotations

import datetime
import json
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from types import MappingProxyType
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Generic,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

import numpy as np

from repro.dataflow.integrity import (
    PartitionCheck,
    PartitionIntegrityError,
    PartitionManifest,
)

T = TypeVar("T")

#: File suffix of v2 column-chunk partitions (v1 keeps ``.tsv.gz``).
CHUNK_SUFFIX = ".colchunk"

#: Container tag recorded in v2 sidecar manifests.
CHUNK_CONTAINER = "colchunk"

#: First 8 bytes of every chunk file.
CHUNK_MAGIC = b"RPCOL2\x00\n"

#: Bumped when the chunk layout changes; readers reject newer chunks.
CHUNK_FORMAT = 2

#: Fixed compression level keeps chunk bytes deterministic.
_ZLIB_LEVEL = 6

COLUMN_KINDS = ("int", "float", "str", "date")

_KIND_DTYPE = MappingProxyType(
    {
        "int": np.dtype("<i8"),
        "float": np.dtype("<f8"),
        "str": np.dtype("<i4"),  # codes into the header dictionary
        "date": np.dtype("<i8"),  # proleptic ordinals
    }
)


@dataclass(frozen=True)
class ColumnSpec:
    """One typed column of a table's row schema."""

    name: str
    kind: str  # "int" | "float" | "str" | "date"

    def __post_init__(self) -> None:
        if self.kind not in COLUMN_KINDS:
            raise ValueError(f"unknown column kind {self.kind!r}")


class ColumnarCodec(Generic[T]):
    """A table codec usable by both lake formats.

    Carries the v1 line functions (``encode``/``decode``, making it a
    drop-in :class:`~repro.dataflow.datalake.LineCodec`) plus the column
    schema v2 needs: ``to_row`` flattens a record into a tuple of plain
    values matching ``columns`` (dates as :class:`datetime.date`, strings
    as ``str | None``), and ``from_row`` rebuilds the record.

    ``zone_columns`` names the string columns whose distinct values are
    recorded in the partition zone map; ``day_column`` names the date
    column used for the zone map's day range (``None`` when rows carry no
    date — the partition day stands in).
    """

    def __init__(
        self,
        *,
        encode: Callable[[T], str],
        decode: Callable[[str], T],
        columns: Sequence[ColumnSpec],
        to_row: Callable[[T], Tuple[Any, ...]],
        from_row: Callable[[Tuple[Any, ...]], T],
        zone_columns: Sequence[str] = (),
        day_column: Optional[str] = None,
    ) -> None:
        self.encode = encode
        self.decode = decode
        self.columns = tuple(columns)
        self.to_row = to_row
        self.from_row = from_row
        self.zone_columns = tuple(zone_columns)
        self.day_column = day_column
        self._index = {spec.name: i for i, spec in enumerate(self.columns)}
        for name in self.zone_columns:
            if self.column_kind(name) != "str":
                raise ValueError(f"zone column {name!r} must be a str column")
        if day_column is not None and self.column_kind(day_column) != "date":
            raise ValueError(f"day column {day_column!r} must be a date column")

    def column_index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(f"no column {name!r} in {self.column_names()}") from None

    def column_kind(self, name: str) -> str:
        return self.columns[self.column_index(name)].kind

    def column_names(self) -> Tuple[str, ...]:
        return tuple(spec.name for spec in self.columns)


# ----------------------------------------------------------------------
# Scan predicates and zone maps


@dataclass(frozen=True)
class ScanPredicate:
    """A conjunctive pushdown predicate: column∈values terms + a day range.

    ``equals`` maps column names to the admissible value sets; a record
    matches when every named column's value is in its set *and* (when a
    day range is set) its day column falls inside ``[day_start,
    day_end]``.  Zone maps answer the weaker question "could any row
    match?" — absent zone information never prunes.
    """

    equals: Tuple[Tuple[str, FrozenSet[Any]], ...] = ()
    day_start: Optional[datetime.date] = None
    day_end: Optional[datetime.date] = None

    @classmethod
    def of(
        cls,
        day_range: Optional[Tuple[datetime.date, datetime.date]] = None,
        **equals: Any,
    ) -> "ScanPredicate":
        """Build a predicate from keyword terms.

        A scalar value (including a string — strings are values here,
        never character collections) means ``column == value``; a
        list/tuple/set/frozenset means ``column ∈ values``.
        """
        terms = tuple(
            sorted(
                (
                    name,
                    frozenset(values)
                    if isinstance(values, (list, tuple, set, frozenset))
                    else frozenset((values,)),
                )
                for name, values in equals.items()
            )
        )
        start, end = day_range if day_range is not None else (None, None)
        return cls(equals=terms, day_start=start, day_end=end)

    def admits_day(self, day: datetime.date) -> bool:
        if self.day_start is not None and day < self.day_start:
            return False
        if self.day_end is not None and day > self.day_end:
            return False
        return True

    def matches_zone(self, zone: Optional[Mapping[str, Any]]) -> bool:
        """Whether a partition with this zone map could hold a match.

        Conservative by construction: missing zone maps and untracked
        columns return True (prune only on proof).
        """
        if zone is None:
            return True
        day_min = zone.get("day_min")
        day_max = zone.get("day_max")
        if self.day_end is not None and day_min is not None:
            if datetime.date.fromisoformat(day_min) > self.day_end:
                return False
        if self.day_start is not None and day_max is not None:
            if datetime.date.fromisoformat(day_max) < self.day_start:
                return False
        tracked = zone.get("columns", {})
        for name, values in self.equals:
            distinct = tracked.get(name)
            if distinct is not None and not values.intersection(distinct):
                return False
        return True

    def matches_record(self, codec: ColumnarCodec[T], record: T) -> bool:
        """Exact per-record evaluation (the v1 fallback path)."""
        row = codec.to_row(record)
        for name, values in self.equals:
            if row[codec.column_index(name)] not in values:
                return False
        if (
            (self.day_start is not None or self.day_end is not None)
            and codec.day_column is not None
        ):
            return self.admits_day(row[codec.column_index(codec.day_column)])
        return True


def zone_map(
    codec: ColumnarCodec[T],
    rows: Sequence[Tuple[Any, ...]],
    day: datetime.date,
) -> Dict[str, Any]:
    """The zone map recorded for one partition's sidecar manifest."""
    if codec.day_column is not None and rows:
        index = codec.column_index(codec.day_column)
        days = [row[index] for row in rows]
        day_min, day_max = min(days), max(days)
    else:
        day_min = day_max = day
    columns: Dict[str, List[str]] = {}
    for name in codec.zone_columns:
        index = codec.column_index(name)
        columns[name] = sorted(
            {row[index] for row in rows if row[index] is not None}
        )
    return {
        "day_min": day_min.isoformat(),
        "day_max": day_max.isoformat(),
        "rows": len(rows),
        "columns": columns,
    }


# ----------------------------------------------------------------------
# Chunk encoding


def _pack_column(
    spec: ColumnSpec, rows: Sequence[Tuple[Any, ...]], index: int
) -> Tuple[bytes, Optional[List[Optional[str]]]]:
    """Raw (uncompressed) little-endian bytes of one column + str dict."""
    if spec.kind == "str":
        values: List[Optional[str]] = []
        ids: Dict[Optional[str], int] = {}
        codes = np.empty(len(rows), dtype=_KIND_DTYPE["str"])
        for position, row in enumerate(rows):
            value = row[index]
            code = ids.get(value)
            if code is None:
                code = len(values)
                ids[value] = code
                values.append(value)
            codes[position] = code
        return codes.tobytes(), values
    if spec.kind == "date":
        ordinals = np.fromiter(
            (row[index].toordinal() for row in rows),
            dtype=_KIND_DTYPE["date"],
            count=len(rows),
        )
        return ordinals.tobytes(), None
    dtype = _KIND_DTYPE[spec.kind]
    column = np.fromiter(
        (row[index] for row in rows), dtype=dtype, count=len(rows)
    )
    return column.tobytes(), None


def encode_chunk(
    records: Iterable[T],
    codec: ColumnarCodec[T],
    day: datetime.date,
    schema_version: int = 1,
) -> Tuple[bytes, PartitionManifest]:
    """Serialize records into chunk bytes plus their sidecar manifest."""
    rows = [codec.to_row(record) for record in records]
    blobs: List[bytes] = []
    column_meta: List[Dict[str, Any]] = []
    offset = 0
    for index, spec in enumerate(codec.columns):
        raw, dictionary = _pack_column(spec, rows, index)
        blob = zlib.compress(raw, _ZLIB_LEVEL)
        meta: Dict[str, Any] = {
            "name": spec.name,
            "kind": spec.kind,
            "offset": offset,
            "nbytes": len(blob),
            "crc32": zlib.crc32(raw),
        }
        if dictionary is not None:
            meta["values"] = dictionary
        column_meta.append(meta)
        blobs.append(blob)
        offset += len(blob)
    header = json.dumps(
        {
            "format": CHUNK_FORMAT,
            "rows": len(rows),
            "schema_version": schema_version,
            "columns": column_meta,
        },
        sort_keys=True,
    ).encode("utf-8")
    payload = b"".join(
        [CHUNK_MAGIC, struct.pack("<I", len(header)), header, *blobs]
    )
    manifest = PartitionManifest(
        records=len(rows),
        crc32=zlib.crc32(payload),
        payload_bytes=len(payload),
        schema_version=schema_version,
        container=CHUNK_CONTAINER,
        zone=zone_map(codec, rows, day),
    )
    return payload, manifest


# ----------------------------------------------------------------------
# Chunk decoding


def _chunk_error(path: Path, kind: str, detail: str) -> PartitionIntegrityError:
    return PartitionIntegrityError(Path(path), kind, detail)


def _parse_header(path: Path, blob: bytes) -> Tuple[Dict[str, Any], int]:
    """Validated chunk header + offset of the blob section."""
    if len(blob) < len(CHUNK_MAGIC) + 4:
        raise _chunk_error(path, "torn", f"chunk shorter than header: {len(blob)} bytes")
    if blob[: len(CHUNK_MAGIC)] != CHUNK_MAGIC:
        raise _chunk_error(path, "torn", "bad chunk magic (not a v2 partition)")
    (header_len,) = struct.unpack_from("<I", blob, len(CHUNK_MAGIC))
    body = len(CHUNK_MAGIC) + 4
    if len(blob) < body + header_len:
        raise _chunk_error(
            path, "torn", f"truncated chunk header ({len(blob)} bytes on disk)"
        )
    try:
        header = json.loads(blob[body : body + header_len].decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise _chunk_error(path, "torn", f"undecodable chunk header: {exc!r}") from exc
    if not isinstance(header, dict) or header.get("format") != CHUNK_FORMAT:
        raise _chunk_error(
            path, "schema",
            f"unsupported chunk format {header.get('format')!r}"
            if isinstance(header, dict) else "malformed chunk header",
        )
    return header, body + header_len


def _decode_column(
    path: Path, blob: bytes, base: int, meta: Dict[str, Any], rows: int
) -> np.ndarray:
    """Decompress + CRC-check one column; returns its typed array."""
    kind = meta.get("kind")
    dtype = _KIND_DTYPE.get(kind)
    if dtype is None:
        raise _chunk_error(path, "schema", f"unknown column kind {kind!r}")
    start = base + int(meta["offset"])
    end = start + int(meta["nbytes"])
    if end > len(blob):
        raise _chunk_error(
            path, "torn",
            f"column {meta.get('name')!r} extends past end of file",
        )
    try:
        raw = zlib.decompress(blob[start:end])
    except zlib.error as exc:
        raise _chunk_error(
            path, "torn",
            f"column {meta.get('name')!r} fails to decompress: {exc!r}",
        ) from exc
    if zlib.crc32(raw) != int(meta["crc32"]):
        raise _chunk_error(
            path, "checksum",
            f"column {meta.get('name')!r} CRC32 mismatch (bit rot)",
        )
    if len(raw) != rows * dtype.itemsize:
        raise _chunk_error(
            path, "count",
            f"column {meta.get('name')!r} holds {len(raw) // dtype.itemsize} "
            f"values, header declares {rows} rows",
        )
    return np.frombuffer(raw, dtype=dtype)


@dataclass
class ChunkScan:
    """Result of reading one chunk: records + pushdown bookkeeping."""

    records: List[Any]
    rows_total: int = 0
    rows_matched: int = 0
    columns_decoded: int = 0
    columns_skipped: int = 0


def read_chunk(
    path: Path,
    codec: ColumnarCodec[T],
    predicate: Optional[ScanPredicate] = None,
) -> ChunkScan:
    """Decode one chunk, pushing ``predicate`` down into the columns.

    Predicate columns are decoded first and reduced to a row mask; the
    remaining columns are decompressed only when at least one row
    survives (and their values gathered only at surviving indices).
    Structural damage raises :class:`PartitionIntegrityError` with the
    same ``kind`` vocabulary v1 uses (torn/checksum/count/schema).
    """
    path = Path(path)
    blob = path.read_bytes()
    header, base = _parse_header(path, blob)
    rows = int(header.get("rows", -1))
    if rows < 0:
        raise _chunk_error(path, "schema", "chunk header lacks a row count")
    meta_by_name: Dict[str, Dict[str, Any]] = {}
    for meta in header.get("columns", []):
        meta_by_name[str(meta.get("name"))] = meta
    missing = [n for n in codec.column_names() if n not in meta_by_name]
    if missing:
        raise _chunk_error(
            path, "schema", f"chunk lacks expected column(s) {missing}"
        )
    scan = ChunkScan(records=[], rows_total=rows)

    decoded: Dict[str, np.ndarray] = {}

    def column(name: str) -> np.ndarray:
        array = decoded.get(name)
        if array is None:
            array = _decode_column(path, blob, base, meta_by_name[name], rows)
            decoded[name] = array
            scan.columns_decoded += 1
        return array

    mask: Optional[np.ndarray] = None
    if predicate is not None:
        mask = np.ones(rows, dtype=bool)
        for name, values in predicate.equals:
            kind = codec.column_kind(name)
            array = column(name)
            if kind == "str":
                dictionary = meta_by_name[name].get("values", [])
                allowed = [
                    code for code, value in enumerate(dictionary)
                    if value in values
                ]
                mask &= np.isin(array, np.array(allowed, dtype=array.dtype))
            elif kind == "date":
                ordinals = np.array(
                    [value.toordinal() for value in values], dtype=array.dtype
                )
                mask &= np.isin(array, ordinals)
            else:
                mask &= np.isin(array, np.array(sorted(values)))
        if (
            (predicate.day_start is not None or predicate.day_end is not None)
            and codec.day_column is not None
        ):
            array = column(codec.day_column)
            if predicate.day_start is not None:
                mask &= array >= predicate.day_start.toordinal()
            if predicate.day_end is not None:
                mask &= array <= predicate.day_end.toordinal()
        if not mask.any():
            scan.columns_skipped = len(codec.columns) - scan.columns_decoded
            return scan

    indices = np.nonzero(mask)[0] if mask is not None else None
    scan.rows_matched = int(indices.size) if indices is not None else rows

    cells: List[List[Any]] = []
    for spec in codec.columns:
        array = column(spec.name)
        if indices is not None:
            array = array[indices]
        if spec.kind == "str":
            dictionary = meta_by_name[spec.name].get("values", [])
            try:
                cells.append([dictionary[code] for code in array.tolist()])
            except IndexError:
                raise _chunk_error(
                    path, "checksum",
                    f"column {spec.name!r} holds codes outside its dictionary",
                ) from None
        elif spec.kind == "date":
            cells.append(
                [datetime.date.fromordinal(o) for o in array.tolist()]
            )
        else:
            cells.append(array.tolist())
    from_row = codec.from_row
    scan.records = [from_row(row) for row in zip(*cells)] if cells else []
    return scan


def write_chunk(
    path: Path,
    records: Iterable[T],
    codec: ColumnarCodec[T],
    day: datetime.date,
    schema_version: int = 1,
) -> PartitionManifest:
    """Write chunk bytes to ``path`` (caller handles atomicity/manifest)."""
    payload, manifest = encode_chunk(records, codec, day, schema_version)
    path.write_bytes(payload)
    return manifest


# ----------------------------------------------------------------------
# Verification (the v2 arm of verify_partition / fsck)


def verify_chunk(
    path: Path, manifest: Optional[PartitionManifest] = None
) -> PartitionCheck:
    """Structurally verify one chunk against its sidecar manifest.

    Walks the container exactly as a reader would — magic, header,
    per-column decompression and CRC — then compares the whole-file CRC,
    byte count, and row count the manifest recorded.  Mirrors v1
    ``verify_partition`` semantics: a missing manifest downgrades to a
    readability check.
    """
    path = Path(path)
    try:
        blob = path.read_bytes()
        header, base = _parse_header(path, blob)
        rows = int(header.get("rows", -1))
        if rows < 0:
            raise _chunk_error(path, "schema", "chunk header lacks a row count")
        for meta in header.get("columns", []):
            _decode_column(path, blob, base, meta, rows)
    except PartitionIntegrityError as exc:
        return PartitionCheck(path, ok=False, kind=exc.kind, detail=exc.detail)
    except OSError as exc:
        return PartitionCheck(
            path, ok=False, kind="torn", detail=f"unreadable chunk: {exc!r}"
        )
    if manifest is None:
        return PartitionCheck(
            path, ok=True, kind="manifest",
            detail="no sidecar manifest (unverified)",
        )
    if manifest.container != CHUNK_CONTAINER:
        return PartitionCheck(
            path, ok=False, kind="schema",
            detail=(
                f"manifest records container {manifest.container!r} "
                f"for a {CHUNK_CONTAINER!r} partition"
            ),
        )
    if rows != manifest.records:
        return PartitionCheck(
            path, ok=False, kind="count",
            detail=(
                f"{rows} rows on disk, manifest recorded {manifest.records}"
            ),
        )
    if len(blob) != manifest.payload_bytes:
        return PartitionCheck(
            path, ok=False, kind="count",
            detail=(
                f"{len(blob)} bytes on disk, manifest recorded "
                f"{manifest.payload_bytes}"
            ),
        )
    if zlib.crc32(blob) != manifest.crc32:
        return PartitionCheck(
            path, ok=False, kind="checksum",
            detail=(
                f"chunk CRC32 {zlib.crc32(blob):#010x} != "
                f"recorded {manifest.crc32:#010x}"
            ),
        )
    return PartitionCheck(path, ok=True)


def is_chunk_path(path: Path) -> bool:
    return Path(path).name.endswith(CHUNK_SUFFIX)
