"""Binary longest-prefix-match trie for IPv4 → value lookups.

The paper maps every contacted server address to its origin AS using the
monthly Routing Information Base of a Route Views vantage point (Section 6,
footnote 11).  A RIB is a set of (prefix → ASN) entries and the lookup is
longest-prefix match; this module implements the classic bitwise trie that
routers (and every BGP analysis toolchain) use for it.
"""

from __future__ import annotations

from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.nettypes.ip import IPV4_BITS, Prefix

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: List[Optional["_Node[V]"]] = [None, None]
        self.value: Optional[V] = None
        self.has_value = False


class PrefixTrie(Generic[V]):
    """Maps IPv4 prefixes to values with longest-prefix-match lookup."""

    def __init__(self) -> None:
        self._root: _Node[V] = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert or replace the value for ``prefix``."""
        node = self._root
        for depth in range(prefix.length):
            bit = (prefix.network >> (IPV4_BITS - 1 - depth)) & 1
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def lookup(self, address: int) -> Optional[V]:
        """Longest-prefix-match value for ``address``, or ``None``."""
        node = self._root
        best: Optional[V] = node.value if node.has_value else None
        for depth in range(IPV4_BITS):
            bit = (address >> (IPV4_BITS - 1 - depth)) & 1
            child = node.children[bit]
            if child is None:
                break
            node = child
            if node.has_value:
                best = node.value
        return best

    def lookup_with_prefix(self, address: int) -> Optional[Tuple[Prefix, V]]:
        """Like :meth:`lookup` but also returns the matching prefix."""
        node = self._root
        best: Optional[Tuple[Prefix, V]] = None
        if node.has_value:
            best = (Prefix(0, 0), node.value)  # type: ignore[arg-type]
        matched = 0
        for depth in range(IPV4_BITS):
            bit = (address >> (IPV4_BITS - 1 - depth)) & 1
            child = node.children[bit]
            if child is None:
                break
            node = child
            matched = depth + 1
            if node.has_value:
                network = (
                    address
                    >> (IPV4_BITS - matched)
                    << (IPV4_BITS - matched)
                )
                best = (Prefix(network, matched), node.value)  # type: ignore[arg-type]
        return best

    def items(self) -> Iterator[Tuple[Prefix, V]]:
        """Iterate (prefix, value) pairs in trie order."""
        stack: List[Tuple[_Node[V], int, int]] = [(self._root, 0, 0)]
        while stack:
            node, network, length = stack.pop()
            if node.has_value:
                yield Prefix(network, length), node.value  # type: ignore[misc]
            for bit in (1, 0):
                child = node.children[bit]
                if child is not None:
                    child_network = network | (bit << (IPV4_BITS - 1 - length))
                    stack.append((child, child_network, length + 1))
