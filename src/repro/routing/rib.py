"""RIB snapshots: monthly prefix → origin-AS tables.

The paper uses "the Routing Information Base for each month from a major
vantage point in the Route Views project to map IP addresses to ASNs"
(Section 6, footnote 11).  Real RIB dumps are not redistributable at this
scale, so the world model *emits* monthly snapshots consistent with its
server infrastructure (prefixes appear/disappear as services migrate CDNs),
and the analytics join against whichever snapshot covers each measurement
day — exactly the paper's procedure.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.nettypes.ip import Prefix
from repro.routing.asns import AutonomousSystem, by_number
from repro.routing.trie import PrefixTrie


@dataclass(frozen=True)
class RibEntry:
    """One route: a prefix originated by an AS."""

    prefix: Prefix
    origin: int  # ASN


class RibSnapshot:
    """The table of one monthly dump, with LPM lookup."""

    def __init__(self, month: Tuple[int, int], entries: Iterable[RibEntry]) -> None:
        self.month = month
        self._trie: PrefixTrie[int] = PrefixTrie()
        self._entries: List[RibEntry] = []
        for entry in entries:
            self._trie.insert(entry.prefix, entry.origin)
            self._entries.append(entry)

    def __len__(self) -> int:
        return len(self._trie)

    @property
    def entries(self) -> Tuple[RibEntry, ...]:
        return tuple(self._entries)

    def origin_of(self, address: int) -> Optional[AutonomousSystem]:
        """The origin AS announcing the covering prefix, or ``None``."""
        asn = self._trie.lookup(address)
        if asn is None:
            return None
        return by_number(asn)


class RibArchive:
    """Keyed collection of monthly snapshots with nearest-month fallback.

    Real archives occasionally miss a month; the paper's join then uses the
    most recent earlier snapshot, which :meth:`snapshot_for` reproduces.
    """

    def __init__(self) -> None:
        self._snapshots: Dict[Tuple[int, int], RibSnapshot] = {}

    def add(self, snapshot: RibSnapshot) -> None:
        self._snapshots[snapshot.month] = snapshot

    def months(self) -> List[Tuple[int, int]]:
        return sorted(self._snapshots)

    def snapshot_for(self, day: datetime.date) -> Optional[RibSnapshot]:
        """The snapshot of ``day``'s month, or the latest one before it."""
        wanted = (day.year, day.month)
        exact = self._snapshots.get(wanted)
        if exact is not None:
            return exact
        earlier = [month for month in self._snapshots if month <= wanted]
        if not earlier:
            return None
        return self._snapshots[max(earlier)]

    def origin_of(self, address: int, day: datetime.date) -> AutonomousSystem:
        """Join one address against the archive; unknown → the OTHER AS."""
        snapshot = self.snapshot_for(day)
        if snapshot is None:
            return by_number(0)
        origin = snapshot.origin_of(address)
        return origin if origin is not None else by_number(0)

    def __len__(self) -> int:
        return len(self._snapshots)
