"""Autonomous-system catalog used by the infrastructure analysis.

Figure 11d-f of the paper break server addresses down over the ASNs that
matter for the studied services: the big players' own networks, the shared
CDNs they migrated away from, and the ISP itself (hosting the in-PoP
caches).  Numbers are the real-world ASNs; names match the figure labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping, Optional


@dataclass(frozen=True)
class AutonomousSystem:
    """One origin AS."""

    number: int
    name: str


FACEBOOK = AutonomousSystem(32934, "FACEBOOK")
GOOGLE = AutonomousSystem(15169, "GOOGLE")
YOUTUBE = AutonomousSystem(36040, "YOUTUBE")
AKAMAI = AutonomousSystem(20940, "AKAMAI")
TELIANET = AutonomousSystem(1299, "TELIANET")
GTT = AutonomousSystem(3257, "GTT")
LEVEL3 = AutonomousSystem(3356, "LEVEL3")
AMAZON = AutonomousSystem(16509, "AMAZON")
NETFLIX = AutonomousSystem(2906, "NETFLIX")
ISP = AutonomousSystem(64496, "ISP")  # the monitored operator (anonymized)
OTHER = AutonomousSystem(0, "OTHER")

_ALL = (
    FACEBOOK,
    GOOGLE,
    YOUTUBE,
    AKAMAI,
    TELIANET,
    GTT,
    LEVEL3,
    AMAZON,
    NETFLIX,
    ISP,
    OTHER,
)

# Frozen: these catalogs are imported by fork-pool workers (RPR004).
_BY_NUMBER: Mapping[int, AutonomousSystem] = MappingProxyType(
    {system.number: system for system in _ALL}
)
_BY_NAME: Mapping[str, AutonomousSystem] = MappingProxyType(
    {system.name: system for system in _ALL}
)


def by_number(number: int) -> AutonomousSystem:
    """The catalog entry for ``number``, or an anonymous entry."""
    known = _BY_NUMBER.get(number)
    if known is not None:
        return known
    return AutonomousSystem(number, f"AS{number}")


def by_name(name: str) -> Optional[AutonomousSystem]:
    """Look up a catalog entry by figure label."""
    return _BY_NAME.get(name.upper())


def all_known() -> tuple:
    """Every catalog entry, in declaration order."""
    return _ALL
