"""Google-QUIC (gQUIC) public-header and CHLO codec.

Between 2014 and 2017 Google's QUIC used a custom public header on UDP/443
and a tag-value handshake (CHLO) carrying the server name in the ``SNI``
tag.  The paper's probes were updated to parse "fields from QUIC public
headers" (Section 2.1) to classify QUIC traffic (events B and D of Fig. 8).

Implemented here:

* the public header: flags, 64-bit connection id, ``Q0xx`` version tag,
  packet number — enough to recognize QUIC and read its version;
* the CHLO tag-value message with the SNI tag, the gQUIC counterpart of the
  TLS ClientHello's server name.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

FLAG_VERSION = 0x01
FLAG_RESET = 0x02
FLAG_CID_8 = 0x08

TAG_CHLO = b"CHLO"
TAG_SNI = b"SNI\x00"
TAG_VER = b"VER\x00"

DEFAULT_VERSION = "Q039"


class QuicError(ValueError):
    """Raised for malformed QUIC packets."""


@dataclass(frozen=True)
class QuicPublicHeader:
    """The decoded public header of a gQUIC packet."""

    connection_id: int
    version: Optional[str] = None
    packet_number: int = 1
    is_reset: bool = False

    def encode(self) -> bytes:
        """Serialize the public header."""
        flags = FLAG_CID_8
        if self.version is not None:
            flags |= FLAG_VERSION
        if self.is_reset:
            flags |= FLAG_RESET
        out = bytearray([flags])
        out += struct.pack("!Q", self.connection_id)
        if self.version is not None:
            encoded = self.version.encode("ascii")
            if len(encoded) != 4:
                raise QuicError(f"version tag must be 4 bytes: {self.version!r}")
            out += encoded
        out.append(self.packet_number & 0xFF)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> Tuple["QuicPublicHeader", bytes]:
        """Parse the public header; returns (header, remaining payload)."""
        if not data:
            raise QuicError("empty packet")
        flags = data[0]
        offset = 1
        if not flags & FLAG_CID_8:
            raise QuicError("connection id omitted (unsupported by probe)")
        if offset + 8 > len(data):
            raise QuicError("truncated connection id")
        (connection_id,) = struct.unpack_from("!Q", data, offset)
        offset += 8
        version: Optional[str] = None
        if flags & FLAG_VERSION:
            if offset + 4 > len(data):
                raise QuicError("truncated version")
            version = data[offset : offset + 4].decode("ascii", "replace")
            if not version.startswith("Q"):
                raise QuicError(f"unrecognized version tag {version!r}")
            offset += 4
        if offset >= len(data):
            raise QuicError("truncated packet number")
        packet_number = data[offset]
        offset += 1
        header = cls(
            connection_id=connection_id,
            version=version,
            packet_number=packet_number,
            is_reset=bool(flags & FLAG_RESET),
        )
        return header, data[offset:]


@dataclass(frozen=True)
class ChloMessage:
    """A gQUIC CHLO handshake message (tag-value format)."""

    tags: Dict[bytes, bytes] = field(default_factory=dict)

    @classmethod
    def for_server(cls, sni: str, version: str = DEFAULT_VERSION) -> "ChloMessage":
        """Build the minimal CHLO a client sends for ``sni``."""
        return cls(
            tags={
                TAG_SNI: sni.encode("ascii"),
                TAG_VER: version.encode("ascii"),
            }
        )

    @property
    def sni(self) -> Optional[str]:
        value = self.tags.get(TAG_SNI)
        if value is None:
            return None
        return value.decode("ascii", "replace").lower()

    def encode(self) -> bytes:
        """Serialize: 'CHLO', u16 tag count, u16 pad, (tag, end-offset)*, values."""
        items = sorted(self.tags.items())
        out = bytearray(TAG_CHLO)
        out += struct.pack("<HH", len(items), 0)
        end = 0
        for tag, value in items:
            if len(tag) != 4:
                raise QuicError(f"tag must be 4 bytes: {tag!r}")
            end += len(value)
            out += tag + struct.pack("<I", end)
        for _, value in items:
            out += value
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "ChloMessage":
        """Parse a CHLO message."""
        if len(data) < 8 or data[:4] != TAG_CHLO:
            raise QuicError("not a CHLO message")
        count, _ = struct.unpack_from("<HH", data, 4)
        index_end = 8 + count * 8
        if index_end > len(data):
            raise QuicError("truncated tag index")
        tags: Dict[bytes, bytes] = {}
        start = 0
        for position in range(count):
            entry = 8 + position * 8
            tag = data[entry : entry + 4]
            (end,) = struct.unpack_from("<I", data, entry + 4)
            if end < start or index_end + end > len(data):
                raise QuicError("bad tag offsets")
            tags[tag] = data[index_end + start : index_end + end]
            start = end
        return cls(tags=tags)


def build_client_initial(
    connection_id: int, sni: str, version: str = DEFAULT_VERSION
) -> bytes:
    """Build the first client packet of a gQUIC connection (header + CHLO)."""
    header = QuicPublicHeader(connection_id=connection_id, version=version)
    return header.encode() + ChloMessage.for_server(sni, version).encode()


def sniff_quic(payload: bytes) -> Optional[Tuple[str, Optional[str]]]:
    """Probe-side QUIC detector for UDP/443 payloads.

    Returns ``(version, sni-or-None)`` when the payload parses as a gQUIC
    client packet with a version tag, else ``None``.
    """
    try:
        header, rest = QuicPublicHeader.decode(payload)
    except QuicError:
        return None
    if header.version is None or header.is_reset:
        return None
    sni: Optional[str] = None
    if rest[:4] == TAG_CHLO:
        try:
            sni = ChloMessage.decode(rest).sni
        except QuicError:
            sni = None
    return header.version, sni
