"""TLS ClientHello codec — the probe's source of SNI and ALPN.

The paper's probe extracts two fields from TLS handshakes (Section 2.1):

* the Server Name Indication (SNI, RFC 6066) from the ClientHello, the main
  source of server names for HTTPS traffic, and
* the Application-Layer Protocol Negotiation list (ALPN, RFC 7301), which
  identifies HTTP/2 and SPDY flows.

This module builds and parses the TLS record + handshake framing far enough
to extract both, which is exactly the probe's DPI depth — it never decrypts.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional

CONTENT_TYPE_HANDSHAKE = 22
HANDSHAKE_CLIENT_HELLO = 1

VERSION_TLS10 = 0x0301
VERSION_TLS12 = 0x0303

EXT_SERVER_NAME = 0
EXT_ALPN = 16
EXT_SUPPORTED_VERSIONS = 43

ALPN_HTTP11 = "http/1.1"
ALPN_HTTP2 = "h2"
ALPN_SPDY3 = "spdy/3.1"

_DEFAULT_CIPHERS = (0x1301, 0x1302, 0xC02F, 0xC030, 0x009C, 0x002F)


class TlsError(ValueError):
    """Raised for malformed TLS records/handshakes."""


@dataclass(frozen=True)
class ClientHello:
    """The fields of a ClientHello the probe cares about."""

    sni: Optional[str] = None
    alpn: List[str] = field(default_factory=list)
    version: int = VERSION_TLS12
    random: bytes = b"\x00" * 32
    session_id: bytes = b""
    cipher_suites: tuple = _DEFAULT_CIPHERS

    def __post_init__(self) -> None:
        if len(self.random) != 32:
            raise TlsError("ClientHello random must be 32 bytes")
        if len(self.session_id) > 32:
            raise TlsError("session id longer than 32 bytes")

    def encode_body(self) -> bytes:
        """Serialize the ClientHello handshake body (without framing)."""
        out = bytearray()
        out += struct.pack("!H", self.version)
        out += self.random
        out.append(len(self.session_id))
        out += self.session_id
        ciphers = b"".join(struct.pack("!H", suite) for suite in self.cipher_suites)
        out += struct.pack("!H", len(ciphers)) + ciphers
        out += b"\x01\x00"  # one compression method: null
        extensions = bytearray()
        if self.sni is not None:
            name = self.sni.encode("ascii")
            entry = b"\x00" + struct.pack("!H", len(name)) + name
            body = struct.pack("!H", len(entry)) + entry
            extensions += struct.pack("!HH", EXT_SERVER_NAME, len(body)) + body
        if self.alpn:
            protocols = bytearray()
            for protocol in self.alpn:
                encoded = protocol.encode("ascii")
                if not 0 < len(encoded) < 256:
                    raise TlsError(f"bad ALPN protocol {protocol!r}")
                protocols.append(len(encoded))
                protocols += encoded
            body = struct.pack("!H", len(protocols)) + bytes(protocols)
            extensions += struct.pack("!HH", EXT_ALPN, len(body)) + body
        out += struct.pack("!H", len(extensions)) + extensions
        return bytes(out)

    def encode_record(self) -> bytes:
        """Serialize as a full TLS record carrying the handshake message."""
        body = self.encode_body()
        handshake = (
            struct.pack("!B", HANDSHAKE_CLIENT_HELLO)
            + len(body).to_bytes(3, "big")
            + body
        )
        return (
            struct.pack("!BH", CONTENT_TYPE_HANDSHAKE, VERSION_TLS10)
            + struct.pack("!H", len(handshake))
            + handshake
        )

    @classmethod
    def decode_record(cls, data: bytes) -> "ClientHello":
        """Parse a TLS record and extract the ClientHello inside it."""
        if len(data) < 5:
            raise TlsError("record too short")
        content_type, _version, length = struct.unpack_from("!BHH", data, 0)
        if content_type != CONTENT_TYPE_HANDSHAKE:
            raise TlsError(f"not a handshake record (type {content_type})")
        if 5 + length > len(data):
            raise TlsError("record truncated")
        return cls.decode_handshake(data[5 : 5 + length])

    @classmethod
    def decode_handshake(cls, data: bytes) -> "ClientHello":
        """Parse a handshake message that must be a ClientHello."""
        if len(data) < 4:
            raise TlsError("handshake too short")
        msg_type = data[0]
        if msg_type != HANDSHAKE_CLIENT_HELLO:
            raise TlsError(f"not a ClientHello (type {msg_type})")
        body_len = int.from_bytes(data[1:4], "big")
        if 4 + body_len > len(data):
            raise TlsError("handshake truncated")
        return cls.decode_body(data[4 : 4 + body_len])

    @classmethod
    def decode_body(cls, data: bytes) -> "ClientHello":
        """Parse the ClientHello body."""
        reader = _Reader(data)
        version = reader.u16()
        random = reader.take(32)
        session_id = reader.take(reader.u8())
        cipher_bytes = reader.take(reader.u16())
        if len(cipher_bytes) % 2:
            raise TlsError("odd cipher_suites length")
        ciphers = tuple(
            struct.unpack_from("!H", cipher_bytes, index)[0]
            for index in range(0, len(cipher_bytes), 2)
        )
        reader.take(reader.u8())  # compression methods
        sni: Optional[str] = None
        alpn: List[str] = []
        if reader.remaining():
            extensions = _Reader(reader.take(reader.u16()))
            while extensions.remaining():
                ext_type = extensions.u16()
                ext_body = _Reader(extensions.take(extensions.u16()))
                if ext_type == EXT_SERVER_NAME:
                    sni = _parse_sni(ext_body)
                elif ext_type == EXT_ALPN:
                    alpn = _parse_alpn(ext_body)
        return cls(
            sni=sni,
            alpn=alpn,
            version=version,
            random=random,
            session_id=session_id,
            cipher_suites=ciphers,
        )


def _parse_sni(reader: "_Reader") -> Optional[str]:
    server_names = _Reader(reader.take(reader.u16()))
    while server_names.remaining():
        name_type = server_names.u8()
        name = server_names.take(server_names.u16())
        if name_type == 0:  # host_name
            return name.decode("ascii", "replace").lower()
    return None


def _parse_alpn(reader: "_Reader") -> List[str]:
    protocols: List[str] = []
    protocol_list = _Reader(reader.take(reader.u16()))
    while protocol_list.remaining():
        protocols.append(
            protocol_list.take(protocol_list.u8()).decode("ascii", "replace")
        )
    return protocols


class _Reader:
    """Bounds-checked big-endian reader over a bytes buffer."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._offset = 0

    def remaining(self) -> int:
        return len(self._data) - self._offset

    def take(self, count: int) -> bytes:
        if count < 0 or self._offset + count > len(self._data):
            raise TlsError("truncated field")
        chunk = self._data[self._offset : self._offset + count]
        self._offset += count
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        chunk = self.take(2)
        return (chunk[0] << 8) | chunk[1]
