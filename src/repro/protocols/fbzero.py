"""Facebook "Zero" protocol recognizer.

In November 2016 Facebook suddenly deployed "FB-Zero", a custom 0-RTT
modification of TLS used by its mobile apps (event F in Fig. 8 of the
paper); overnight ~8 % of web traffic moved to it, and probes had to learn
to recognize an undocumented protocol.

The real wire format was never published (the paper cites only Facebook's
later announcement), so this module defines the *synthetic* equivalent our
world model emits: a TLS-style record whose handshake message type is the
experimental value 0xFB and whose body carries the server name in an
SNI-like field.  What matters for the reproduction is the operational
shape: a recognizer that (a) did not exist before the November-2016 probe
upgrade and (b) afterwards claims these flows away from the generic TLS
label.  See DESIGN.md §2 for the substitution note.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from repro.protocols.tls import CONTENT_TYPE_HANDSHAKE, VERSION_TLS12, TlsError

HANDSHAKE_ZERO_HELLO = 0xFB


class FbZeroError(ValueError):
    """Raised for malformed Zero-protocol records."""


@dataclass(frozen=True)
class ZeroHello:
    """The first client message of a Zero-protocol connection."""

    sni: str

    def encode_record(self) -> bytes:
        """Serialize as a TLS-framed record with the 0xFB handshake type."""
        name = self.sni.encode("ascii")
        body = struct.pack("!H", len(name)) + name
        handshake = (
            struct.pack("!B", HANDSHAKE_ZERO_HELLO)
            + len(body).to_bytes(3, "big")
            + body
        )
        return (
            struct.pack("!BHH", CONTENT_TYPE_HANDSHAKE, VERSION_TLS12, len(handshake))
            + handshake
        )

    @classmethod
    def decode_record(cls, data: bytes) -> "ZeroHello":
        """Parse a Zero-protocol first record."""
        if len(data) < 5:
            raise FbZeroError("record too short")
        content_type, _, length = struct.unpack_from("!BHH", data, 0)
        if content_type != CONTENT_TYPE_HANDSHAKE:
            raise FbZeroError("not a handshake record")
        handshake = data[5 : 5 + length]
        if len(handshake) < 4 or handshake[0] != HANDSHAKE_ZERO_HELLO:
            raise FbZeroError("not a ZeroHello")
        body = handshake[4 : 4 + int.from_bytes(handshake[1:4], "big")]
        if len(body) < 2:
            raise FbZeroError("truncated ZeroHello body")
        (name_len,) = struct.unpack_from("!H", body, 0)
        if 2 + name_len > len(body):
            raise FbZeroError("truncated server name")
        return cls(sni=body[2 : 2 + name_len].decode("ascii", "replace").lower())


def sniff_zero(payload: bytes) -> Optional[str]:
    """Return the server name if ``payload`` opens a Zero connection."""
    try:
        return ZeroHello.decode_record(payload).sni
    except (FbZeroError, TlsError):
        return None
