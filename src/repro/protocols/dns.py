"""DNS wire-format codec (RFC 1035 subset used by the probe).

DN-Hunter (Section 2.1 of the paper) needs the probe to parse *every* DNS
response on the monitored links, associating resolved A records with the
client that asked, so later flows to those addresses can be labelled with
the queried name.  This module implements the message codec: header, the
question section, and answer records of the types that matter for traffic
classification (A, CNAME; other types are carried opaquely).

Name compression (RFC 1035 §4.1.4) is fully supported on decode and applied
to repeated suffixes on encode.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.nettypes.ip import int_to_ip, ip_to_int

TYPE_A = 1
TYPE_NS = 2
TYPE_CNAME = 5
TYPE_AAAA = 28

CLASS_IN = 1

FLAG_QR = 0x8000
FLAG_AA = 0x0400
FLAG_TC = 0x0200
FLAG_RD = 0x0100
FLAG_RA = 0x0080

RCODE_NOERROR = 0
RCODE_NXDOMAIN = 3

MAX_NAME_LEN = 255
MAX_LABEL_LEN = 63
_POINTER_MASK = 0xC0


class DnsError(ValueError):
    """Raised for malformed DNS messages."""


def _check_name(name: str) -> str:
    name = name.rstrip(".").lower()
    if len(name) > MAX_NAME_LEN:
        raise DnsError(f"name too long: {name!r}")
    for label in name.split(".") if name else []:
        if not label or len(label) > MAX_LABEL_LEN:
            raise DnsError(f"bad label in {name!r}")
    return name


@dataclass(frozen=True)
class Question:
    """One entry of the question section."""

    name: str
    qtype: int = TYPE_A
    qclass: int = CLASS_IN


@dataclass(frozen=True)
class ResourceRecord:
    """One resource record; ``rdata`` holds the raw bytes, with typed views."""

    name: str
    rtype: int
    ttl: int
    rdata: bytes
    rclass: int = CLASS_IN

    @classmethod
    def a(cls, name: str, address: str, ttl: int = 300) -> "ResourceRecord":
        """Build an A record from a dotted-quad address."""
        return cls(name, TYPE_A, ttl, ip_to_int(address).to_bytes(4, "big"))

    @classmethod
    def a_int(cls, name: str, address: int, ttl: int = 300) -> "ResourceRecord":
        """Build an A record from an integer address."""
        return cls(name, TYPE_A, ttl, address.to_bytes(4, "big"))

    @classmethod
    def cname(cls, name: str, target: str, ttl: int = 300) -> "ResourceRecord":
        """Build a CNAME record; target is stored uncompressed in rdata."""
        return cls(name, TYPE_CNAME, ttl, _encode_name_simple(target))

    def address(self) -> int:
        """Integer address of an A record."""
        if self.rtype != TYPE_A or len(self.rdata) != 4:
            raise DnsError(f"not an A record: type={self.rtype}")
        return int.from_bytes(self.rdata, "big")

    def address_text(self) -> str:
        """Dotted-quad address of an A record."""
        return int_to_ip(self.address())

    def cname_target(self) -> str:
        """Target name of a CNAME record."""
        if self.rtype != TYPE_CNAME:
            raise DnsError(f"not a CNAME record: type={self.rtype}")
        name, _ = _decode_name(self.rdata, 0)
        return name


@dataclass
class DnsMessage:
    """A DNS query or response message."""

    txid: int = 0
    flags: int = FLAG_RD
    questions: List[Question] = field(default_factory=list)
    answers: List[ResourceRecord] = field(default_factory=list)
    authorities: List[ResourceRecord] = field(default_factory=list)
    additionals: List[ResourceRecord] = field(default_factory=list)

    @property
    def is_response(self) -> bool:
        return bool(self.flags & FLAG_QR)

    @property
    def rcode(self) -> int:
        return self.flags & 0x000F

    @classmethod
    def query(cls, name: str, qtype: int = TYPE_A, txid: int = 0) -> "DnsMessage":
        """Build a standard recursive query for ``name``."""
        return cls(txid=txid, flags=FLAG_RD, questions=[Question(_check_name(name), qtype)])

    @classmethod
    def response(
        cls,
        query: "DnsMessage",
        answers: List[ResourceRecord],
        rcode: int = RCODE_NOERROR,
    ) -> "DnsMessage":
        """Build the response matching ``query``."""
        flags = FLAG_QR | FLAG_RD | FLAG_RA | (rcode & 0x0F)
        return cls(
            txid=query.txid,
            flags=flags,
            questions=list(query.questions),
            answers=answers,
        )

    def resolved_addresses(self) -> List[Tuple[str, int]]:
        """(queried-or-aliased name, address) pairs from the answer section.

        Follows CNAME chains: an address returned via a CNAME is attributed
        to the original query name, which is what DN-Hunter stores.
        """
        if not self.questions:
            return []
        origin = self.questions[0].name
        alias_of: Dict[str, str] = {}
        for record in self.answers:
            if record.rtype == TYPE_CNAME:
                alias_of[record.cname_target()] = record.name
        results: List[Tuple[str, int]] = []
        for record in self.answers:
            if record.rtype != TYPE_A:
                continue
            name = record.name
            seen = {name}
            while name in alias_of and alias_of[name] not in seen:
                name = alias_of[name]
                seen.add(name)
            results.append((origin if name == origin else name, record.address()))
        return results

    def encode(self) -> bytes:
        """Serialize to wire format with suffix compression."""
        out = bytearray()
        out += struct.pack(
            "!HHHHHH",
            self.txid,
            self.flags,
            len(self.questions),
            len(self.answers),
            len(self.authorities),
            len(self.additionals),
        )
        offsets: Dict[str, int] = {}
        for question in self.questions:
            _encode_name(out, question.name, offsets)
            out += struct.pack("!HH", question.qtype, question.qclass)
        for section in (self.answers, self.authorities, self.additionals):
            for record in section:
                _encode_name(out, record.name, offsets)
                out += struct.pack(
                    "!HHIH", record.rtype, record.rclass, record.ttl, len(record.rdata)
                )
                out += record.rdata
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "DnsMessage":
        """Parse from wire format, resolving compression pointers."""
        if len(data) < 12:
            raise DnsError(f"message too short: {len(data)} bytes")
        txid, flags, qdcount, ancount, nscount, arcount = struct.unpack_from(
            "!HHHHHH", data, 0
        )
        offset = 12
        questions: List[Question] = []
        for _ in range(qdcount):
            name, offset = _decode_name(data, offset)
            if offset + 4 > len(data):
                raise DnsError("truncated question")
            qtype, qclass = struct.unpack_from("!HH", data, offset)
            offset += 4
            questions.append(Question(name, qtype, qclass))
        sections: List[List[ResourceRecord]] = []
        for count in (ancount, nscount, arcount):
            records: List[ResourceRecord] = []
            for _ in range(count):
                record, offset = _decode_record(data, offset)
                records.append(record)
            sections.append(records)
        return cls(
            txid=txid,
            flags=flags,
            questions=questions,
            answers=sections[0],
            authorities=sections[1],
            additionals=sections[2],
        )


def _encode_name_simple(name: str) -> bytes:
    """Encode a name without compression (for rdata contents)."""
    out = bytearray()
    name = _check_name(name)
    if name:
        for label in name.split("."):
            encoded = label.encode("ascii")
            out.append(len(encoded))
            out += encoded
    out.append(0)
    return bytes(out)


def _encode_name(out: bytearray, name: str, offsets: Dict[str, int]) -> None:
    """Append ``name`` with suffix compression against ``offsets``."""
    name = _check_name(name)
    labels = name.split(".") if name else []
    for index in range(len(labels)):
        suffix = ".".join(labels[index:])
        pointer = offsets.get(suffix)
        if pointer is not None and pointer < 0x4000:
            out += struct.pack("!H", 0xC000 | pointer)
            return
        if len(out) < 0x4000:
            offsets[suffix] = len(out)
        encoded = labels[index].encode("ascii")
        out.append(len(encoded))
        out += encoded
    out.append(0)


def _decode_name(data: bytes, offset: int) -> Tuple[str, int]:
    """Decode a possibly compressed name; returns (name, next offset)."""
    labels: List[str] = []
    jumps = 0
    cursor = offset
    end: Optional[int] = None
    while True:
        if cursor >= len(data):
            raise DnsError("name runs past end of message")
        length = data[cursor]
        if length & _POINTER_MASK == _POINTER_MASK:
            if cursor + 1 >= len(data):
                raise DnsError("truncated compression pointer")
            target = ((length & 0x3F) << 8) | data[cursor + 1]
            if end is None:
                end = cursor + 2
            if target >= cursor:
                raise DnsError("forward compression pointer")
            cursor = target
            jumps += 1
            if jumps > 32:
                raise DnsError("compression pointer loop")
            continue
        if length & _POINTER_MASK:
            raise DnsError(f"reserved label type {length:#x}")
        cursor += 1
        if length == 0:
            break
        if cursor + length > len(data):
            raise DnsError("label runs past end of message")
        labels.append(data[cursor : cursor + length].decode("ascii", "replace").lower())
        cursor += length
        if sum(len(label) + 1 for label in labels) > MAX_NAME_LEN:
            raise DnsError("decoded name too long")
    return ".".join(labels), end if end is not None else cursor


def _decode_record(data: bytes, offset: int) -> Tuple[ResourceRecord, int]:
    name, offset = _decode_name(data, offset)
    if offset + 10 > len(data):
        raise DnsError("truncated resource record")
    rtype, rclass, ttl, rdlength = struct.unpack_from("!HHIH", data, offset)
    offset += 10
    if offset + rdlength > len(data):
        raise DnsError("rdata runs past end of message")
    rdata = data[offset : offset + rdlength]
    if rtype == TYPE_CNAME:
        # Re-encode the (possibly compressed) target uncompressed so the
        # record stays self-contained outside the message.
        target, _ = _decode_name(data, offset)
        rdata = _encode_name_simple(target)
    offset += rdlength
    return ResourceRecord(name, rtype, ttl, rdata, rclass), offset
