"""HTTP/1.x request-line and header codec — the probe's Host: source.

For clear-text web traffic the probe exports the domain in the ``Host:``
header of the first request on the flow (Section 2.1).  The probe only
needs the request head; bodies are never inspected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

_METHODS = frozenset(
    {"GET", "POST", "HEAD", "PUT", "DELETE", "OPTIONS", "PATCH", "CONNECT", "TRACE"}
)
_CRLF = b"\r\n"
_HEAD_END = b"\r\n\r\n"


class HttpError(ValueError):
    """Raised for malformed HTTP request heads."""


@dataclass(frozen=True)
class HttpRequest:
    """A parsed HTTP/1.x request head."""

    method: str
    target: str
    version: str = "HTTP/1.1"
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def host(self) -> Optional[str]:
        """The ``Host:`` value, lowercased and without port, or ``None``."""
        host = self.headers.get("host")
        if host is None:
            return None
        host = host.strip().lower()
        if ":" in host:
            host = host.split(":", 1)[0]
        return host or None

    def encode(self) -> bytes:
        """Serialize the request head."""
        lines = [f"{self.method} {self.target} {self.version}"]
        for name, value in self.headers.items():
            lines.append(f"{_canonical(name)}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    @classmethod
    def get(cls, host: str, path: str = "/", **headers: str) -> "HttpRequest":
        """Build a GET request for ``host``."""
        merged = {"host": host, "user-agent": "repro/1.0"}
        merged.update({name.lower(): value for name, value in headers.items()})
        return cls(method="GET", target=path, headers=merged)

    @classmethod
    def parse(cls, data: bytes) -> "HttpRequest":
        """Parse a request head from the start of ``data``.

        Raises :class:`HttpError` if the head is incomplete or malformed —
        the probe then simply leaves the flow unnamed (DN-Hunter may still
        name it).
        """
        head, _, _ = data.partition(_HEAD_END)
        if _HEAD_END not in data:
            raise HttpError("request head incomplete")
        lines = head.split(_CRLF)
        request_line = lines[0].decode("latin-1", "replace")
        parts = request_line.split(" ")
        if len(parts) != 3:
            raise HttpError(f"bad request line: {request_line!r}")
        method, target, version = parts
        if method not in _METHODS:
            raise HttpError(f"unknown method {method!r}")
        if not version.startswith("HTTP/"):
            raise HttpError(f"bad version {version!r}")
        headers: Dict[str, str] = {}
        for raw in lines[1:]:
            if not raw:
                continue
            line = raw.decode("latin-1", "replace")
            if ":" not in line:
                raise HttpError(f"bad header line: {line!r}")
            name, _, value = line.partition(":")
            if name != name.strip() or not name:
                raise HttpError(f"bad header name: {name!r}")
            headers[name.lower()] = value.strip()
        return cls(method=method, target=target, version=version, headers=headers)


def sniff_host(payload: bytes) -> Optional[str]:
    """Best-effort Host extraction used on the flow's first data segment.

    Returns ``None`` instead of raising: the probe must not fail on binary
    payloads that merely start on port 80.
    """
    try:
        return HttpRequest.parse(payload).host
    except HttpError:
        return None


def looks_like_http_request(payload: bytes) -> bool:
    """Cheap pre-filter: does the payload start with a known method?"""
    prefix = payload[:8]
    try:
        text = prefix.decode("ascii")
    except UnicodeDecodeError:
        return False
    return any(text.startswith(method + " ") for method in _METHODS)


def _canonical(name: str) -> str:
    return "-".join(part.capitalize() for part in name.split("-"))
