"""repro — a reproduction of "Five Years at the Edge: Watching Internet
from the ISP Network" (Trevisan et al., CoNEXT 2018).

The package rebuilds the paper's measurement pipeline end to end:

* :mod:`repro.tstat` — the Tstat-equivalent passive probe (flow metering,
  DPI, DN-Hunter, RTT estimation, flow logs);
* :mod:`repro.packets` / :mod:`repro.protocols` — wire-format codecs the
  probe parses (Ethernet/IPv4/TCP/UDP, DNS, TLS, HTTP, gQUIC, FB-Zero);
* :mod:`repro.services` / :mod:`repro.routing` — domain→service rules
  (Table 1) and monthly RIB → ASN joins;
* :mod:`repro.dataflow` — the Spark-like two-stage analytics substrate;
* :mod:`repro.synthesis` — the world model substituting the proprietary
  five-year traces (see DESIGN.md §2);
* :mod:`repro.analytics` / :mod:`repro.figures` — stage-1/stage-2 jobs and
  one module per paper figure;
* :mod:`repro.core` — :class:`~repro.core.study.LongitudinalStudy`, the
  end-to-end orchestration.

Quickstart::

    from repro import LongitudinalStudy, small_study
    from repro.figures import fig03_volume_trend

    study = LongitudinalStudy(small_study())
    data = study.run()
    print("\n".join(fig03_volume_trend.report(fig03_volume_trend.compute(data))))
"""

from repro.core.config import COMPARISON_MONTHS, StudyConfig, small_study
from repro.core.study import LongitudinalStudy, StudyData
from repro.synthesis.world import World, WorldConfig

__version__ = "1.0.0"

__all__ = [
    "COMPARISON_MONTHS",
    "LongitudinalStudy",
    "StudyConfig",
    "StudyData",
    "World",
    "WorldConfig",
    "small_study",
    "__version__",
]
