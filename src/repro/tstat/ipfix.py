"""IPFIX (RFC 7011) export of flow records.

Tstat-style probes live in the ecosystem the paper cites (Hofstede et al.,
"Flow Monitoring Explained: from packet capture to data analysis with
NetFlow and IPFIX"): collectors speak IPFIX.  This module encodes flow
records as real IPFIX messages — version 10 header, a template set
(set id 2) using IANA information elements where they exist and
enterprise-specific elements (PEN 0xDADA) for the probe's extras
(server name, name source, protocol label, RTT summary) — and decodes
them back, template-driven.

Strings use RFC 7011 §7 variable-length encoding.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.dataflow.integrity import RecordDecodeError
from repro.tstat.flow import (
    FlowRecord,
    NameSource,
    RttSummary,
    Transport,
    WebProtocol,
)

IPFIX_VERSION = 10
TEMPLATE_SET_ID = 2
DATA_SET_ID = 256  # our single template
ENTERPRISE_PEN = 0xDADA  # reproduction-private enterprise number

# (element id, enterprise?, fixed length or VARLEN)
VARLEN = 0xFFFF

#: IANA information elements.
IE_OCTET_DELTA = 1
IE_PACKET_DELTA = 2
IE_PROTOCOL_ID = 4
IE_SRC_PORT = 7
IE_SRC_ADDR = 8
IE_DST_PORT = 11
IE_DST_ADDR = 12
IE_FLOW_END_MS = 153
IE_FLOW_START_MS = 152

#: Enterprise-specific elements (PEN 0xDADA).
EE_CLIENT_ID = 1
EE_BYTES_UP = 2
EE_BYTES_DOWN = 3
EE_PACKETS_UP = 4
EE_PACKETS_DOWN = 5
EE_PROTO_LABEL = 6
EE_SERVER_NAME = 7
EE_NAME_SOURCE = 8
EE_RTT_SAMPLES = 9
EE_RTT_MIN_US = 10
EE_RTT_AVG_US = 11
EE_RTT_MAX_US = 12
EE_VANTAGE = 13

#: The template: ordered field specifiers.
TEMPLATE: Tuple[Tuple[int, bool, int], ...] = (
    (IE_SRC_ADDR, False, 4),  # client (anonymized id re-encoded as u32)
    (IE_DST_ADDR, False, 4),  # server
    (IE_SRC_PORT, False, 2),
    (IE_DST_PORT, False, 2),
    (IE_PROTOCOL_ID, False, 1),
    (IE_FLOW_START_MS, False, 8),
    (IE_FLOW_END_MS, False, 8),
    (EE_CLIENT_ID, True, 8),
    (EE_BYTES_UP, True, 8),
    (EE_BYTES_DOWN, True, 8),
    (EE_PACKETS_UP, True, 8),
    (EE_PACKETS_DOWN, True, 8),
    (EE_PROTO_LABEL, True, VARLEN),
    (EE_SERVER_NAME, True, VARLEN),
    (EE_NAME_SOURCE, True, VARLEN),
    (EE_RTT_SAMPLES, True, 4),
    (EE_RTT_MIN_US, True, 8),
    (EE_RTT_AVG_US, True, 8),
    (EE_RTT_MAX_US, True, 8),
    (EE_VANTAGE, True, VARLEN),
)

_PROTO_NUMBER = {Transport.TCP: 6, Transport.UDP: 17}
_PROTO_TRANSPORT = {number: transport for transport, number in _PROTO_NUMBER.items()}


class IpfixError(RecordDecodeError):
    """Raised for malformed IPFIX messages.

    A :class:`~repro.dataflow.integrity.RecordDecodeError` subclass
    (RPR009): decode failures surface as the contracted family so the
    quarantine path catches them by type, and provenance (source file,
    byte offset context) can be layered on via ``with_context``.
    """


def _encode_varlen(value: bytes) -> bytes:
    if len(value) < 255:
        return bytes([len(value)]) + value
    return b"\xff" + struct.pack("!H", len(value)) + value


def _encode_record(record: FlowRecord) -> bytes:
    out = bytearray()
    out += struct.pack("!I", record.client_id & 0xFFFFFFFF)
    out += struct.pack("!I", record.server_ip)
    out += struct.pack("!HH", record.client_port, record.server_port)
    out += struct.pack("!B", _PROTO_NUMBER[record.transport])
    out += struct.pack("!Q", int(record.ts_start * 1000))
    out += struct.pack("!Q", int(record.ts_end * 1000))
    out += struct.pack("!Q", record.client_id)
    out += struct.pack("!Q", record.bytes_up)
    out += struct.pack("!Q", record.bytes_down)
    out += struct.pack("!Q", record.packets_up)
    out += struct.pack("!Q", record.packets_down)
    out += _encode_varlen(record.protocol.value.encode("ascii"))
    out += _encode_varlen((record.server_name or "").encode("utf-8"))
    out += _encode_varlen(record.name_source.value.encode("ascii"))
    out += struct.pack("!I", record.rtt.samples)
    out += struct.pack("!Q", int(record.rtt.min_ms * 1000))
    out += struct.pack("!Q", int(record.rtt.avg_ms * 1000))
    out += struct.pack("!Q", int(record.rtt.max_ms * 1000))
    out += _encode_varlen(record.vantage.encode("utf-8"))
    return bytes(out)


def _encode_template_set() -> bytes:
    body = bytearray()
    body += struct.pack("!HH", DATA_SET_ID, len(TEMPLATE))
    for element_id, enterprise, length in TEMPLATE:
        if enterprise:
            body += struct.pack("!HH", element_id | 0x8000, length)
            body += struct.pack("!I", ENTERPRISE_PEN)
        else:
            body += struct.pack("!HH", element_id, length)
    return struct.pack("!HH", TEMPLATE_SET_ID, 4 + len(body)) + bytes(body)


def export_ipfix(
    records: Iterable[FlowRecord],
    export_time: int = 0,
    sequence: int = 0,
    domain: int = 1,
) -> bytes:
    """Encode records as one IPFIX message (template set + data set)."""
    data_body = bytearray()
    for record in records:
        data_body += _encode_record(record)
    sets = _encode_template_set()
    if data_body:
        sets += struct.pack("!HH", DATA_SET_ID, 4 + len(data_body)) + bytes(data_body)
    header = struct.pack(
        "!HHIII",
        IPFIX_VERSION,
        16 + len(sets),
        export_time,
        sequence,
        domain,
    )
    return header + sets


@dataclass(frozen=True)
class _Field:
    element_id: int
    enterprise: bool
    length: int


class _Reader:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def take(self, count: int) -> bytes:
        if self.offset + count > len(self.data):
            raise IpfixError("truncated field")
        chunk = self.data[self.offset : self.offset + count]
        self.offset += count
        return chunk

    def varlen(self) -> bytes:
        first = self.take(1)[0]
        if first < 255:
            return self.take(first)
        (length,) = struct.unpack("!H", self.take(2))
        return self.take(length)

    def remaining(self) -> int:
        return len(self.data) - self.offset


def _parse_template(reader: _Reader) -> Tuple[int, List[_Field]]:
    template_id, field_count = struct.unpack("!HH", reader.take(4))
    fields = []
    for _ in range(field_count):
        element_id, length = struct.unpack("!HH", reader.take(4))
        enterprise = bool(element_id & 0x8000)
        element_id &= 0x7FFF
        if enterprise:
            reader.take(4)  # PEN
        fields.append(_Field(element_id, enterprise, length))
    return template_id, fields


def _decode_record(reader: _Reader, fields: List[_Field]) -> FlowRecord:
    values: Dict[Tuple[int, bool], object] = {}
    for field in fields:
        if field.length == VARLEN:
            values[(field.element_id, field.enterprise)] = reader.varlen()
        else:
            raw = reader.take(field.length)
            values[(field.element_id, field.enterprise)] = int.from_bytes(raw, "big")

    def number(element_id: int, enterprise: bool = True) -> int:
        return int(values[(element_id, enterprise)])  # type: ignore[arg-type]

    def text(element_id: int) -> str:
        return bytes(values[(element_id, True)]).decode("utf-8")  # type: ignore[arg-type]

    protocol_number = number(IE_PROTOCOL_ID, False)
    transport = _PROTO_TRANSPORT.get(protocol_number)
    if transport is None:
        raise IpfixError(f"unsupported protocolIdentifier {protocol_number}")
    name = text(EE_SERVER_NAME)
    return FlowRecord(
        client_id=number(EE_CLIENT_ID),
        server_ip=number(IE_DST_ADDR, False),
        client_port=number(IE_SRC_PORT, False),
        server_port=number(IE_DST_PORT, False),
        transport=transport,
        ts_start=number(IE_FLOW_START_MS, False) / 1000.0,
        ts_end=number(IE_FLOW_END_MS, False) / 1000.0,
        packets_up=number(EE_PACKETS_UP),
        packets_down=number(EE_PACKETS_DOWN),
        bytes_up=number(EE_BYTES_UP),
        bytes_down=number(EE_BYTES_DOWN),
        protocol=WebProtocol(text(EE_PROTO_LABEL)),
        server_name=name or None,
        name_source=NameSource(text(EE_NAME_SOURCE)),
        rtt=RttSummary(
            samples=number(EE_RTT_SAMPLES),
            min_ms=number(EE_RTT_MIN_US) / 1000.0,
            avg_ms=number(EE_RTT_AVG_US) / 1000.0,
            max_ms=number(EE_RTT_MAX_US) / 1000.0,
        ),
        vantage=text(EE_VANTAGE),
    )


def parse_ipfix(message: bytes) -> List[FlowRecord]:
    """Decode one IPFIX message produced by :func:`export_ipfix`.

    Template-driven: the template set must precede the data set, as RFC
    7011 requires within a message.
    """
    if len(message) < 16:
        raise IpfixError("message shorter than the IPFIX header")
    version, length, _export_time, _sequence, _domain = struct.unpack(
        "!HHIII", message[:16]
    )
    if version != IPFIX_VERSION:
        raise IpfixError(f"not IPFIX version 10 (got {version})")
    if length != len(message):
        raise IpfixError(f"length field {length} != message size {len(message)}")
    offset = 16
    templates: Dict[int, List[_Field]] = {}
    records: List[FlowRecord] = []
    while offset < len(message):
        if offset + 4 > len(message):
            raise IpfixError("truncated set header")
        set_id, set_length = struct.unpack_from("!HH", message, offset)
        if set_length < 4 or offset + set_length > len(message):
            raise IpfixError(f"bad set length {set_length}")
        body = _Reader(message[offset + 4 : offset + set_length])
        if set_id == TEMPLATE_SET_ID:
            while body.remaining() >= 4:
                template_id, fields = _parse_template(body)
                templates[template_id] = fields
        elif set_id >= 256:
            fields = templates.get(set_id)
            if fields is None:
                raise IpfixError(f"data set {set_id} without a template")
            while body.remaining() > 0:
                records.append(_decode_record(body, fields))
        offset += set_length
    return records
