"""Probe-side RTT estimation by TCP SEQ/ACK matching.

The paper (Sections 2.1 and 6) describes the estimator: the probe registers
the time it observes a client-side TCP segment and the time the server's
acknowledgment for it comes back; the difference is one RTT sample covering
the probe → server half of the path (the access network is behind the
probe and therefore excluded).  Per flow, the probe exports min/avg/max and
the sample count.

Karn's rule is applied: a sequence range that is ever retransmitted is
ambiguous and produces no sample.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.packets.tcp import SEQ_MODULUS, TcpSegment
from repro.tstat.flow import RttSummary

_MAX_OUTSTANDING = 64


def seq_after(a: int, b: int) -> bool:
    """True if sequence number ``a`` is after ``b`` (mod 2^32, RFC 1982ish)."""
    return 0 < (a - b) % SEQ_MODULUS < SEQ_MODULUS // 2


class RttEstimator:
    """Tracks outstanding client segments of one flow and matches ACKs."""

    def __init__(self) -> None:
        self.summary = RttSummary()
        #: Retransmitted client segments seen (Tstat's anomaly counter:
        #: the probe reports these as part of its TCP anomaly statistics).
        self.retransmissions = 0
        # end_seq -> (send timestamp, retransmitted?)
        self._outstanding: Dict[int, Tuple[float, bool]] = {}

    def on_client_segment(self, segment: TcpSegment, timestamp: float) -> None:
        """Register a client → server segment that consumes sequence space."""
        if segment.sequence_space() == 0:
            return
        self.note_sent(segment.end_seq(), timestamp)

    def note_sent(self, end_seq: int, timestamp: float) -> None:
        """Register an upstream segment by its end sequence number.

        Integer-argument core of :meth:`on_client_segment`, used by the
        batched meter path which never materialises ``TcpSegment`` objects.
        Callers must only pass segments that consume sequence space.
        """
        previous = self._outstanding.get(end_seq)
        if previous is not None:
            # Retransmission: Karn's rule — the eventual ACK is ambiguous.
            self.retransmissions += 1
            self._outstanding[end_seq] = (previous[0], True)
            return
        if len(self._outstanding) >= _MAX_OUTSTANDING:
            # Bound state per flow as a real probe must; drop oldest entry.
            oldest = min(self._outstanding, key=lambda key: self._outstanding[key][0])
            del self._outstanding[oldest]
        self._outstanding[end_seq] = (timestamp, False)

    def on_server_ack(self, segment: TcpSegment, timestamp: float) -> None:
        """Match a server → client ACK against outstanding segments."""
        if not segment.has_ack:
            return
        self.note_ack(segment.ack, timestamp)

    def note_ack(self, ack: int, timestamp: float) -> None:
        """Match a downstream acknowledgment number (integer-argument core)."""
        matched: List[int] = [
            end_seq
            for end_seq in self._outstanding
            if end_seq == ack or seq_after(ack, end_seq)
        ]
        for end_seq in matched:
            sent_at, retransmitted = self._outstanding.pop(end_seq)
            if retransmitted:
                continue
            sample_ms = (timestamp - sent_at) * 1000.0
            if sample_ms >= 0.0:
                self.summary.add(sample_ms)
