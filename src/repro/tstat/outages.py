"""Probe outage calendar.

"Network probes are the most likely point of failure... probes suffered
few outages, lasting from few hours up to some months" (Section 2.3).  The
figures of the paper show the resulting gaps.  The world model uses this
calendar to *not* produce measurements on outage days, and the analytics
must tolerate the holes.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Iterable, List, Tuple


@dataclass(frozen=True)
class Outage:
    """A [start, end] (inclusive) failure window of one probe."""

    probe: str
    start: datetime.date
    end: datetime.date

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"outage ends before it starts: {self}")

    def covers(self, day: datetime.date) -> bool:
        return self.start <= day <= self.end

    def duration_days(self) -> int:
        return (self.end - self.start).days + 1


class OutageCalendar:
    """Set of outages, queryable per day and per probe."""

    def __init__(self, outages: Iterable[Outage] = ()) -> None:
        self._outages: List[Outage] = list(outages)

    def add(self, outage: Outage) -> None:
        self._outages.append(outage)

    def is_down(self, probe: str, day: datetime.date) -> bool:
        return any(
            outage.probe == probe and outage.covers(day) for outage in self._outages
        )

    def any_down(self, day: datetime.date) -> bool:
        return any(outage.covers(day) for outage in self._outages)

    def outages_for(self, probe: str) -> Tuple[Outage, ...]:
        return tuple(outage for outage in self._outages if outage.probe == probe)

    def total_lost_days(self, probe: str) -> int:
        return sum(outage.duration_days() for outage in self.outages_for(probe))

    def __len__(self) -> int:
        return len(self._outages)


def default_outages() -> OutageCalendar:
    """The outage history used by the default world model.

    Mirrors the paper's description: a handful of short outages plus one
    severe multi-month hardware failure, visible as gaps in Fig. 3/5/6/7.
    """
    return OutageCalendar(
        [
            Outage("pop1", datetime.date(2013, 9, 12), datetime.date(2013, 9, 14)),
            Outage("pop1", datetime.date(2014, 6, 2), datetime.date(2014, 6, 9)),
            Outage("pop2", datetime.date(2015, 2, 20), datetime.date(2015, 2, 22)),
            # The severe hardware failure: months of missing data.
            Outage("pop1", datetime.date(2016, 3, 5), datetime.date(2016, 5, 28)),
            Outage("pop2", datetime.date(2017, 8, 17), datetime.date(2017, 8, 24)),
        ]
    )
