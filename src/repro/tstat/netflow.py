"""NetFlow v5 export — the legacy collector format, losses included.

Many ISP toolchains of the paper's era still spoke NetFlow v5.  Unlike
the probe's native logs or IPFIX (:mod:`repro.tstat.ipfix`), v5 is

* **unidirectional** — one biflow becomes two records (client→server and
  server→client), and the collector must re-pair them;
* **fixed-format** — no server names, no RTT, no DPI labels: exactly the
  information the paper's analyses need is what v5 cannot carry.

Both halves are implemented: export (version 5 header + 48-byte records,
at most 30 per datagram, per the spec) and a collector side that parses
datagrams and re-pairs unidirectional records into biflow
:class:`~repro.tstat.flow.FlowRecord`\\ s given the subscriber networks.
The information loss is deliberate and tested — it documents *why* the
probes export richer records.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.dataflow.integrity import RecordDecodeError
from repro.nettypes.ip import Prefix
from repro.tstat.flow import (
    FlowRecord,
    NameSource,
    RttSummary,
    Transport,
    WebProtocol,
)

VERSION = 5
MAX_RECORDS_PER_DATAGRAM = 30
_HEADER = struct.Struct("!HHIIIIBBH")
_RECORD = struct.Struct("!IIIHHIIIIHHBBBBHHBBH")

_PROTO_NUMBER = {Transport.TCP: 6, Transport.UDP: 17}
_PROTO_TRANSPORT = {number: transport for transport, number in _PROTO_NUMBER.items()}


class NetflowError(RecordDecodeError):
    """Raised for malformed NetFlow v5 datagrams.

    A :class:`~repro.dataflow.integrity.RecordDecodeError` subclass
    (RPR009): decode failures surface as the contracted family so the
    quarantine path catches them by type rather than by bare
    ``ValueError``.
    """


@dataclass(frozen=True)
class V5Record:
    """One unidirectional NetFlow v5 record (collector-side view)."""

    src_addr: int
    dst_addr: int
    packets: int
    octets: int
    first_ms: int  # sysuptime at flow start
    last_ms: int
    src_port: int
    dst_port: int
    protocol: int


def export_netflow_v5(
    records: Iterable[FlowRecord],
    sysuptime_ms: int = 0,
    unix_secs: int = 0,
    engine_id: int = 0,
) -> List[bytes]:
    """Encode biflow records as NetFlow v5 datagrams (two v5 rows each).

    Timestamps are carried as sysuptime offsets relative to the earliest
    flow start, as a real exporter's uptime clock would.
    """
    records = list(records)
    if not records:
        return []
    epoch = min(record.ts_start for record in records)
    rows: List[bytes] = []
    for record in records:
        first = sysuptime_ms + int((record.ts_start - epoch) * 1000)
        last = sysuptime_ms + int((record.ts_end - epoch) * 1000)
        protocol = _PROTO_NUMBER[record.transport]
        # client -> server half.
        rows.append(
            _RECORD.pack(
                record.client_id & 0xFFFFFFFF,
                record.server_ip,
                0,  # nexthop
                0,
                0,  # input/output ifindex
                record.packets_up,
                record.bytes_up,
                first,
                last,
                record.client_port,
                record.server_port,
                0,  # pad1
                0,  # tcp_flags (not tracked per direction here)
                protocol,
                0,  # tos
                0,
                0,  # src/dst AS
                0,
                0,  # masks
                0,  # pad2
            )
        )
        # server -> client half.
        rows.append(
            _RECORD.pack(
                record.server_ip,
                record.client_id & 0xFFFFFFFF,
                0,
                0,
                0,
                record.packets_down,
                record.bytes_down,
                first,
                last,
                record.server_port,
                record.client_port,
                0,
                0,
                protocol,
                0,
                0,
                0,
                0,
                0,
                0,
            )
        )
    datagrams: List[bytes] = []
    sequence = 0
    for start in range(0, len(rows), MAX_RECORDS_PER_DATAGRAM):
        chunk = rows[start : start + MAX_RECORDS_PER_DATAGRAM]
        header = _HEADER.pack(
            VERSION,
            len(chunk),
            sysuptime_ms,
            unix_secs,
            0,  # unix nsecs
            sequence,
            0,  # engine type
            engine_id,
            0,  # sampling
        )
        datagrams.append(header + b"".join(chunk))
        sequence += len(chunk)
    return datagrams


def parse_netflow_v5(datagram: bytes) -> List[V5Record]:
    """Parse one v5 datagram into unidirectional records."""
    if len(datagram) < _HEADER.size:
        raise NetflowError("datagram shorter than the v5 header")
    version, count, _uptime, _secs, _nsecs, _seq, _etype, _eid, _sampling = (
        _HEADER.unpack_from(datagram, 0)
    )
    if version != VERSION:
        raise NetflowError(f"not NetFlow v5 (version {version})")
    expected = _HEADER.size + count * _RECORD.size
    if len(datagram) < expected:
        raise NetflowError(f"truncated datagram: {len(datagram)} < {expected}")
    records: List[V5Record] = []
    for index in range(count):
        fields = _RECORD.unpack_from(datagram, _HEADER.size + index * _RECORD.size)
        records.append(
            V5Record(
                src_addr=fields[0],
                dst_addr=fields[1],
                packets=fields[5],
                octets=fields[6],
                first_ms=fields[7],
                last_ms=fields[8],
                src_port=fields[9],
                dst_port=fields[10],
                protocol=fields[13],
            )
        )
    return records


def merge_biflows(
    records: Sequence[V5Record],
    client_networks: Sequence[Prefix],
    vantage: str = "netflow",
) -> List[FlowRecord]:
    """Re-pair unidirectional v5 records into biflow records.

    Orientation follows the subscriber networks, as in the probe.  The
    result intentionally lacks server names, DPI labels and RTT — v5
    cannot carry them (the unnamed/OTHER fields document the loss).
    Unpaired halves still produce a record with zeros on the silent side.
    """

    def is_client(address: int) -> bool:
        return any(network.contains(address) for network in client_networks)

    table: Dict[Tuple[int, int, int, int, int], List[Optional[V5Record]]] = {}
    for record in records:
        if is_client(record.src_addr) and not is_client(record.dst_addr):
            key = (
                record.src_addr,
                record.dst_addr,
                record.src_port,
                record.dst_port,
                record.protocol,
            )
            table.setdefault(key, [None, None])[0] = record
        elif is_client(record.dst_addr) and not is_client(record.src_addr):
            key = (
                record.dst_addr,
                record.src_addr,
                record.dst_port,
                record.src_port,
                record.protocol,
            )
            table.setdefault(key, [None, None])[1] = record
        # transit records (neither or both sides local) are dropped,
        # as the probe drops them too.
    merged: List[FlowRecord] = []
    for (client, server, client_port, server_port, protocol), (up, down) in sorted(
        table.items()
    ):
        transport = _PROTO_TRANSPORT.get(protocol)
        if transport is None:
            continue
        first = min(half.first_ms for half in (up, down) if half is not None)
        last = max(half.last_ms for half in (up, down) if half is not None)
        merged.append(
            FlowRecord(
                client_id=client,
                server_ip=server,
                client_port=client_port,
                server_port=server_port,
                transport=transport,
                ts_start=first / 1000.0,
                ts_end=last / 1000.0,
                packets_up=up.packets if up else 0,
                packets_down=down.packets if down else 0,
                bytes_up=up.octets if up else 0,
                bytes_down=down.octets if down else 0,
                protocol=WebProtocol.OTHER,  # v5 carries no DPI label
                server_name=None,  # ...and no names
                name_source=NameSource.NONE,
                rtt=RttSummary(),  # ...and no RTT
                vantage=vantage,
            )
        )
    return merged
