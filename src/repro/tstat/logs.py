"""Flow-log serialization: the probe's on-disk export format.

Probes write one gzip-compressed, tab-separated log per day; the logs are
then shipped to the long-term data lake (Section 2.2).  The column layout
is versioned in a header line so five years of logs remain readable as the
schema evolves — another of the paper's operational lessons: v1 logs
(before the probes grew RTT instrumentation) parse alongside v2, with the
missing RTT summary defaulting to "no samples".

Malformed input never surfaces a bare ``ValueError``: every decode failure
is a :class:`LogFormatError` (a :class:`~repro.dataflow.integrity.
RecordDecodeError`) carrying the source file and line number, so five-year
archives can be triaged file by file.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from types import MappingProxyType
from typing import IO, Iterable, Iterator, List, Tuple, Union

from repro.dataflow.integrity import (
    PayloadDigest,
    RecordDecodeError,
    register_codec_provider,
    write_manifest,
)
from repro.nettypes.ip import int_to_ip, ip_to_int
from repro.tstat.flow import (
    FlowRecord,
    NameSource,
    RttSummary,
    Transport,
    WebProtocol,
)

SCHEMA_VERSION = 2
_HEADER_PREFIX = "#tstat-log"

#: v2 layout: the current export format.
COLUMNS = (
    "client_id",
    "server_ip",
    "client_port",
    "server_port",
    "transport",
    "ts_start",
    "ts_end",
    "packets_up",
    "packets_down",
    "bytes_up",
    "bytes_down",
    "protocol",
    "server_name",
    "name_source",
    "rtt_samples",
    "rtt_min_ms",
    "rtt_avg_ms",
    "rtt_max_ms",
    "vantage",
)

#: v1 layout: pre-RTT probes — same columns minus the four RTT fields.
COLUMNS_V1 = tuple(
    column for column in COLUMNS if not column.startswith("rtt_")
)

SCHEMA_COLUMNS = MappingProxyType({1: COLUMNS_V1, 2: COLUMNS})


class LogFormatError(RecordDecodeError):
    """Raised when a flow log is malformed or has an unknown schema."""


def _columns_for(schema_version: int) -> Tuple[str, ...]:
    columns = SCHEMA_COLUMNS.get(schema_version)
    if columns is None:
        raise LogFormatError(
            f"unsupported schema version v{schema_version} "
            f"(known: {sorted(SCHEMA_COLUMNS)})"
        )
    return columns


def format_record(record: FlowRecord, schema_version: int = SCHEMA_VERSION) -> str:
    """One log line for ``record`` (no trailing newline)."""
    _columns_for(schema_version)
    fields = [
        str(record.client_id),
        int_to_ip(record.server_ip),
        str(record.client_port),
        str(record.server_port),
        record.transport.value,
        f"{record.ts_start:.6f}",
        f"{record.ts_end:.6f}",
        str(record.packets_up),
        str(record.packets_down),
        str(record.bytes_up),
        str(record.bytes_down),
        record.protocol.value,
        record.server_name or "-",
        record.name_source.value,
    ]
    if schema_version >= 2:
        fields += [
            str(record.rtt.samples),
            f"{record.rtt.min_ms:.3f}",
            f"{record.rtt.avg_ms:.3f}",
            f"{record.rtt.max_ms:.3f}",
        ]
    fields.append(record.vantage)
    return "\t".join(fields)


def parse_record(line: str, schema_version: int = SCHEMA_VERSION) -> FlowRecord:
    """Parse one log line back into a :class:`FlowRecord`.

    Any malformed input — wrong field count, unparseable number, unknown
    enum value — raises :class:`LogFormatError` with the reason; callers
    holding the file context (:func:`read_flow_log`, the lake read path)
    enrich it with source and line number.
    """
    columns = _columns_for(schema_version)
    fields = line.rstrip("\n").split("\t")
    if len(fields) != len(columns):
        raise LogFormatError(
            f"schema v{schema_version} expects {len(columns)} fields, "
            f"got {len(fields)}: {line!r}",
            line=line,
        )
    try:
        if schema_version >= 2:
            rtt = RttSummary(
                samples=int(fields[14]),
                min_ms=float(fields[15]),
                avg_ms=float(fields[16]),
                max_ms=float(fields[17]),
            )
            vantage = fields[18]
        else:
            # v1 probes had no RTT instrumentation: empty summary.
            rtt = RttSummary()
            vantage = fields[14]
        return FlowRecord(
            client_id=int(fields[0]),
            server_ip=ip_to_int(fields[1]),
            client_port=int(fields[2]),
            server_port=int(fields[3]),
            transport=Transport(fields[4]),
            ts_start=float(fields[5]),
            ts_end=float(fields[6]),
            packets_up=int(fields[7]),
            packets_down=int(fields[8]),
            bytes_up=int(fields[9]),
            bytes_down=int(fields[10]),
            protocol=WebProtocol(fields[11]),
            server_name=None if fields[12] == "-" else fields[12],
            name_source=NameSource(fields[13]),
            rtt=rtt,
            vantage=vantage,
        )
    except LogFormatError:
        raise
    except (ValueError, KeyError, IndexError) as exc:
        raise LogFormatError(
            f"schema v{schema_version} field conversion failed: {exc}",
            line=line,
        ) from exc


class FlowLogWriter:
    """Writes a flow log (gzip if the path ends in .gz) with its header.

    With ``manifest=True``, a sidecar :class:`~repro.dataflow.integrity.
    PartitionManifest` (CRC32 + record count + schema version) is
    finalized on close, so a log exported by a probe carries its own
    integrity evidence into the lake.
    """

    def __init__(
        self,
        path: Union[str, Path],
        schema_version: int = SCHEMA_VERSION,
        manifest: bool = False,
    ) -> None:
        self._path = Path(path)
        self._schema_version = schema_version
        self._columns = _columns_for(schema_version)
        self._digest = PayloadDigest(schema_version=schema_version)
        self._manifest = manifest
        self._handle: IO[str] = _open_text(self._path, "wt")
        self._handle.write(f"{_HEADER_PREFIX} v{schema_version}\n")
        self._handle.write("#" + "\t".join(self._columns) + "\n")
        self.records_written = 0

    def write(self, record: FlowRecord) -> None:
        line = format_record(record, self._schema_version) + "\n"
        self._handle.write(line)
        self._digest.add_line(line)
        self.records_written += 1

    def write_all(self, records: Iterable[FlowRecord]) -> None:
        for record in records:
            self.write(record)

    def close(self) -> None:
        self._handle.close()
        if self._manifest:
            write_manifest(self._path, self._digest.manifest())

    def abandon(self) -> None:
        """Release the handle *without* finalizing the manifest.

        This is what a probe crash leaves behind: whatever records made
        it to disk, with no sidecar vouching for them — so downstream
        integrity checks see the file as unverified/torn rather than
        trusting a partial export (DESIGN.md §17, probe-restart fault).
        """
        self._handle.close()

    def __enter__(self) -> "FlowLogWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_flow_log(path: Union[str, Path]) -> Iterator[FlowRecord]:
    """Stream records from a flow log, dispatching on the schema header.

    v1 and v2 logs both parse (the cross-version read path); headers
    claiming a version newer than :data:`SCHEMA_VERSION` are rejected.
    Malformed lines raise :class:`LogFormatError` naming the source file
    and line number.
    """
    path = Path(path)
    with _open_text(path, "rt") as handle:
        header = handle.readline()
        if not header.startswith(_HEADER_PREFIX):
            raise LogFormatError("missing log header", source=path.name)
        version_text = header.strip().rpartition("v")[2]
        if not version_text.isdigit() or int(version_text) > SCHEMA_VERSION:
            raise LogFormatError(
                f"unsupported schema {header.strip()!r}", source=path.name
            )
        version = int(version_text)
        _columns_for(version)
        for line_number, line in enumerate(handle, start=2):
            if line.startswith("#") or not line.strip():
                continue
            try:
                yield parse_record(line, schema_version=version)
            except RecordDecodeError as exc:
                raise exc.with_context(
                    source=path.name, line_number=line_number, line=line
                ) from exc


def load_flow_log(path: Union[str, Path]) -> List[FlowRecord]:
    """Read a whole flow log into memory."""
    return list(read_flow_log(path))


# Make flow logs decodable by `repro fsck` record scans.
register_codec_provider(lambda: {"flows": parse_record})


def _open_text(path: Path, mode: str) -> IO[str]:
    if path.suffix == ".gz":
        return io.TextIOWrapper(
            gzip.open(path, mode.replace("t", "") + "b"), encoding="utf-8"
        )
    return open(path, mode, encoding="utf-8")
