"""Flow-log serialization: the probe's on-disk export format.

Probes write one gzip-compressed, tab-separated log per day; the logs are
then shipped to the long-term data lake (Section 2.2).  The column layout
is versioned in a header line so five years of logs remain readable as the
schema evolves — another of the paper's operational lessons.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import IO, Iterable, Iterator, List, Union

from repro.nettypes.ip import int_to_ip, ip_to_int
from repro.tstat.flow import (
    FlowRecord,
    NameSource,
    RttSummary,
    Transport,
    WebProtocol,
)

SCHEMA_VERSION = 2
_HEADER_PREFIX = "#tstat-log"

COLUMNS = (
    "client_id",
    "server_ip",
    "client_port",
    "server_port",
    "transport",
    "ts_start",
    "ts_end",
    "packets_up",
    "packets_down",
    "bytes_up",
    "bytes_down",
    "protocol",
    "server_name",
    "name_source",
    "rtt_samples",
    "rtt_min_ms",
    "rtt_avg_ms",
    "rtt_max_ms",
    "vantage",
)


class LogFormatError(ValueError):
    """Raised when a flow log is malformed or has an unknown schema."""


def format_record(record: FlowRecord) -> str:
    """One log line for ``record`` (no trailing newline)."""
    fields = (
        str(record.client_id),
        int_to_ip(record.server_ip),
        str(record.client_port),
        str(record.server_port),
        record.transport.value,
        f"{record.ts_start:.6f}",
        f"{record.ts_end:.6f}",
        str(record.packets_up),
        str(record.packets_down),
        str(record.bytes_up),
        str(record.bytes_down),
        record.protocol.value,
        record.server_name or "-",
        record.name_source.value,
        str(record.rtt.samples),
        f"{record.rtt.min_ms:.3f}",
        f"{record.rtt.avg_ms:.3f}",
        f"{record.rtt.max_ms:.3f}",
        record.vantage,
    )
    return "\t".join(fields)


def parse_record(line: str) -> FlowRecord:
    """Parse one log line back into a :class:`FlowRecord`."""
    fields = line.rstrip("\n").split("\t")
    if len(fields) != len(COLUMNS):
        raise LogFormatError(
            f"expected {len(COLUMNS)} fields, got {len(fields)}: {line!r}"
        )
    rtt = RttSummary(
        samples=int(fields[14]),
        min_ms=float(fields[15]),
        avg_ms=float(fields[16]),
        max_ms=float(fields[17]),
    )
    return FlowRecord(
        client_id=int(fields[0]),
        server_ip=ip_to_int(fields[1]),
        client_port=int(fields[2]),
        server_port=int(fields[3]),
        transport=Transport(fields[4]),
        ts_start=float(fields[5]),
        ts_end=float(fields[6]),
        packets_up=int(fields[7]),
        packets_down=int(fields[8]),
        bytes_up=int(fields[9]),
        bytes_down=int(fields[10]),
        protocol=WebProtocol(fields[11]),
        server_name=None if fields[12] == "-" else fields[12],
        name_source=NameSource(fields[13]),
        rtt=rtt,
        vantage=fields[18],
    )


class FlowLogWriter:
    """Writes a flow log (gzip if the path ends in .gz) with its header."""

    def __init__(self, path: Union[str, Path]) -> None:
        self._path = Path(path)
        self._handle: IO[str] = _open_text(self._path, "wt")
        self._handle.write(f"{_HEADER_PREFIX} v{SCHEMA_VERSION}\n")
        self._handle.write("#" + "\t".join(COLUMNS) + "\n")
        self.records_written = 0

    def write(self, record: FlowRecord) -> None:
        self._handle.write(format_record(record) + "\n")
        self.records_written += 1

    def write_all(self, records: Iterable[FlowRecord]) -> None:
        for record in records:
            self.write(record)

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "FlowLogWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_flow_log(path: Union[str, Path]) -> Iterator[FlowRecord]:
    """Stream records from a flow log, verifying the schema header."""
    path = Path(path)
    with _open_text(path, "rt") as handle:
        header = handle.readline()
        if not header.startswith(_HEADER_PREFIX):
            raise LogFormatError(f"{path}: missing log header")
        version_text = header.strip().rpartition("v")[2]
        if not version_text.isdigit() or int(version_text) > SCHEMA_VERSION:
            raise LogFormatError(f"{path}: unsupported schema {header.strip()!r}")
        for line in handle:
            if line.startswith("#") or not line.strip():
                continue
            yield parse_record(line)


def load_flow_log(path: Union[str, Path]) -> List[FlowRecord]:
    """Read a whole flow log into memory."""
    return list(read_flow_log(path))


def _open_text(path: Path, mode: str) -> IO[str]:
    if path.suffix == ".gz":
        return io.TextIOWrapper(
            gzip.open(path, mode.replace("t", "") + "b"), encoding="utf-8"
        )
    return open(path, mode, encoding="utf-8")
