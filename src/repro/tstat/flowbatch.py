"""Columnar flow storage: struct-of-arrays batches of flow records.

The paper's cluster reduced 247 billion flow records by streaming them
through predefined per-day analytics (Section 2.2).  The reproduction's
equivalent hot path used to materialize one :class:`FlowRecord` object
per flow and re-scan the resulting list once per stage-1 consumer; a
:class:`FlowBatch` keeps the same day of flows as NumPy columns plus two
string-interning tables (server names, vantages), so

* generation appends plain scalars instead of allocating objects,
* service classification runs **once per distinct server name** instead
  of once per (flow, consumer) pair (:meth:`FlowBatch.service_view`),
* the stage-1 analytics reduce whole columns with vectorized NumPy ops.

``FlowBatch.to_records()`` / ``from_records()`` convert losslessly to the
row schema: the columnar and row paths are interchangeable and tested
bit-identical (the batching analogue of the repo's "parallelism changes
wall-clock, never results" invariant).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.services.rules import RuleSet
from repro.tstat.flow import (
    FlowRecord,
    NameSource,
    RttSummary,
    Transport,
    WebProtocol,
    second_level_domain,
)

#: Stable enum ↔ small-integer code tables (declaration order).
TRANSPORTS: Tuple[Transport, ...] = tuple(Transport)
PROTOCOLS: Tuple[WebProtocol, ...] = tuple(WebProtocol)
NAME_SOURCES: Tuple[NameSource, ...] = tuple(NameSource)

_TRANSPORT_CODE = MappingProxyType(
    {member: code for code, member in enumerate(TRANSPORTS)}
)
_PROTOCOL_CODE = MappingProxyType(
    {member: code for code, member in enumerate(PROTOCOLS)}
)
_NAME_SOURCE_CODE = MappingProxyType(
    {member: code for code, member in enumerate(NAME_SOURCES)}
)

TCP_CODE = _TRANSPORT_CODE[Transport.TCP]
UDP_CODE = _TRANSPORT_CODE[Transport.UDP]
P2P_CODE = _PROTOCOL_CODE[WebProtocol.P2P]

#: classify_flow's fallback labels (see repro.analytics.aggregate).
P2P_SERVICE = "Peer-To-Peer"
FALLBACK_SERVICE = "Other"


def transport_code(transport: Transport) -> int:
    return _TRANSPORT_CODE[transport]

def protocol_code(protocol: WebProtocol) -> int:
    return _PROTOCOL_CODE[protocol]

def name_source_code(source: NameSource) -> int:
    return _NAME_SOURCE_CODE[source]


class StringTable:
    """Append-only interning table: each distinct value stored once.

    Rows refer to values by dense integer id, in first-appearance order;
    ``None`` interns like any other value (id 0 by convention when it is
    interned first), so columns stay purely integral.
    """

    __slots__ = ("_values", "_ids")

    def __init__(self, values: Iterable[Optional[str]] = ()) -> None:
        self._values: List[Optional[str]] = []
        self._ids: Dict[Optional[str], int] = {}
        for value in values:
            self.intern(value)

    def intern(self, value: Optional[str]) -> int:
        """The id of ``value``, assigning the next dense id on first use."""
        found = self._ids.get(value)
        if found is None:
            found = len(self._values)
            self._ids[value] = found
            self._values.append(value)
        return found

    def values(self) -> Tuple[Optional[str], ...]:
        return tuple(self._values)

    def __len__(self) -> int:
        return len(self._values)


@dataclass(frozen=True)
class BatchServiceView:
    """One ruleset's classification of a whole batch, computed once.

    ``rules.classify`` ran once per *distinct* server name; the per-flow
    results live in two integer columns over a shared service table:

    * ``flow_codes`` — full :func:`~repro.analytics.aggregate.classify_flow`
      semantics (domain rules, then the P2P label, then ``"Other"``);
      always a valid index into ``services``.
    * ``name_codes`` — pure ``rules.classify(server_name)`` semantics as
      used by the RTT analytics; ``-1`` where no rule matched.
    """

    services: Tuple[str, ...]
    flow_codes: np.ndarray
    name_codes: np.ndarray
    _index: Dict[str, int] = field(repr=False, compare=False, default_factory=dict)

    def __post_init__(self) -> None:
        self._index.update(
            {service: code for code, service in enumerate(self.services)}
        )

    def code_of(self, service: str) -> int:
        """Dense code of ``service``, or ``-1`` when absent from the batch."""
        return self._index.get(service, -1)

    def flow_mask(self, service: str) -> np.ndarray:
        """Boolean column: flows classified to ``service`` (classify_flow)."""
        code = self.code_of(service)
        if code < 0:
            return np.zeros(self.flow_codes.shape, dtype=bool)
        return self.flow_codes == code

    def name_mask(self, service: str) -> np.ndarray:
        """Boolean column: flows whose *domain rules* match ``service``."""
        code = self.code_of(service)
        if code < 0:
            return np.zeros(self.name_codes.shape, dtype=bool)
        return self.name_codes == code


@dataclass(eq=False)
class FlowBatch:
    """One day of flow records as struct-of-arrays columns.

    Identity comparison only: equivalence between batches is defined via
    ``to_records()`` (array-wise ``==`` on NumPy columns is ambiguous).
    """

    client_id: np.ndarray
    server_ip: np.ndarray
    client_port: np.ndarray
    server_port: np.ndarray
    transport: np.ndarray  # codes into TRANSPORTS
    ts_start: np.ndarray
    ts_end: np.ndarray
    packets_up: np.ndarray
    packets_down: np.ndarray
    bytes_up: np.ndarray
    bytes_down: np.ndarray
    protocol: np.ndarray  # codes into PROTOCOLS
    name_id: np.ndarray  # ids into ``names``
    name_source: np.ndarray  # codes into NAME_SOURCES
    rtt_samples: np.ndarray
    rtt_min: np.ndarray
    rtt_avg: np.ndarray
    rtt_max: np.ndarray
    vantage_id: np.ndarray  # ids into ``vantages``
    names: Tuple[Optional[str], ...]
    vantages: Tuple[str, ...]
    #: per-ruleset classification cache: id(rules) → (rules, view).  The
    #: strong reference to the ruleset keeps the id from being recycled.
    _views: Dict[int, Tuple[RuleSet, BatchServiceView]] = field(
        default_factory=dict, repr=False, compare=False
    )
    _sld_table: Optional[Tuple[Tuple[str, ...], np.ndarray]] = field(
        default=None, repr=False, compare=False
    )

    def __len__(self) -> int:
        return int(self.client_id.shape[0])

    @property
    def total_bytes(self) -> np.ndarray:
        return self.bytes_up + self.bytes_down

    # -- classification (once per batch) -----------------------------------

    def service_view(self, rules: RuleSet) -> BatchServiceView:
        """Classify the whole batch under ``rules``, memoized per ruleset.

        Domain rules run once per interned name; the P2P/Other fallback of
        :func:`~repro.analytics.aggregate.classify_flow` is then applied as
        one vectorized select over the protocol column.
        """
        cached = self._views.get(id(rules))
        if cached is not None and cached[0] is rules:
            return cached[1]
        services: List[str] = []
        index: Dict[str, int] = {}

        def code(service: str) -> int:
            found = index.get(service)
            if found is None:
                found = len(services)
                index[service] = found
                services.append(service)
            return found

        name_table = np.fromiter(
            (
                -1 if service is None else code(service)
                for service in (self.rules_per_name(rules))
            ),
            dtype=np.int64,
            count=len(self.names),
        )
        p2p = code(P2P_SERVICE)
        fallback = code(FALLBACK_SERVICE)
        if len(self) == 0:
            name_codes = np.empty(0, dtype=np.int64)
            flow_codes = np.empty(0, dtype=np.int64)
        else:
            name_codes = name_table[self.name_id]
            flow_codes = np.where(
                name_codes >= 0,
                name_codes,
                np.where(self.protocol == P2P_CODE, p2p, fallback),
            )
        view = BatchServiceView(
            services=tuple(services),
            flow_codes=flow_codes,
            name_codes=name_codes,
        )
        self._views[id(rules)] = (rules, view)
        return view

    def rules_per_name(self, rules: RuleSet) -> List[Optional[str]]:
        """``rules.classify`` applied once per interned name, in id order."""
        return [rules.classify(name) for name in self.names]

    def sld_table(self) -> Tuple[Tuple[str, ...], np.ndarray]:
        """Second-level domains, reduced once per interned name.

        Returns ``(slds, sld_of_name)`` where ``sld_of_name[name_id]`` is an
        index into ``slds``, or ``-1`` for unnamed flows.
        """
        if self._sld_table is None:
            slds: List[str] = []
            index: Dict[str, int] = {}
            ids = np.empty(len(self.names), dtype=np.int64)
            for name_id, name in enumerate(self.names):
                if name is None:
                    ids[name_id] = -1
                    continue
                sld = second_level_domain(name)
                found = index.get(sld)
                if found is None:
                    found = len(slds)
                    index[sld] = found
                    slds.append(sld)
                ids[name_id] = found
            self._sld_table = (tuple(slds), ids)
        return self._sld_table

    # -- row interop ---------------------------------------------------------

    @classmethod
    def from_records(cls, records: Iterable[FlowRecord]) -> "FlowBatch":
        """Columnarize a record list (testing and compatibility path)."""
        builder = FlowBatchBuilder()
        for record in records:
            builder.append(
                client_id=record.client_id,
                server_ip=record.server_ip,
                client_port=record.client_port,
                server_port=record.server_port,
                transport=_TRANSPORT_CODE[record.transport],
                ts_start=record.ts_start,
                ts_end=record.ts_end,
                packets_up=record.packets_up,
                packets_down=record.packets_down,
                bytes_up=record.bytes_up,
                bytes_down=record.bytes_down,
                protocol=_PROTOCOL_CODE[record.protocol],
                server_name=record.server_name,
                name_source=_NAME_SOURCE_CODE[record.name_source],
                rtt_samples=record.rtt.samples,
                rtt_min=record.rtt.min_ms,
                rtt_avg=record.rtt.avg_ms,
                rtt_max=record.rtt.max_ms,
                vantage=record.vantage,
            )
        return builder.build()

    def to_records(self) -> List[FlowRecord]:
        """Materialize the row view (bit-identical to the columnar data)."""
        names = self.names
        vantages = self.vantages
        records: List[FlowRecord] = []
        append = records.append
        columns = zip(
            self.client_id.tolist(),
            self.server_ip.tolist(),
            self.client_port.tolist(),
            self.server_port.tolist(),
            self.transport.tolist(),
            self.ts_start.tolist(),
            self.ts_end.tolist(),
            self.packets_up.tolist(),
            self.packets_down.tolist(),
            self.bytes_up.tolist(),
            self.bytes_down.tolist(),
            self.protocol.tolist(),
            self.name_id.tolist(),
            self.name_source.tolist(),
            self.rtt_samples.tolist(),
            self.rtt_min.tolist(),
            self.rtt_avg.tolist(),
            self.rtt_max.tolist(),
            self.vantage_id.tolist(),
        )
        for (
            client_id,
            server_ip,
            client_port,
            server_port,
            transport,
            ts_start,
            ts_end,
            packets_up,
            packets_down,
            bytes_up,
            bytes_down,
            protocol,
            name_id,
            name_source,
            rtt_samples,
            rtt_min,
            rtt_avg,
            rtt_max,
            vantage_id,
        ) in columns:
            append(
                FlowRecord(
                    client_id=client_id,
                    server_ip=server_ip,
                    client_port=client_port,
                    server_port=server_port,
                    transport=TRANSPORTS[transport],
                    ts_start=ts_start,
                    ts_end=ts_end,
                    packets_up=packets_up,
                    packets_down=packets_down,
                    bytes_up=bytes_up,
                    bytes_down=bytes_down,
                    protocol=PROTOCOLS[protocol],
                    server_name=names[name_id],
                    name_source=NAME_SOURCES[name_source],
                    rtt=RttSummary(
                        samples=rtt_samples,
                        min_ms=rtt_min,
                        avg_ms=rtt_avg,
                        max_ms=rtt_max,
                    ),
                    vantage=vantages[vantage_id],
                )
            )
        return records


class FlowBatchBuilder:
    """Accumulates scalar flow fields and finalizes them into a FlowBatch.

    The hot generation loop appends plain Python/NumPy scalars; no
    :class:`FlowRecord` or :class:`RttSummary` objects are created.
    """

    def __init__(self) -> None:
        self._names = StringTable()
        self._vantages = StringTable()
        self._columns: Tuple[list, ...] = tuple([] for _ in range(19))
        (
            self.client_id,
            self.server_ip,
            self.client_port,
            self.server_port,
            self.transport,
            self.ts_start,
            self.ts_end,
            self.packets_up,
            self.packets_down,
            self.bytes_up,
            self.bytes_down,
            self.protocol,
            self.name_id,
            self.name_source,
            self.rtt_samples,
            self.rtt_min,
            self.rtt_avg,
            self.rtt_max,
            self.vantage_id,
        ) = self._columns

    def __len__(self) -> int:
        return len(self.client_id)

    def intern_name(self, name: Optional[str]) -> int:
        return self._names.intern(name)

    def intern_vantage(self, vantage: str) -> int:
        return self._vantages.intern(vantage)

    def append(
        self,
        client_id: int,
        server_ip: int,
        client_port: int,
        server_port: int,
        transport: int,
        ts_start: float,
        ts_end: float,
        packets_up: int,
        packets_down: int,
        bytes_up: int,
        bytes_down: int,
        protocol: int,
        server_name: Optional[str],
        name_source: int,
        rtt_samples: int,
        rtt_min: float,
        rtt_avg: float,
        rtt_max: float,
        vantage: str,
    ) -> None:
        self.client_id.append(client_id)
        self.server_ip.append(server_ip)
        self.client_port.append(client_port)
        self.server_port.append(server_port)
        self.transport.append(transport)
        self.ts_start.append(ts_start)
        self.ts_end.append(ts_end)
        self.packets_up.append(packets_up)
        self.packets_down.append(packets_down)
        self.bytes_up.append(bytes_up)
        self.bytes_down.append(bytes_down)
        self.protocol.append(protocol)
        self.name_id.append(self._names.intern(server_name))
        self.name_source.append(name_source)
        self.rtt_samples.append(rtt_samples)
        self.rtt_min.append(rtt_min)
        self.rtt_avg.append(rtt_avg)
        self.rtt_max.append(rtt_max)
        self.vantage_id.append(self._vantages.intern(vantage))

    def build(self) -> FlowBatch:
        # An empty batch still needs a vantage-free, name-free table; the
        # tables stay whatever was interned (possibly nothing).
        return FlowBatch(
            client_id=np.asarray(self.client_id, dtype=np.int64),
            server_ip=np.asarray(self.server_ip, dtype=np.int64),
            client_port=np.asarray(self.client_port, dtype=np.int64),
            server_port=np.asarray(self.server_port, dtype=np.int64),
            transport=np.asarray(self.transport, dtype=np.int64),
            ts_start=np.asarray(self.ts_start, dtype=np.float64),
            ts_end=np.asarray(self.ts_end, dtype=np.float64),
            packets_up=np.asarray(self.packets_up, dtype=np.int64),
            packets_down=np.asarray(self.packets_down, dtype=np.int64),
            bytes_up=np.asarray(self.bytes_up, dtype=np.int64),
            bytes_down=np.asarray(self.bytes_down, dtype=np.int64),
            protocol=np.asarray(self.protocol, dtype=np.int64),
            name_id=np.asarray(self.name_id, dtype=np.int64),
            name_source=np.asarray(self.name_source, dtype=np.int64),
            rtt_samples=np.asarray(self.rtt_samples, dtype=np.int64),
            rtt_min=np.asarray(self.rtt_min, dtype=np.float64),
            rtt_avg=np.asarray(self.rtt_avg, dtype=np.float64),
            rtt_max=np.asarray(self.rtt_max, dtype=np.float64),
            vantage_id=np.asarray(self.vantage_id, dtype=np.int64),
            names=self._names.values(),
            vantages=self._vantages.values(),
        )
