"""Probe software versioning — what the probe could *recognize*, and when.

Keeping pace with protocol evolution is one of the paper's explicit
operational challenges (Section 2.3): large providers deploy undocumented
protocols overnight, and probe software is upgraded to follow.  Two of the
Fig. 8 events are measurement artifacts of exactly this:

* event C (June 2015): the probes start reporting SPDY explicitly —
  before the upgrade those flows were generically labelled HTTPS/TLS;
* event F (November 2016): FB-Zero appears and a recognizer is shipped.

:class:`ProbeCapabilities` encodes the upgrade history so both the packet
probe and the flow-tier generator report protocols exactly as the probe of
that day would have.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.tstat.flow import WebProtocol

SPDY_REPORTING_DATE = datetime.date(2015, 6, 1)
HTTP2_REPORTING_DATE = datetime.date(2015, 6, 1)
FBZERO_REPORTING_DATE = datetime.date(2016, 11, 10)
QUIC_REPORTING_DATE = datetime.date(2014, 8, 1)


@dataclass(frozen=True)
class ProbeCapabilities:
    """Recognition capabilities of the probe software deployed on a date."""

    version: str
    reports_spdy: bool
    reports_http2: bool
    reports_quic: bool
    reports_fbzero: bool

    def reported_label(self, true_protocol: WebProtocol) -> WebProtocol:
        """Map the on-the-wire protocol to what this probe version exports."""
        if true_protocol is WebProtocol.SPDY and not self.reports_spdy:
            return WebProtocol.TLS
        if true_protocol is WebProtocol.HTTP2 and not self.reports_http2:
            return WebProtocol.TLS
        if true_protocol is WebProtocol.FBZERO and not self.reports_fbzero:
            return WebProtocol.TLS
        if true_protocol is WebProtocol.QUIC and not self.reports_quic:
            return WebProtocol.OTHER  # unknown UDP/443 traffic
        return true_protocol


_RELEASES: Tuple[Tuple[datetime.date, str], ...] = (
    (datetime.date(2013, 1, 1), "tstat-2.4"),
    (QUIC_REPORTING_DATE, "tstat-3.0"),
    (SPDY_REPORTING_DATE, "tstat-3.1"),
    (FBZERO_REPORTING_DATE, "tstat-3.2"),
)


def capabilities_on(day: datetime.date) -> ProbeCapabilities:
    """The capabilities of the probe software running on ``day``."""
    version = _RELEASES[0][1]
    for release_date, release_version in _RELEASES:
        if day >= release_date:
            version = release_version
    return ProbeCapabilities(
        version=version,
        reports_spdy=day >= SPDY_REPORTING_DATE,
        reports_http2=day >= HTTP2_REPORTING_DATE,
        reports_quic=day >= QUIC_REPORTING_DATE,
        reports_fbzero=day >= FBZERO_REPORTING_DATE,
    )


@dataclass
class UpgradeLog:
    """Bookkeeping of which versions ran when (exported with probe stats)."""

    deployments: Dict[str, datetime.date] = field(default_factory=dict)

    def record(self, day: datetime.date) -> ProbeCapabilities:
        caps = capabilities_on(day)
        self.deployments.setdefault(caps.version, day)
        return caps
