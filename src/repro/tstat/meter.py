"""The probe's flow meter: packets in, flow records out.

This is the Tstat-equivalent core.  It keeps a table of live flows keyed by
the oriented five-tuple, determines direction from the configured customer
networks (the probe sits at the first aggregation level, so one side of
every flow is a subscriber), meters packets/bytes per direction, runs the
DPI stack on the first payload of each flow, estimates the probe→server
RTT by SEQ/ACK matching, and expires streams "either by the observation of
particular packets (e.g., TCP packets with RST flag set) or by timeouts"
(Section 2.1, footnote 1).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.nettypes.ip import Prefix
from repro.telemetry import runtime as telemetry
from repro.packets.capture import DecodedPacket
from repro.packets.tcp import TcpSegment
from repro.packets.udp import UdpDatagram
from repro.protocols import fbzero, http, quic
from repro.protocols.dns import DnsError, DnsMessage
from repro.protocols.tls import (
    ALPN_HTTP2,
    ALPN_SPDY3,
    ClientHello,
    TlsError,
)
from repro.tstat.dnhunter import DnHunter
from repro.tstat.flow import (
    FlowKey,
    FlowRecord,
    NameSource,
    Transport,
    WebProtocol,
)
from repro.tstat.rtt import RttEstimator
from repro.tstat.versions import ProbeCapabilities, capabilities_on

DEFAULT_IDLE_TIMEOUT = 300.0
DEFAULT_SWEEP_INTERVAL = 1024  # packets between idle sweeps

_WEB_PORTS = frozenset({80, 443, 8080})
_P2P_TCP_PORTS = frozenset(range(6881, 6890)) | {4662, 51413}
_P2P_UDP_PORTS = frozenset({6881, 4672, 51413})
_DNS_PORT = 53


@dataclass
class _FlowState:
    """Mutable per-flow state held while the flow is live."""

    key: FlowKey
    ts_start: float
    ts_end: float
    packets_up: int = 0
    packets_down: int = 0
    bytes_up: int = 0
    bytes_down: int = 0
    true_protocol: WebProtocol = WebProtocol.OTHER
    server_name: Optional[str] = None
    name_source: NameSource = NameSource.NONE
    rtt: RttEstimator = field(default_factory=RttEstimator)
    dpi_done: bool = False
    fin_up: bool = False
    fin_down: bool = False
    saw_rst: bool = False


@dataclass
class MeterStats:
    """Operational counters exported alongside the flow logs."""

    packets: int = 0
    skipped_direction: int = 0
    flows_created: int = 0
    flows_expired_rst: int = 0
    flows_expired_fin: int = 0
    flows_expired_idle: int = 0
    flows_expired_flush: int = 0
    dns_messages: int = 0
    late_packets: int = 0  # trailing segments absorbed in TIME_WAIT
    tcp_retransmissions: int = 0  # client-side retransmitted segments
    dpi_tcp: int = 0  # TCP flows run through the DPI stack
    dpi_udp: int = 0  # UDP flows run through the DPI stack


class FlowMeter:
    """Meters decoded packets into flow records.

    ``client_networks`` lists the subscriber-side prefixes of the PoP; a
    packet whose source lies in them travels *up* (client → server), one
    whose destination does travels *down*.  Packets matching neither or
    both (transit, spoofed) are skipped and counted.
    """

    def __init__(
        self,
        client_networks: List[Prefix],
        capabilities: Optional[ProbeCapabilities] = None,
        dn_hunter: Optional[DnHunter] = None,
        anonymize: Optional[Callable[[int], int]] = None,
        idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
        vantage: str = "pop1",
    ) -> None:
        if not client_networks:
            raise ValueError("at least one client network is required")
        self._client_networks = list(client_networks)
        self._capabilities = capabilities or capabilities_on(
            datetime.date(2017, 12, 31)
        )
        self._dn_hunter = dn_hunter if dn_hunter is not None else DnHunter()
        # `is None`, not truthiness: an empty TableAnonymizer has len() 0.
        self._anonymize = anonymize if anonymize is not None else (lambda address: address)
        self._idle_timeout = idle_timeout
        self._vantage = vantage
        self._flows: Dict[FlowKey, _FlowState] = {}
        self._time_wait: Dict[FlowKey, float] = {}
        self.stats = MeterStats()
        self._packets_since_sweep = 0
        self._clock = 0.0
        self._published: Dict[str, int] = {}

    @property
    def live_flows(self) -> int:
        return len(self._flows)

    def _is_client(self, address: int) -> bool:
        return any(network.contains(address) for network in self._client_networks)

    def process(self, packet: DecodedPacket) -> List[FlowRecord]:
        """Meter one packet; returns flows this packet expired (if any)."""
        self.stats.packets += 1
        self._clock = max(self._clock, packet.timestamp)
        src_is_client = self._is_client(packet.ip.src)
        dst_is_client = self._is_client(packet.ip.dst)
        if src_is_client == dst_is_client:
            self.stats.skipped_direction += 1
            return []
        upstream = src_is_client
        if upstream:
            client_ip, server_ip = packet.ip.src, packet.ip.dst
        else:
            client_ip, server_ip = packet.ip.dst, packet.ip.src
        transport = Transport.TCP if packet.is_tcp else Transport.UDP
        if upstream:
            client_port = packet.transport.src_port
            server_port = packet.transport.dst_port
        else:
            client_port = packet.transport.dst_port
            server_port = packet.transport.src_port
        key = FlowKey(client_ip, server_ip, client_port, server_port, transport)

        state = self._flows.get(key)
        if state is None:
            # Absorb trailing segments of a just-closed connection
            # (TIME_WAIT): the last ACK of a FIN/FIN exchange must not
            # open a new one-packet flow.
            wait_until = self._time_wait.get(key)
            if wait_until is not None:
                if packet.timestamp <= wait_until:
                    self.stats.late_packets += 1
                    return []
                del self._time_wait[key]
            state = _FlowState(key=key, ts_start=packet.timestamp, ts_end=packet.timestamp)
            state.true_protocol = self._initial_protocol(key)
            self._flows[key] = state
            self.stats.flows_created += 1
        state.ts_end = max(state.ts_end, packet.timestamp)

        size = packet.ip.total_len
        if upstream:
            state.packets_up += 1
            state.bytes_up += size
        else:
            state.packets_down += 1
            state.bytes_down += size

        expired: List[FlowRecord] = []
        if packet.is_tcp:
            assert isinstance(packet.transport, TcpSegment)
            self._handle_tcp(state, packet.transport, packet.timestamp, upstream)
            if state.saw_rst:
                expired.append(self._export(state))
                del self._flows[key]
                self._enter_time_wait(key, packet.timestamp)
                self.stats.flows_expired_rst += 1
            elif state.fin_up and state.fin_down:
                expired.append(self._export(state))
                del self._flows[key]
                self._enter_time_wait(key, packet.timestamp)
                self.stats.flows_expired_fin += 1
        else:
            assert isinstance(packet.transport, UdpDatagram)
            self._handle_udp(state, packet.transport, packet.timestamp, upstream, client_ip)

        self._packets_since_sweep += 1
        if self._packets_since_sweep >= DEFAULT_SWEEP_INTERVAL:
            expired.extend(self.expire_idle(self._clock))
        return expired

    def _handle_tcp(
        self, state: _FlowState, segment: TcpSegment, timestamp: float, upstream: bool
    ) -> None:
        if upstream:
            state.rtt.on_client_segment(segment, timestamp)
        else:
            state.rtt.on_server_ack(segment, timestamp)
        if segment.rst:
            state.saw_rst = True
        if segment.fin:
            if upstream:
                state.fin_up = True
            else:
                state.fin_down = True
        if upstream and segment.payload and not state.dpi_done:
            self._dpi_tcp(state, segment.payload)

    def _handle_udp(
        self,
        state: _FlowState,
        datagram: UdpDatagram,
        timestamp: float,
        upstream: bool,
        client_ip: int,
    ) -> None:
        if state.key.server_port == _DNS_PORT:
            state.true_protocol = WebProtocol.DNS
            if not upstream and datagram.payload:
                self._feed_dns(client_ip, datagram.payload, timestamp)
            return
        if upstream and datagram.payload and not state.dpi_done:
            self._dpi_udp(state, datagram.payload)

    def _feed_dns(self, client_ip: int, payload: bytes, timestamp: float) -> None:
        try:
            message = DnsMessage.decode(payload)
        except DnsError:
            return
        self.stats.dns_messages += 1
        self._dn_hunter.on_dns_response(client_ip, message, timestamp)

    def _initial_protocol(self, key: FlowKey) -> WebProtocol:
        if key.transport is Transport.TCP and key.server_port in _P2P_TCP_PORTS:
            return WebProtocol.P2P
        if key.transport is Transport.UDP and key.server_port in _P2P_UDP_PORTS:
            return WebProtocol.P2P
        if key.server_port == _DNS_PORT:
            return WebProtocol.DNS
        return WebProtocol.OTHER

    def _dpi_tcp(self, state: _FlowState, payload: bytes) -> None:
        """Classify from the first upstream payload of a TCP flow."""
        state.dpi_done = True
        self.stats.dpi_tcp += 1
        if state.key.server_port == 80 or http.looks_like_http_request(payload):
            host = http.sniff_host(payload)
            if host or state.key.server_port == 80:
                state.true_protocol = WebProtocol.HTTP
                if host:
                    state.server_name = host
                    state.name_source = NameSource.HOST
                return
        zero_name = fbzero.sniff_zero(payload)
        if zero_name is not None:
            state.true_protocol = WebProtocol.FBZERO
            state.server_name = zero_name
            state.name_source = NameSource.ZERO
            return
        try:
            hello = ClientHello.decode_record(payload)
        except TlsError:
            hello = None
        if hello is not None:
            if ALPN_SPDY3 in hello.alpn:
                state.true_protocol = WebProtocol.SPDY
            elif ALPN_HTTP2 in hello.alpn:
                state.true_protocol = WebProtocol.HTTP2
            else:
                state.true_protocol = WebProtocol.TLS
            if hello.sni:
                state.server_name = hello.sni
                state.name_source = NameSource.SNI
            return
        if state.key.server_port == 443:
            state.true_protocol = WebProtocol.TLS

    def _dpi_udp(self, state: _FlowState, payload: bytes) -> None:
        """Classify from the first upstream payload of a UDP flow."""
        state.dpi_done = True
        self.stats.dpi_udp += 1
        if state.key.server_port == 443:
            sniffed = quic.sniff_quic(payload)
            if sniffed is not None:
                _version, sni = sniffed
                state.true_protocol = WebProtocol.QUIC
                if sni:
                    state.server_name = sni
                    state.name_source = NameSource.QUIC
                return

    def _export(self, state: _FlowState) -> FlowRecord:
        """Finalize a flow: DN-Hunter fallback, label mapping, anonymize."""
        self.stats.tcp_retransmissions += state.rtt.retransmissions
        name = state.server_name
        source = state.name_source
        if name is None:
            hunted = self._dn_hunter.lookup(
                state.key.client_ip, state.key.server_ip, state.ts_start
            )
            if hunted is not None:
                name = hunted
                source = NameSource.DNS
        return FlowRecord(
            client_id=self._anonymize(state.key.client_ip),
            server_ip=state.key.server_ip,
            client_port=state.key.client_port,
            server_port=state.key.server_port,
            transport=state.key.transport,
            ts_start=state.ts_start,
            ts_end=state.ts_end,
            packets_up=state.packets_up,
            packets_down=state.packets_down,
            bytes_up=state.bytes_up,
            bytes_down=state.bytes_down,
            protocol=self._capabilities.reported_label(state.true_protocol),
            server_name=name,
            name_source=source,
            rtt=state.rtt.summary,
            vantage=self._vantage,
        )

    def _enter_time_wait(self, key: FlowKey, now: float) -> None:
        if len(self._time_wait) > 65536:
            self._time_wait.clear()
        self._time_wait[key] = now + 2.0

    def expire_idle(self, now: float) -> List[FlowRecord]:
        """Expire flows idle for longer than the timeout."""
        self._packets_since_sweep = 0
        self._time_wait = {
            key: until for key, until in self._time_wait.items() if until >= now
        }
        idle_keys = [
            key
            for key, state in self._flows.items()
            if now - state.ts_end > self._idle_timeout
        ]
        records = []
        for key in idle_keys:
            records.append(self._export(self._flows.pop(key)))
            self.stats.flows_expired_idle += 1
        return records

    def flush(self) -> List[FlowRecord]:
        """Expire everything (end of trace / end of day rollover)."""
        records = [self._export(state) for state in self._flows.values()]
        self.stats.flows_expired_flush += len(records)
        self._flows.clear()
        return records

    def publish_telemetry(self) -> None:
        """Publish :class:`MeterStats` deltas as ``meter_*`` counters.

        Safe to call repeatedly: only the growth since the previous call
        is counted, so the exported counters stay monotonic even when a
        probe flushes several times per day.
        """
        stats = vars(self.stats)
        for name in sorted(stats):
            value = stats[name]
            delta = value - self._published.get(name, 0)
            if delta:
                telemetry.count(f"meter_{name}", delta, vantage=self._vantage)
                self._published[name] = value
