"""The probe's flow meter: packets in, flow records out.

This is the Tstat-equivalent core.  It keeps a table of live flows keyed by
the oriented five-tuple, determines direction from the configured customer
networks (the probe sits at the first aggregation level, so one side of
every flow is a subscriber), meters packets/bytes per direction, runs the
DPI stack on the first payload of each flow, estimates the probe→server
RTT by SEQ/ACK matching, and expires streams "either by the observation of
particular packets (e.g., TCP packets with RST flag set) or by timeouts"
(Section 2.1, footnote 1).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.nettypes.ip import Prefix
from repro.telemetry import runtime as telemetry
from repro.packets.capture import DecodedPacket
from repro.packets.tcp import FLAG_ACK, FLAG_FIN, FLAG_RST, SEQ_MODULUS, TcpSegment

if TYPE_CHECKING:  # imported lazily to keep the meter importable sans NumPy
    import numpy as np

    from repro.packets.batch import PacketBatch
from repro.protocols import fbzero, http, quic
from repro.protocols.dns import DnsError, DnsMessage
from repro.protocols.tls import (
    ALPN_HTTP2,
    ALPN_SPDY3,
    ClientHello,
    TlsError,
)
from repro.tstat.dnhunter import DnHunter
from repro.tstat.flow import (
    FlowKey,
    FlowRecord,
    NameSource,
    Transport,
    WebProtocol,
)
from repro.tstat.rtt import RttEstimator
from repro.tstat.versions import ProbeCapabilities, capabilities_on

DEFAULT_IDLE_TIMEOUT = 300.0
DEFAULT_SWEEP_INTERVAL = 1024  # packets between idle sweeps

def _packet_payload(packet: DecodedPacket) -> bytes:
    """Payload accessor for the scalar :meth:`FlowMeter.process` path."""
    return packet.transport.payload


_WEB_PORTS = frozenset({80, 443, 8080})
_P2P_TCP_PORTS = frozenset(range(6881, 6890)) | {4662, 51413}
_P2P_UDP_PORTS = frozenset({6881, 4672, 51413})
_DNS_PORT = 53


@dataclass
class _FlowState:
    """Mutable per-flow state held while the flow is live."""

    key: FlowKey
    ts_start: float
    ts_end: float
    packets_up: int = 0
    packets_down: int = 0
    bytes_up: int = 0
    bytes_down: int = 0
    true_protocol: WebProtocol = WebProtocol.OTHER
    server_name: Optional[str] = None
    name_source: NameSource = NameSource.NONE
    rtt: RttEstimator = field(default_factory=RttEstimator)
    dpi_done: bool = False
    fin_up: bool = False
    fin_down: bool = False
    saw_rst: bool = False


@dataclass
class MeterStats:
    """Operational counters exported alongside the flow logs."""

    packets: int = 0
    skipped_direction: int = 0
    flows_created: int = 0
    flows_expired_rst: int = 0
    flows_expired_fin: int = 0
    flows_expired_idle: int = 0
    flows_expired_flush: int = 0
    dns_messages: int = 0
    late_packets: int = 0  # trailing segments absorbed in TIME_WAIT
    tcp_retransmissions: int = 0  # client-side retransmitted segments
    dpi_tcp: int = 0  # TCP flows run through the DPI stack
    dpi_udp: int = 0  # UDP flows run through the DPI stack


class FlowMeter:
    """Meters decoded packets into flow records.

    ``client_networks`` lists the subscriber-side prefixes of the PoP; a
    packet whose source lies in them travels *up* (client → server), one
    whose destination does travels *down*.  Packets matching neither or
    both (transit, spoofed) are skipped and counted.
    """

    def __init__(
        self,
        client_networks: List[Prefix],
        capabilities: Optional[ProbeCapabilities] = None,
        dn_hunter: Optional[DnHunter] = None,
        anonymize: Optional[Callable[[int], int]] = None,
        idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
        vantage: str = "pop1",
    ) -> None:
        if not client_networks:
            raise ValueError("at least one client network is required")
        self._client_networks = list(client_networks)
        self._capabilities = capabilities or capabilities_on(
            datetime.date(2017, 12, 31)
        )
        self._dn_hunter = dn_hunter if dn_hunter is not None else DnHunter()
        # `is None`, not truthiness: an empty TableAnonymizer has len() 0.
        self._anonymize = anonymize if anonymize is not None else (lambda address: address)
        self._idle_timeout = idle_timeout
        self._vantage = vantage
        # (network, netmask) pairs for the vectorised membership test
        self._network_masks = tuple(
            (network.network, network.mask()) for network in self._client_networks
        )
        # The flow table is keyed by a plain int tuple
        # (client_ip, server_ip, client_port, server_port, is_tcp) —
        # tuples of ints hash in C, which the packet path feels; the full
        # FlowKey lives on the state for export.
        self._flows: Dict[tuple, _FlowState] = {}
        self._time_wait: Dict[tuple, float] = {}
        self.stats = MeterStats()
        self._packets_since_sweep = 0
        self._clock = 0.0
        self._published: Dict[str, int] = {}

    @property
    def live_flows(self) -> int:
        return len(self._flows)

    def _is_client(self, address: int) -> bool:
        return any(
            (address & netmask) == network for network, netmask in self._network_masks
        )

    def _client_mask(self, addresses) -> "np.ndarray":
        """Vectorised membership test over an int64 address column."""
        import numpy as np

        mask = np.zeros(addresses.shape, dtype=bool)
        for network, netmask in self._network_masks:
            mask |= (addresses & netmask) == network
        return mask

    def process(self, packet: DecodedPacket) -> List[FlowRecord]:
        """Meter one packet; returns flows this packet expired (if any)."""
        transport = packet.transport
        is_tcp = isinstance(transport, TcpSegment)
        if is_tcp:
            seq, ack, flags = transport.seq, transport.ack, transport.flags
        else:
            seq = ack = flags = 0
        return self._process_fields(
            packet.timestamp,
            packet.ip.src,
            packet.ip.dst,
            self._is_client(packet.ip.src),
            self._is_client(packet.ip.dst),
            is_tcp,
            transport.src_port,
            transport.dst_port,
            packet.ip.total_len,
            seq,
            ack,
            flags,
            len(transport.payload),
            _packet_payload,
            packet,
        )

    def process_batch(self, batch: "PacketBatch") -> List[FlowRecord]:
        """Meter one decoded batch; returns every flow the batch expired.

        Behaviourally identical to calling :meth:`process` on each packet
        in capture order — same records, same order, same counters, same
        sweep cadence — but consumes the batch's plain-integer columns,
        slicing payload bytes out of the shared buffer only when the
        DPI/DNS stages need them.
        """
        records: List[FlowRecord] = []
        process_fields = self._process_fields
        payload_of = batch.payload
        src_client = self._client_mask(batch.ip_src).tolist()
        dst_client = self._client_mask(batch.ip_dst).tolist()
        timestamps = batch.timestamps.tolist()
        ip_src = batch.ip_src.tolist()
        ip_dst = batch.ip_dst.tolist()
        is_tcp = batch.is_tcp.tolist()
        src_port = batch.src_port.tolist()
        dst_port = batch.dst_port.tolist()
        size = batch.ip_total_len.tolist()
        seq = batch.seq.tolist()
        ack = batch.ack.tolist()
        flags = batch.flags.tolist()
        payload_len = batch.payload_len.tolist()
        for row in range(batch.count):
            expired = process_fields(
                timestamps[row],
                ip_src[row],
                ip_dst[row],
                src_client[row],
                dst_client[row],
                is_tcp[row],
                src_port[row],
                dst_port[row],
                size[row],
                seq[row],
                ack[row],
                flags[row],
                payload_len[row],
                payload_of,
                row,
            )
            if expired:
                records.extend(expired)
        return records

    def _process_fields(
        self,
        timestamp: float,
        ip_src: int,
        ip_dst: int,
        src_is_client: bool,
        dst_is_client: bool,
        is_tcp: bool,
        t_src_port: int,
        t_dst_port: int,
        size: int,
        seq: int,
        ack: int,
        flags: int,
        payload_len: int,
        payload_of: Callable,
        token,
    ) -> List[FlowRecord]:
        """Shared metering core on plain fields (scalar and batch paths).

        ``payload_of(token)`` materialises the transport payload bytes; it
        is only invoked when the DPI or DNS stages actually need them.
        """
        self.stats.packets += 1
        if timestamp > self._clock:
            self._clock = timestamp
        if src_is_client == dst_is_client:
            self.stats.skipped_direction += 1
            return []
        upstream = src_is_client
        if upstream:
            client_ip, server_ip = ip_src, ip_dst
            client_port, server_port = t_src_port, t_dst_port
        else:
            client_ip, server_ip = ip_dst, ip_src
            client_port, server_port = t_dst_port, t_src_port
        key = (client_ip, server_ip, client_port, server_port, is_tcp)

        state = self._flows.get(key)
        if state is None:
            # Absorb trailing segments of a just-closed connection
            # (TIME_WAIT): the last ACK of a FIN/FIN exchange must not
            # open a new one-packet flow.
            wait_until = self._time_wait.get(key)
            if wait_until is not None:
                if timestamp <= wait_until:
                    self.stats.late_packets += 1
                    return []
                del self._time_wait[key]
            flow_key = FlowKey(
                client_ip,
                server_ip,
                client_port,
                server_port,
                Transport.TCP if is_tcp else Transport.UDP,
            )
            state = _FlowState(key=flow_key, ts_start=timestamp, ts_end=timestamp)
            state.true_protocol = self._initial_protocol(flow_key)
            self._flows[key] = state
            self.stats.flows_created += 1
        if timestamp > state.ts_end:
            state.ts_end = timestamp

        if upstream:
            state.packets_up += 1
            state.bytes_up += size
        else:
            state.packets_down += 1
            state.bytes_down += size

        expired: List[FlowRecord] = []
        if is_tcp:
            rtt = state.rtt
            if upstream:
                # sequence space = payload + SYN + FIN (see TcpSegment)
                space = payload_len + ((flags >> 1) & 1) + (flags & 1)
                if space:
                    rtt.note_sent((seq + space) % SEQ_MODULUS, timestamp)
            elif flags & FLAG_ACK:
                rtt.note_ack(ack, timestamp)
            if flags & FLAG_RST:
                state.saw_rst = True
            if flags & FLAG_FIN:
                if upstream:
                    state.fin_up = True
                else:
                    state.fin_down = True
            if upstream and payload_len and not state.dpi_done:
                self._dpi_tcp(state, payload_of(token))
            if state.saw_rst:
                expired.append(self._export(state))
                del self._flows[key]
                self._enter_time_wait(key, timestamp)
                self.stats.flows_expired_rst += 1
            elif state.fin_up and state.fin_down:
                expired.append(self._export(state))
                del self._flows[key]
                self._enter_time_wait(key, timestamp)
                self.stats.flows_expired_fin += 1
        elif server_port == _DNS_PORT:
            state.true_protocol = WebProtocol.DNS
            if not upstream and payload_len:
                self._feed_dns(client_ip, payload_of(token), timestamp)
        elif upstream and payload_len and not state.dpi_done:
            self._dpi_udp(state, payload_of(token))

        self._packets_since_sweep += 1
        if self._packets_since_sweep >= DEFAULT_SWEEP_INTERVAL:
            expired.extend(self.expire_idle(self._clock))
        return expired

    def _feed_dns(self, client_ip: int, payload: bytes, timestamp: float) -> None:
        try:
            message = DnsMessage.decode(payload)
        except DnsError:
            return
        self.stats.dns_messages += 1
        self._dn_hunter.on_dns_response(client_ip, message, timestamp)

    def _initial_protocol(self, key: FlowKey) -> WebProtocol:
        if key.transport is Transport.TCP and key.server_port in _P2P_TCP_PORTS:
            return WebProtocol.P2P
        if key.transport is Transport.UDP and key.server_port in _P2P_UDP_PORTS:
            return WebProtocol.P2P
        if key.server_port == _DNS_PORT:
            return WebProtocol.DNS
        return WebProtocol.OTHER

    def _dpi_tcp(self, state: _FlowState, payload: bytes) -> None:
        """Classify from the first upstream payload of a TCP flow."""
        state.dpi_done = True
        self.stats.dpi_tcp += 1
        if state.key.server_port == 80 or http.looks_like_http_request(payload):
            host = http.sniff_host(payload)
            if host or state.key.server_port == 80:
                state.true_protocol = WebProtocol.HTTP
                if host:
                    state.server_name = host
                    state.name_source = NameSource.HOST
                return
        zero_name = fbzero.sniff_zero(payload)
        if zero_name is not None:
            state.true_protocol = WebProtocol.FBZERO
            state.server_name = zero_name
            state.name_source = NameSource.ZERO
            return
        try:
            hello = ClientHello.decode_record(payload)
        except TlsError:
            hello = None
        if hello is not None:
            if ALPN_SPDY3 in hello.alpn:
                state.true_protocol = WebProtocol.SPDY
            elif ALPN_HTTP2 in hello.alpn:
                state.true_protocol = WebProtocol.HTTP2
            else:
                state.true_protocol = WebProtocol.TLS
            if hello.sni:
                state.server_name = hello.sni
                state.name_source = NameSource.SNI
            return
        if state.key.server_port == 443:
            state.true_protocol = WebProtocol.TLS

    def _dpi_udp(self, state: _FlowState, payload: bytes) -> None:
        """Classify from the first upstream payload of a UDP flow."""
        state.dpi_done = True
        self.stats.dpi_udp += 1
        if state.key.server_port == 443:
            sniffed = quic.sniff_quic(payload)
            if sniffed is not None:
                _version, sni = sniffed
                state.true_protocol = WebProtocol.QUIC
                if sni:
                    state.server_name = sni
                    state.name_source = NameSource.QUIC
                return

    def _export(self, state: _FlowState) -> FlowRecord:
        """Finalize a flow: DN-Hunter fallback, label mapping, anonymize."""
        self.stats.tcp_retransmissions += state.rtt.retransmissions
        name = state.server_name
        source = state.name_source
        if name is None:
            hunted = self._dn_hunter.lookup(
                state.key.client_ip, state.key.server_ip, state.ts_start
            )
            if hunted is not None:
                name = hunted
                source = NameSource.DNS
        return FlowRecord(
            client_id=self._anonymize(state.key.client_ip),
            server_ip=state.key.server_ip,
            client_port=state.key.client_port,
            server_port=state.key.server_port,
            transport=state.key.transport,
            ts_start=state.ts_start,
            ts_end=state.ts_end,
            packets_up=state.packets_up,
            packets_down=state.packets_down,
            bytes_up=state.bytes_up,
            bytes_down=state.bytes_down,
            protocol=self._capabilities.reported_label(state.true_protocol),
            server_name=name,
            name_source=source,
            rtt=state.rtt.summary,
            vantage=self._vantage,
        )

    def _enter_time_wait(self, key: tuple, now: float) -> None:
        if len(self._time_wait) > 65536:
            self._time_wait.clear()
        self._time_wait[key] = now + 2.0

    def expire_idle(self, now: float) -> List[FlowRecord]:
        """Expire flows idle for longer than the timeout."""
        self._packets_since_sweep = 0
        self._time_wait = {
            key: until for key, until in self._time_wait.items() if until >= now
        }
        idle_keys = [
            key
            for key, state in self._flows.items()
            if now - state.ts_end > self._idle_timeout
        ]
        records = []
        for key in idle_keys:
            records.append(self._export(self._flows.pop(key)))
            self.stats.flows_expired_idle += 1
        return records

    def flush(self) -> List[FlowRecord]:
        """Expire everything (end of trace / end of day rollover)."""
        records = [self._export(state) for state in self._flows.values()]
        self.stats.flows_expired_flush += len(records)
        self._flows.clear()
        return records

    def publish_telemetry(self) -> None:
        """Publish :class:`MeterStats` deltas as ``meter_*`` counters.

        Safe to call repeatedly: only the growth since the previous call
        is counted, so the exported counters stay monotonic even when a
        probe flushes several times per day.
        """
        stats = vars(self.stats)
        for name in sorted(stats):
            value = stats[name]
            delta = value - self._published.get(name, 0)
            if delta:
                telemetry.count(f"meter_{name}", delta, vantage=self._vantage)
                self._published[name] = value
