"""The Tstat-equivalent passive probe and its export formats.

Submodules: ``probe`` (deployment wrapper), ``meter`` (flow table + DPI),
``rtt`` (SEQ/ACK estimation), ``dnhunter`` (DNS-based naming), ``flow``
(record schema), ``logs`` (native gzip TSV logs), ``ipfix`` / ``netflow``
(collector formats), ``versions`` (probe capability history), ``outages``
(failure calendar).
"""
