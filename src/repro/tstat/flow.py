"""Flow-record schema — the single data unit the probes export.

Each monitored TCP/UDP stream becomes one :class:`FlowRecord` with the
fields the paper relies on (Section 2.1): anonymized client id, byte/packet
counters per direction, the server name (with its source: SNI, HTTP Host,
QUIC/Zero handshake, or DN-Hunter), the application-protocol label, and the
probe-to-server RTT summary (min/avg/max and sample count).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class Transport(enum.Enum):
    """Layer-4 protocol of the flow."""

    TCP = "tcp"
    UDP = "udp"


class WebProtocol(enum.Enum):
    """Application-protocol labels of Fig. 8, plus non-web buckets.

    ``TLS`` is the generic HTTPS label; ``SPDY``/``HTTP2`` are refinements
    derived from ALPN, ``QUIC`` and ``FBZERO`` from their own handshakes.
    """

    HTTP = "http"
    TLS = "tls"
    SPDY = "spdy"
    HTTP2 = "http/2"
    QUIC = "quic"
    FBZERO = "fb-zero"
    DNS = "dns"
    P2P = "p2p"
    OTHER = "other"

    @property
    def is_web(self) -> bool:
        return self in _WEB_PROTOCOLS


_WEB_PROTOCOLS = frozenset(
    {
        WebProtocol.HTTP,
        WebProtocol.TLS,
        WebProtocol.SPDY,
        WebProtocol.HTTP2,
        WebProtocol.QUIC,
        WebProtocol.FBZERO,
    }
)


class NameSource(enum.Enum):
    """Where the flow's server name came from, in decreasing priority."""

    SNI = "sni"
    HOST = "host"
    QUIC = "quic"
    ZERO = "zero"
    DNS = "dns"  # DN-Hunter
    NONE = "none"


@dataclass(frozen=True)
class FlowKey:
    """Bidirectional five-tuple, oriented client → server."""

    client_ip: int
    server_ip: int
    client_port: int
    server_port: int
    transport: Transport

    def reversed(self) -> "FlowKey":
        return FlowKey(
            client_ip=self.server_ip,
            server_ip=self.client_ip,
            client_port=self.server_port,
            server_port=self.client_port,
            transport=self.transport,
        )


@dataclass
class RttSummary:
    """Per-flow RTT statistics, probe → server (access delay excluded)."""

    samples: int = 0
    min_ms: float = 0.0
    avg_ms: float = 0.0
    max_ms: float = 0.0

    def add(self, sample_ms: float) -> None:
        if self.samples == 0:
            self.min_ms = self.max_ms = self.avg_ms = sample_ms
        else:
            self.min_ms = min(self.min_ms, sample_ms)
            self.max_ms = max(self.max_ms, sample_ms)
            self.avg_ms += (sample_ms - self.avg_ms) / (self.samples + 1)
        self.samples += 1

    def as_tuple(self) -> Tuple[int, float, float, float]:
        return (self.samples, self.min_ms, self.avg_ms, self.max_ms)


@dataclass
class FlowRecord:
    """One exported flow record (one line of the probe's flow log)."""

    client_id: int  # anonymized subscriber identifier
    server_ip: int  # server addresses are kept: needed for ASN analysis
    client_port: int
    server_port: int
    transport: Transport
    ts_start: float
    ts_end: float
    packets_up: int = 0
    packets_down: int = 0
    bytes_up: int = 0
    bytes_down: int = 0
    protocol: WebProtocol = WebProtocol.OTHER
    server_name: Optional[str] = None
    name_source: NameSource = NameSource.NONE
    rtt: RttSummary = field(default_factory=RttSummary)
    vantage: str = "pop1"

    @property
    def duration(self) -> float:
        return max(0.0, self.ts_end - self.ts_start)

    @property
    def total_bytes(self) -> int:
        return self.bytes_up + self.bytes_down

    def second_level_domain(self) -> Optional[str]:
        """The registrable-ish domain used by the Fig. 11 domain panels."""
        if not self.server_name:
            return None
        return second_level_domain(self.server_name)


def second_level_domain(name: str) -> str:
    """Reduce a FQDN to its last two labels (three under known ccSLDs).

    This mirrors the paper's per-second-level-domain traffic shares
    (Fig. 11g-i): ``r3---sn.googlevideo.com`` → ``googlevideo.com``.
    """
    labels = name.rstrip(".").lower().split(".")
    if len(labels) <= 2:
        return ".".join(labels)
    if labels[-1] in _CC_TLDS_WITH_SLD and labels[-2] in _COMMON_SLDS:
        return ".".join(labels[-3:])
    return ".".join(labels[-2:])


_CC_TLDS_WITH_SLD = frozenset({"uk", "au", "nz", "jp", "br"})
_COMMON_SLDS = frozenset({"co", "com", "net", "org", "ac", "gov"})
