"""DN-Hunter: naming flows from the DNS traffic that preceded them.

Implements the mechanism of Bermudez et al. (IMC'12) as used by the paper's
probes: every DNS response observed on the link populates a per-client
cache mapping resolved server address → queried name; when a later flow
from that client to that address carries no in-band name (no SNI, no Host),
the probe exports the cached name instead (Section 2.1, footnote 2: the
vantage points see all DNS traffic, to any resolver).

The cache is bounded per client (LRU) and entries respect the record TTL
with a grace period, because OS resolvers keep using expired entries for a
short while.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from repro.protocols.dns import DnsMessage

_DEFAULT_CAPACITY = 4096
_TTL_GRACE_SECONDS = 60.0


@dataclass
class _Entry:
    name: str
    expires_at: float


class DnHunter:
    """Per-client DNS-derived (server address → name) cache."""

    def __init__(self, capacity_per_client: int = _DEFAULT_CAPACITY) -> None:
        if capacity_per_client <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity_per_client
        self._caches: Dict[int, "OrderedDict[int, _Entry]"] = {}
        self.responses_seen = 0
        self.hits = 0
        self.misses = 0

    def on_dns_response(
        self, client_ip: int, message: DnsMessage, timestamp: float
    ) -> None:
        """Record every A answer of a response addressed to ``client_ip``."""
        if not message.is_response:
            return
        self.responses_seen += 1
        cache = self._caches.get(client_ip)
        if cache is None:
            cache = OrderedDict()
            self._caches[client_ip] = cache
        min_ttl = min(
            (record.ttl for record in message.answers), default=0
        )
        expires_at = timestamp + float(min_ttl) + _TTL_GRACE_SECONDS
        for name, address in message.resolved_addresses():
            cache.pop(address, None)
            cache[address] = _Entry(name=name, expires_at=expires_at)
            if len(cache) > self._capacity:
                cache.popitem(last=False)

    def lookup(
        self, client_ip: int, server_ip: int, timestamp: float
    ) -> Optional[str]:
        """Name the client resolved for ``server_ip``, if fresh enough."""
        cache = self._caches.get(client_ip)
        if cache is None:
            self.misses += 1
            return None
        entry = cache.get(server_ip)
        if entry is None or timestamp > entry.expires_at:
            if entry is not None:
                del cache[server_ip]
            self.misses += 1
            return None
        cache.move_to_end(server_ip)
        self.hits += 1
        return entry.name

    def clients_tracked(self) -> int:
        return len(self._caches)
