"""The passive probe: capture → decode → meter → anonymize → flow log.

Glues the capture-path decoder, the flow meter, DN-Hunter and the
anonymizer into the single object deployed per PoP, mirroring Figure 1 of
the paper.  Feed it captured frames (or an iterable of them) and collect
flow records; optionally stream them straight to a flow log on disk.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.nettypes.anonymize import TableAnonymizer
from repro.nettypes.ip import Prefix
from repro.packets.batch import DEFAULT_BATCH_SIZE, iter_decoded_batches
from repro.packets.capture import CapturedPacket, DecodeStats, FrameDecoder
from repro.tstat.dnhunter import DnHunter
from repro.tstat.flow import FlowRecord
from repro.tstat.logs import FlowLogWriter
from repro.tstat.meter import FlowMeter, MeterStats
from repro.tstat.versions import ProbeCapabilities, capabilities_on


@dataclass(frozen=True)
class ProbeConfig:
    """Deployment configuration of one probe."""

    vantage: str
    client_networks: tuple
    software_date: datetime.date = datetime.date(2017, 12, 31)
    idle_timeout: float = 300.0

    @classmethod
    def for_pop(
        cls,
        vantage: str,
        client_networks: Iterable[Union[str, Prefix]],
        software_date: datetime.date = datetime.date(2017, 12, 31),
    ) -> "ProbeConfig":
        parsed = tuple(
            network if isinstance(network, Prefix) else Prefix.parse(network)
            for network in client_networks
        )
        return cls(
            vantage=vantage, client_networks=parsed, software_date=software_date
        )


class Probe:
    """One deployed passive probe."""

    def __init__(self, config: ProbeConfig) -> None:
        self.config = config
        self.capabilities: ProbeCapabilities = capabilities_on(config.software_date)
        self.decoder = FrameDecoder()
        self.dn_hunter = DnHunter()
        self.anonymizer = TableAnonymizer()
        self.meter = FlowMeter(
            client_networks=list(config.client_networks),
            capabilities=self.capabilities,
            dn_hunter=self.dn_hunter,
            anonymize=self.anonymizer,
            idle_timeout=config.idle_timeout,
            vantage=config.vantage,
        )

    @property
    def decode_stats(self) -> DecodeStats:
        return self.decoder.stats

    @property
    def meter_stats(self) -> MeterStats:
        return self.meter.stats

    def feed(self, packet: CapturedPacket) -> List[FlowRecord]:
        """Process one captured frame; returns any flows it expired."""
        decoded = self.decoder.decode(packet)
        if decoded is None:
            return []
        return self.meter.process(decoded)

    def run(
        self,
        packets: Iterable[CapturedPacket],
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> List[FlowRecord]:
        """Process a whole capture and flush remaining flows at the end.

        The capture is decoded in vectorised batches (see
        :mod:`repro.packets.batch`); results, counters and error strings
        are identical to feeding packets one at a time.
        """
        records: List[FlowRecord] = []
        for batch in iter_decoded_batches(self.decoder, packets, batch_size):
            records.extend(self.meter.process_batch(batch))
        records.extend(self.meter.flush())
        self.meter.publish_telemetry()
        return records

    def run_to_log(
        self,
        packets: Iterable[CapturedPacket],
        path: Union[str, Path],
        batch_size: int = DEFAULT_BATCH_SIZE,
        restart_after: Optional[int] = None,
    ) -> int:
        """Process a capture, writing records straight to a flow log.

        Returns the number of records written.  This is the daily export
        path of the real deployment: records never accumulate in memory.
        The export carries a sidecar integrity manifest, so corruption
        picked up in transit to the lake is detectable on arrival.

        ``restart_after`` injects the mid-day probe restart the paper's
        deployment lived with (Section 2.3 outages): after that many
        records the writer is abandoned — records on disk, *no* manifest,
        flows in the meter lost — and :class:`ProbeRestart` is raised.
        Downstream, the unverified log must route through quarantine or
        degraded-day admission, never into the study as a full day.
        """
        writer = FlowLogWriter(path, manifest=True)
        try:
            for batch in iter_decoded_batches(self.decoder, packets, batch_size):
                for record in self.meter.process_batch(batch):
                    writer.write(record)
                    if (
                        restart_after is not None
                        and writer.records_written >= restart_after
                    ):
                        writer.abandon()
                        raise ProbeRestart(
                            str(path), writer.records_written
                        )
            writer.write_all(self.meter.flush())
            self.meter.publish_telemetry()
        except ProbeRestart:
            raise
        except BaseException:
            writer.abandon()
            raise
        else:
            writer.close()
        return writer.records_written


class ProbeRestart(RuntimeError):
    """A probe died mid-export: the flow log on disk is unverified.

    Carries the partial log's path and how many records made it out, so
    the chaos conductor (and operators) can route the truncated export
    through the lake's quarantine/admission machinery.
    """

    def __init__(self, path: str, records_written: int) -> None:
        super().__init__(
            f"probe restarted mid-export after {records_written} record(s); "
            f"unverified flow log left at {path}"
        )
        self.path = path
        self.records_written = records_written
