"""Baseline files: adopting the linter on a codebase with known debt.

A baseline is a JSON inventory of findings that existed when the gate was
introduced.  ``repro lint --baseline FILE`` subtracts baselined findings
from the report so only *new* violations fail; ``--write-baseline``
snapshots the current findings.  Matching is line-insensitive (see
:meth:`Finding.baseline_key`) and count-aware: two identical findings need
two baseline entries, so debt cannot silently grow behind one entry.
"""

from __future__ import annotations

import collections
import json
from pathlib import Path
from typing import Counter, Iterable, List, Tuple, Union

from repro.quality.findings import Finding

_VERSION = 1


class BaselineError(ValueError):
    """Raised for malformed baseline files."""


def write_baseline(path: Union[str, Path], findings: Iterable[Finding]) -> Path:
    """Snapshot ``findings`` (sorted, line numbers dropped from identity)."""
    path = Path(path)
    entries = [
        {"rule": rule, "path": rel_path, "message": message}
        for rule, rel_path, message in sorted(
            finding.baseline_key() for finding in findings
        )
    ]
    payload = {"version": _VERSION, "findings": entries}
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def load_baseline(path: Union[str, Path]) -> Counter[Tuple[str, str, str]]:
    """Baseline keys with multiplicity, for count-aware subtraction."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or "findings" not in payload:
        raise BaselineError(f"{path}: not a baseline file (missing 'findings')")
    version = payload.get("version", _VERSION)
    if version > _VERSION:
        raise BaselineError(f"{path}: unsupported baseline version {version}")
    keys: Counter[Tuple[str, str, str]] = collections.Counter()
    for entry in payload["findings"]:
        try:
            keys[(str(entry["rule"]), str(entry["path"]), str(entry["message"]))] += 1
        except (TypeError, KeyError) as exc:
            raise BaselineError(f"{path}: malformed entry {entry!r}") from exc
    return keys


def subtract_baseline(
    findings: Iterable[Finding],
    baseline: Counter[Tuple[str, str, str]],
) -> List[Finding]:
    """Findings not accounted for by the baseline (order preserved)."""
    remaining = collections.Counter(baseline)
    fresh: List[Finding] = []
    for finding in findings:
        key = finding.baseline_key()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            fresh.append(finding)
    return fresh
