"""The analysis engine: files → ASTs → rules → reported findings.

One :class:`Analyzer` run parses each target file once, hands the shared
:class:`FileContext` to every applicable rule, filters the raw findings
through in-source suppressions (``# repro: noqa[...]``) and the optional
baseline, and renders the survivors as text or JSON.

Whole-program facts (today: the fork-worker import closure for RPR004)
live on the run-wide :class:`LintContext` and are computed lazily, so a
``--select RPR001`` run never parses the import graph.
"""

from __future__ import annotations

import ast
import dataclasses
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.quality.baseline import load_baseline, subtract_baseline
from repro.quality.callgraph import ProjectFacts, file_sha, project_digest
from repro.quality.findings import Finding, LintError, Severity, sort_findings
from repro.quality.importgraph import ImportGraph, fork_closure
from repro.quality.registry import Rule, make_rules
from repro.quality.suppressions import (
    Suppression,
    SuppressionError,
    parse_suppressions,
)

if False:  # pragma: no cover - import for type checkers only
    from repro.quality.cache import LintCache


@dataclasses.dataclass(frozen=True)
class LintConfig:
    """What to analyze and how the repo-specific rules are anchored."""

    src_root: Path
    #: Top-level package under ``src_root`` analyzed by default.
    package: str = "repro"
    #: ``module:function`` whose import closure defines the fork-worker
    #: memory image (RPR004).  Verified against the AST, never hard-coded.
    fork_entry: str = "repro.core.parallel:_run_chunk"
    #: Path fragments scoping the wall-clock ban (RPR001).
    wallclock_scopes: Tuple[str, ...] = (
        "synthesis",
        "analytics",
        "figures",
        "core",
        "dataflow",
        "tstat",
        "telemetry",
        "service",
    )
    #: Files exempt from the wall-clock ban (RPR001), as relative-path
    #: suffixes.  The telemetry clock is the single sanctioned
    #: ``perf_counter`` site: everything else reads time through its
    #: :class:`~repro.telemetry.clock.Clock` protocol.
    wallclock_allowlist: Tuple[str, ...] = ("repro/telemetry/clock.py",)
    #: Path fragments scoping the float-accumulation rule (RPR005).
    floatsum_scopes: Tuple[str, ...] = ("figures", "analytics", "core")
    #: Modules whose write APIs are anonymization sinks (RPR003).
    sink_modules: Tuple[str, ...] = ("repro.reporting.export", "repro.tstat.logs")
    #: Path fragments scoping the silent-exception-swallow rule (RPR007):
    #: the data and compute planes — plus telemetry (a swallowed error
    #: there silently zeroes an operator's metrics) and the linter itself
    #: (dogfooding: the gatekeeper meets its own bar).
    swallow_scopes: Tuple[str, ...] = (
        "dataflow",
        "tstat",
        "core",
        "telemetry",
        "quality",
        "service",
    )
    #: Typed-error contracts (RPR009): ``module:function`` entry points
    #: mapped to the exception families allowed to escape them.  Decode
    #: paths surface only :class:`~repro.dataflow.integrity.
    #: RecordDecodeError` subclasses; the pool path surfaces only
    #: :class:`~repro.core.parallel.ChunkError`, the typed
    #: :class:`~repro.core.pool.PoolError` family, and argument
    #: validation ``ValueError``.  Entries whose module is absent under
    #: the analysis root are skipped (fixture trees).
    error_contracts: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
        (
            "repro.tstat.logs:parse_record",
            ("repro.dataflow.integrity:RecordDecodeError",),
        ),
        (
            "repro.tstat.logs:read_flow_log",
            ("repro.dataflow.integrity:RecordDecodeError",),
        ),
        (
            "repro.tstat.ipfix:parse_ipfix",
            ("repro.dataflow.integrity:RecordDecodeError",),
        ),
        (
            "repro.tstat.netflow:parse_netflow_v5",
            ("repro.dataflow.integrity:RecordDecodeError",),
        ),
        (
            "repro.core.parallel:execute_study",
            (
                "repro.core.parallel:ChunkError",
                "repro.core.parallel:RunCancelled",
                "repro.core.pool:PoolError",
                "builtins:ValueError",
            ),
        ),
        # The control plane's HTTP boundary: everything a request can
        # surface is a ServiceError subclass (the server maps ApiError to
        # its status code and anything else to a typed 500) — a naked
        # ValueError here would turn a bad request into a traceback.
        (
            "repro.service.api:handle_request",
            ("repro.service.errors:ServiceError",),
        ),
    )
    #: Resource factories (RPR010): a call whose last name component
    #: matches must be settled — ``with``-managed, released by the named
    #: method on every path, or handed off — before the function exits.
    resource_factories: Tuple[Tuple[str, str], ...] = (
        ("open", "close"),
        ("Pipe", "close"),
        ("TextIOWrapper", "close"),
        ("GzipFile", "close"),
        ("SupervisedPool", "stop"),
        # The service client opens one HTTP connection per request; every
        # edge (bad status, torn read, timeout) must close the socket.
        ("HTTPConnection", "close"),
    )
    select: Tuple[str, ...] = ()


def default_config() -> LintConfig:
    """Configuration for the repo's own ``src/`` tree."""
    package_dir = Path(__file__).resolve().parent.parent
    return LintConfig(src_root=package_dir.parent)


class LintContext:
    """Run-wide state shared by all files of one analysis."""

    def __init__(
        self, config: LintConfig, cache: Optional["LintCache"] = None
    ) -> None:
        self.config = config
        self.cache = cache
        self.graph = ImportGraph(config.src_root)
        self._fork_closure: Optional[Set[str]] = None
        self._facts: Optional[ProjectFacts] = None
        #: Scratch space for rules that precompute whole-program results
        #: once and attribute findings per file (RPR008/RPR009), keyed by
        #: rule id.
        self.memo: Dict[str, object] = {}

    def fork_modules(self) -> Set[str]:
        """Modules a fork worker executes (lazy; raises LintError if the
        configured entry point does not resolve to a real function)."""
        if self._fork_closure is None:
            try:
                self._fork_closure = fork_closure(
                    self.config.src_root, self.config.fork_entry
                )
            except ValueError as exc:
                raise LintError(str(exc)) from exc
        return self._fork_closure

    def facts(self) -> ProjectFacts:
        """The whole-program fact store (symbol tables + call graph),
        built lazily and fed from the incremental cache when one is
        attached — a warm run deserializes summaries instead of parsing."""
        if self._facts is None:
            self._facts = ProjectFacts.build(
                self.config.src_root, self.config.package, cache=self.cache
            )
        return self._facts


class FileContext:
    """One parsed file plus everything rules need to inspect it."""

    def __init__(
        self,
        ctx: LintContext,
        path: Path,
        source: str,
        tree: ast.Module,
    ) -> None:
        self.ctx = ctx
        self.path = path
        self.source = source
        self.tree = tree
        self.module = ctx.graph.path_module(path)
        try:
            relative = path.resolve().relative_to(ctx.config.src_root.resolve())
            self.relpath = relative.as_posix()
        except ValueError:
            self.relpath = path.as_posix()
        self._suppressions: Optional[Dict[int, Suppression]] = None

    def suppressions(self) -> Dict[int, Suppression]:
        if self._suppressions is None:
            self._suppressions = parse_suppressions(self.source)
        return self._suppressions

    def in_scope(self, scopes: Sequence[str]) -> bool:
        """True when the file's relative path crosses any scope fragment."""
        parts = set(Path(self.relpath).parts)
        return any(scope in parts for scope in scopes)


class Analyzer:
    """Runs the registered rules over a source tree."""

    def __init__(
        self,
        config: Optional[LintConfig] = None,
        rules: Optional[Sequence[Rule]] = None,
        cache: Optional["LintCache"] = None,
    ) -> None:
        self.config = config or default_config()
        self.rules: List[Rule] = (
            list(rules) if rules is not None else make_rules(self.config.select)
        )
        self.cache = cache
        self.context = LintContext(self.config, cache=cache)

    # ------------------------------------------------------------------

    def target_files(
        self, paths: Optional[Iterable[Union[str, Path]]] = None
    ) -> List[Path]:
        if paths is None:
            base = self.config.src_root / self.config.package
            if not base.is_dir():
                base = self.config.src_root
            return sorted(base.rglob("*.py"))
        files: List[Path] = []
        for entry in paths:
            entry = Path(entry)
            if entry.is_dir():
                files.extend(sorted(entry.rglob("*.py")))
            elif entry.is_file():
                files.append(entry)
            else:
                raise LintError(f"no such file or directory: {entry}")
        return files

    def analyze(
        self, paths: Optional[Iterable[Union[str, Path]]] = None
    ) -> List[Finding]:
        """All non-suppressed findings over the target files, sorted.

        With a cache attached, each file's findings are reused when
        neither the file nor the project digest (any analyzed file, the
        configuration, the rule set) changed — a fully warm run hashes
        files and renders, running zero rules.
        """
        files = self.target_files(paths)
        if self.cache is None:
            findings: List[Finding] = []
            for path in files:
                findings.extend(self.analyze_file(path))
            return sort_findings(findings)
        digest = project_digest(
            self.config.src_root, self.config.package, self._fingerprint()
        )
        findings = []
        for path in files:
            relpath = self._relpath(path)
            sha = file_sha(path)
            cached = self.cache.findings_for(relpath, sha, digest)
            if cached is not None:
                findings.extend(Finding.from_dict(entry) for entry in cached)
                continue
            fresh = self.analyze_file(path)
            self.cache.store_findings(
                relpath, sha, digest, [finding.to_dict() for finding in fresh]
            )
            findings.extend(fresh)
        self.cache.save()
        return sort_findings(findings)

    def _fingerprint(self) -> str:
        """Configuration + rule-set identity folded into the cache key."""
        rule_ids = ",".join(sorted(rule.rule_id for rule in self.rules))
        return f"{self.config!r}|{rule_ids}"

    def _relpath(self, path: Path) -> str:
        try:
            return (
                path.resolve()
                .relative_to(self.config.src_root.resolve())
                .as_posix()
            )
        except ValueError:
            return path.as_posix()

    def analyze_file(self, path: Union[str, Path]) -> List[Finding]:
        path = Path(path)
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            return [
                Finding(
                    path=str(path),
                    line=exc.lineno or 1,
                    column=(exc.offset or 1) - 1,
                    rule_id="RPR000",
                    severity=Severity.ERROR,
                    message=f"syntax error: {exc.msg}",
                )
            ]
        file_ctx = FileContext(self.context, path, source, tree)
        raw: List[Finding] = []
        for rule in self.rules:
            if not rule.applies_to(file_ctx):
                continue
            raw.extend(rule.check(file_ctx))
        try:
            return self._apply_suppressions(file_ctx, raw)
        except SuppressionError as exc:
            # A malformed directive is itself a finding: reporting it at
            # the offending line beats silently not suppressing.
            raw.append(
                Finding(
                    path=file_ctx.relpath,
                    line=exc.line,
                    column=0,
                    rule_id="RPR000",
                    severity=Severity.ERROR,
                    message=f"malformed suppression: {exc}",
                )
            )
            return raw

    def _apply_suppressions(
        self, file_ctx: FileContext, findings: List[Finding]
    ) -> List[Finding]:
        directives = file_ctx.suppressions()
        if not directives:
            return findings
        by_id = {rule.rule_id: rule for rule in self.rules}
        kept: List[Finding] = []
        for finding in findings:
            directive = directives.get(finding.line)
            rule = by_id.get(finding.rule_id)
            requires_reason = rule.requires_justification if rule else False
            if directive and directive.covers(
                finding.rule_id, require_reason=requires_reason
            ):
                continue
            kept.append(finding)
        return kept


# ----------------------------------------------------------------------
# One-call entry points used by the CLI and the tests.


def run_lint(
    paths: Optional[Iterable[Union[str, Path]]] = None,
    config: Optional[LintConfig] = None,
    baseline: Optional[Union[str, Path]] = None,
    cache: Optional[Union[str, Path]] = None,
) -> List[Finding]:
    from repro.quality.cache import open_cache

    analyzer = Analyzer(config=config, cache=open_cache(cache))
    findings = analyzer.analyze(paths)
    if baseline is not None:
        findings = subtract_baseline(findings, load_baseline(baseline))
    return findings


def render_text(findings: Sequence[Finding]) -> str:
    if not findings:
        return "repro lint: clean (0 findings)"
    lines = [finding.render() for finding in findings]
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    lines.append(
        f"repro lint: {len(findings)} finding(s) "
        f"({errors} error(s), {warnings} warning(s))"
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    payload = {
        "findings": [finding.to_dict() for finding in findings],
        "summary": {
            "total": len(findings),
            "errors": sum(1 for f in findings if f.severity is Severity.ERROR),
            "warnings": sum(
                1 for f in findings if f.severity is Severity.WARNING
            ),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)
