"""Rule base class and registry.

Rules are small classes: an id, a severity, the invariant they protect,
and a ``check`` over one parsed file.  They register themselves with the
:func:`register` decorator so the engine, the CLI ``--select`` filter,
and the documentation all draw from one catalogue.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Callable, Dict, Iterable, Iterator, List, Type

from repro.quality.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.quality.engine import FileContext


class Rule:
    """One invariant checker; subclasses override :meth:`check`."""

    rule_id: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    #: The design-level invariant this rule protects (used in docs/reports).
    invariant: str = ""
    #: When True, a ``# repro: noqa[...]`` for this rule only counts if it
    #: carries a written justification.
    requires_justification: bool = False

    def applies_to(self, file_ctx: "FileContext") -> bool:
        return True

    def check(self, file_ctx: "FileContext") -> Iterator[Finding]:
        raise NotImplementedError

    # Helper for subclasses -------------------------------------------------
    def finding(
        self, file_ctx: "FileContext", node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=file_ctx.relpath,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global catalogue."""
    if not rule_class.rule_id:
        raise ValueError(f"{rule_class.__name__} has no rule_id")
    existing = _REGISTRY.get(rule_class.rule_id)
    if existing is not None and existing is not rule_class:
        raise ValueError(f"duplicate rule id {rule_class.rule_id}")
    _REGISTRY[rule_class.rule_id] = rule_class
    return rule_class


def registered_rules() -> Dict[str, Type[Rule]]:
    """The catalogue (id → class), loading the built-in rules on demand."""
    # Imported here so registering is a side effect of first use, not of
    # importing repro.quality.registry (which the rules themselves import).
    from repro.quality import rules as _builtin  # noqa: F401

    return dict(_REGISTRY)


def make_rules(select: Iterable[str] = ()) -> List[Rule]:
    """Instantiate rules; ``select`` narrows to the given ids."""
    catalogue = registered_rules()
    wanted = [rule_id.upper() for rule_id in select] or sorted(catalogue)
    unknown = [rule_id for rule_id in wanted if rule_id not in catalogue]
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(unknown)}")
    return [catalogue[rule_id]() for rule_id in wanted]


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for an attribute/name chain, or ``""`` if not one."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def call_name(node: ast.Call) -> str:
    """Dotted name of a call's callee (``""`` for computed callees)."""
    return dotted_name(node.func)


def walk_in_order(tree: ast.AST) -> Iterator[ast.AST]:
    """AST nodes sorted by source position (stable for linear passes)."""
    positioned = [
        node
        for node in ast.walk(tree)
        if hasattr(node, "lineno") and hasattr(node, "col_offset")
    ]
    positioned.sort(key=lambda node: (node.lineno, node.col_offset))
    return iter(positioned)


def module_level_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Top-level statements, descending into module-level if/try blocks
    (their bodies still execute at import time)."""

    def expand(statements: Iterable[ast.stmt]) -> Iterator[ast.stmt]:
        for statement in statements:
            yield statement
            if isinstance(statement, ast.If):
                yield from expand(statement.body)
                yield from expand(statement.orelse)
            elif isinstance(statement, ast.Try):
                yield from expand(statement.body)
                yield from expand(statement.orelse)
                yield from expand(statement.finalbody)
                for handler in statement.handlers:
                    yield from expand(handler.body)

    return expand(tree.body)


def function_scopes(tree: ast.Module) -> Iterator[ast.AST]:
    """The module itself plus every function/method body, innermost last."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


ScopeVisitor = Callable[[ast.AST], Iterator[Finding]]
