"""The whole-program layer: module summaries → a resolved call graph.

:class:`ProjectFacts` indexes every :class:`~repro.quality.symbols.
ModuleSummary` under the analysis root and answers the questions the
interprocedural rules ask:

* **name resolution** — a dotted call name in one module resolved to the
  function that actually runs, through the import map (module aliases,
  ``from`` imports, relative imports), local classes (``self.method``
  and locally-constructed instances arrive pre-rewritten to
  ``Cls.method`` by the extractor), and base-class method lookup;
* **reachability** — the set of functions transitively callable from a
  set of roots (RPR008's worker side is everything reachable from the
  fork entry; its import-time side is everything reachable from
  module-level call sites);
* **exception escape sets** — a fixpoint over the graph: a function's
  escapes are its own uncaught explicit raises plus every callee escape
  not subtracted by the ``except`` guards around the call site, with
  subclass checks against the project + builtin exception hierarchy
  (RPR009).  Dynamic raises the extractor could not type are dropped —
  the contract rule reasons about *typed* escapes only;
* **non-determinism taint** — which functions return wall-clock or
  unseeded-RNG derived values, propagated through helper chains
  (RPR011).

Everything here is derived from cached per-module facts; building the
index parses nothing when the cache is warm.
"""

from __future__ import annotations

import ast
import hashlib
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.quality.symbols import (
    ANALYSIS_VERSION,
    FunctionInfo,
    ModuleSummary,
    nondet_source,
    summarize_module,
)

#: (module, qualname) — one function in the project.
FuncId = Tuple[str, str]
#: (module, class name) — one exception class; module "builtins" for stdlib.
ClassId = Tuple[str, str]

#: The builtin exception tree (child → parent), as far as the rules need.
_BUILTIN_PARENT: Dict[str, str] = {
    "Exception": "BaseException",
    "ArithmeticError": "Exception",
    "AssertionError": "Exception",
    "AttributeError": "Exception",
    "BufferError": "Exception",
    "EOFError": "Exception",
    "ImportError": "Exception",
    "LookupError": "Exception",
    "MemoryError": "Exception",
    "NameError": "Exception",
    "OSError": "Exception",
    "ReferenceError": "Exception",
    "RuntimeError": "Exception",
    "StopIteration": "Exception",
    "StopAsyncIteration": "Exception",
    "SyntaxError": "Exception",
    "SystemError": "Exception",
    "TypeError": "Exception",
    "ValueError": "Exception",
    "Warning": "Exception",
    "FloatingPointError": "ArithmeticError",
    "OverflowError": "ArithmeticError",
    "ZeroDivisionError": "ArithmeticError",
    "ModuleNotFoundError": "ImportError",
    "IndexError": "LookupError",
    "KeyError": "LookupError",
    "UnboundLocalError": "NameError",
    "BlockingIOError": "OSError",
    "ChildProcessError": "OSError",
    "ConnectionError": "OSError",
    "BrokenPipeError": "ConnectionError",
    "ConnectionAbortedError": "ConnectionError",
    "ConnectionRefusedError": "ConnectionError",
    "ConnectionResetError": "ConnectionError",
    "FileExistsError": "OSError",
    "FileNotFoundError": "OSError",
    "InterruptedError": "OSError",
    "IsADirectoryError": "OSError",
    "NotADirectoryError": "OSError",
    "PermissionError": "OSError",
    "ProcessLookupError": "OSError",
    "TimeoutError": "OSError",
    "NotImplementedError": "RuntimeError",
    "RecursionError": "RuntimeError",
    "UnicodeError": "ValueError",
    "UnicodeDecodeError": "UnicodeError",
    "UnicodeEncodeError": "UnicodeError",
    "GeneratorExit": "BaseException",
    "KeyboardInterrupt": "BaseException",
    "SystemExit": "BaseException",
}


def file_sha(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


class ProjectFacts:
    """Index over every module summary under one analysis root."""

    def __init__(
        self,
        summaries: Dict[str, ModuleSummary],
        packages: Set[str],
        relpaths: Dict[str, str],
    ) -> None:
        self.modules = summaries
        self._packages = packages
        self._relpaths = relpaths
        self._escapes: Optional[Dict[FuncId, Dict[ClassId, Tuple[str, int]]]] = None
        self._subclass_memo: Dict[Tuple[ClassId, ClassId], bool] = {}
        self._resolve_memo: Dict[Tuple[str, str], Optional[FuncId]] = {}

    # ------------------------------------------------------------------
    # construction

    @classmethod
    def build(cls, src_root: Path, package: str, cache=None) -> "ProjectFacts":
        """Summarize every module under ``src_root/package`` (the whole
        root when the package directory is absent), reusing per-file
        facts from ``cache`` (a :class:`~repro.quality.cache.LintCache`)
        keyed by content hash."""
        src_root = Path(src_root)
        base = src_root / package if package else src_root
        if not base.is_dir():
            base = src_root
        summaries: Dict[str, ModuleSummary] = {}
        packages: Set[str] = set()
        relpaths: Dict[str, str] = {}
        for path in sorted(base.rglob("*.py")):
            relative = path.resolve().relative_to(src_root.resolve())
            parts = list(relative.parts)
            if parts[-1] == "__init__.py":
                parts = parts[:-1]
                is_package = True
            else:
                parts[-1] = parts[-1][: -len(".py")]
                is_package = False
            module = ".".join(parts)
            if not module:
                continue
            relkey = relative.as_posix()
            sha = file_sha(path)
            summary: Optional[ModuleSummary] = None
            if cache is not None:
                data = cache.facts_for(relkey, sha)
                if data is not None:
                    summary = ModuleSummary.from_dict(data)
            if summary is None:
                tree = ast.parse(
                    path.read_text(encoding="utf-8"), filename=str(path)
                )
                summary = summarize_module(module, tree)
                if cache is not None:
                    cache.store_facts(relkey, sha, summary.to_dict())
            summaries[module] = summary
            relpaths[module] = relkey
            if is_package:
                packages.add(module)
        return cls(summaries, packages, relpaths)

    def module_relpath(self, module: str) -> str:
        return self._relpaths.get(module, "")

    # ------------------------------------------------------------------
    # name resolution

    def _package_of(self, module: str) -> str:
        return module if module in self._packages else module.rpartition(".")[0]

    def _resolve_import(self, module: str, local: str):
        """``("mod", target)`` / ``("sym", module, symbol)`` / ``None``."""
        summary = self.modules.get(module)
        if summary is None:
            return None
        target = summary.imports.get(local)
        if target is None:
            return None
        if ":" not in target:
            return ("mod", target) if target in self.modules else None
        source, _, symbol = target.partition(":")
        if source.startswith("."):
            level = len(source) - len(source.lstrip("."))
            rest = source.lstrip(".")
            base_parts = self._package_of(module).split(".")
            if level - 1 > 0:
                base_parts = base_parts[: len(base_parts) - (level - 1)]
            if not base_parts or not base_parts[0]:
                return None
            source = ".".join(base_parts + ([rest] if rest else []))
        submodule = f"{source}.{symbol}" if source else symbol
        if submodule in self.modules:
            return ("mod", submodule)
        if source in self.modules:
            return ("sym", source, symbol)
        return None

    def resolve_class(self, module: str, name: str) -> Optional[ClassId]:
        """The class a type name refers to inside ``module``."""
        parts = name.split(".")
        summary = self.modules.get(module)
        if summary is None:
            return None
        if len(parts) == 1:
            if name in summary.classes:
                return (module, name)
            imported = self._resolve_import(module, name)
            if imported is not None and imported[0] == "sym":
                _, source, symbol = imported
                if symbol in self.modules[source].classes:
                    return (source, symbol)
            if name in _BUILTIN_PARENT or name == "BaseException":
                return ("builtins", name)
            return None
        imported = self._resolve_import(module, parts[0])
        if imported is not None and imported[0] == "mod" and len(parts) == 2:
            target = imported[1]
            if parts[1] in self.modules[target].classes:
                return (target, parts[1])
        # datetime.date-style externals fall through.
        if parts[-1] in _BUILTIN_PARENT:
            return ("builtins", parts[-1])
        return None

    def is_exception_subclass(self, cid: ClassId, base: ClassId) -> bool:
        """True when ``cid`` is ``base`` or inherits from it."""
        key = (cid, base)
        memo = self._subclass_memo.get(key)
        if memo is not None:
            return memo
        self._subclass_memo[key] = False  # cycle guard
        result = self._is_subclass(cid, base)
        self._subclass_memo[key] = result
        return result

    def _is_subclass(self, cid: ClassId, base: ClassId) -> bool:
        if cid == base:
            return True
        module, name = cid
        if module == "builtins":
            parent = _BUILTIN_PARENT.get(name)
            return parent is not None and self.is_exception_subclass(
                ("builtins", parent), base
            )
        bases = self.modules.get(module, ModuleSummary(module)).classes.get(name, ())
        for base_name in bases:
            parent = self.resolve_class(module, base_name)
            if parent is not None and self.is_exception_subclass(parent, base):
                return True
        return False

    def resolve_call(self, module: str, name: str) -> Optional[FuncId]:
        """The project function a call name in ``module`` lands on."""
        key = (module, name)
        if key in self._resolve_memo:
            return self._resolve_memo[key]
        self._resolve_memo[key] = None  # cycle guard for inherited lookups
        result = self._resolve_call(module, name)
        self._resolve_memo[key] = result
        return result

    def _resolve_call(self, module: str, name: str) -> Optional[FuncId]:
        summary = self.modules.get(module)
        if summary is None:
            return None
        parts = name.split(".")
        head = parts[0]
        if len(parts) == 1:
            if name in summary.functions:
                return (module, name)
            if name in summary.classes:
                return self._constructor((module, name))
            imported = self._resolve_import(module, name)
            if imported is not None and imported[0] == "sym":
                _, source, symbol = imported
                return self._resolve_call_in(source, symbol)
            return None
        if head in summary.classes:
            return self._method_on_class((module, head), parts[1:])
        imported = self._resolve_import(module, head)
        if imported is not None:
            if imported[0] == "mod":
                target = imported[1]
                return self._resolve_call_in(target, ".".join(parts[1:]))
            _, source, symbol = imported
            if symbol in self.modules[source].classes:
                return self._method_on_class((source, symbol), parts[1:])
        return None

    def _resolve_call_in(self, module: str, name: str) -> Optional[FuncId]:
        summary = self.modules.get(module)
        if summary is None:
            return None
        parts = name.split(".")
        if len(parts) == 1:
            if name in summary.functions:
                return (module, name)
            if name in summary.classes:
                return self._constructor((module, name))
            return None
        if parts[0] in summary.classes:
            return self._method_on_class((module, parts[0]), parts[1:])
        return None

    def _constructor(self, cid: ClassId) -> Optional[FuncId]:
        return self._method_on_class(cid, ["__init__"])

    def _method_on_class(
        self, cid: ClassId, method_parts: Sequence[str]
    ) -> Optional[FuncId]:
        module, cls = cid
        summary = self.modules.get(module)
        if summary is None or cls not in summary.classes:
            return None
        qualname = ".".join([cls, *method_parts])
        if qualname in summary.functions:
            return (module, qualname)
        for base_name in summary.classes[cls]:
            parent = self.resolve_class(module, base_name)
            if parent is None or parent[0] == "builtins":
                continue
            found = self._method_on_class(parent, method_parts)
            if found is not None:
                return found
        return None

    # ------------------------------------------------------------------
    # reachability

    def reachable(self, roots: Iterable[FuncId]) -> Set[FuncId]:
        """Functions transitively callable from ``roots``."""
        seen: Set[FuncId] = set()
        stack = [fid for fid in roots if self._function(fid) is not None]
        while stack:
            fid = stack.pop()
            if fid in seen:
                continue
            seen.add(fid)
            info = self._function(fid)
            if info is None:
                continue
            for call in info.calls:
                target = self.resolve_call(fid[0], call.name)
                if target is not None and target not in seen:
                    stack.append(target)
        return seen

    def entry_function(self, entry: str) -> Optional[FuncId]:
        """``module:function`` → a FuncId, if the function exists."""
        module, _, function = entry.partition(":")
        info = self.modules.get(module)
        if info is not None and function in info.functions:
            return (module, function)
        return None

    def import_time_roots(self, modules: Iterable[str]) -> List[FuncId]:
        """Functions invoked by module-level statements of ``modules``."""
        roots: List[FuncId] = []
        for module in modules:
            summary = self.modules.get(module)
            if summary is None:
                continue
            for name in summary.module_calls:
                target = self.resolve_call(module, name)
                if target is not None:
                    roots.append(target)
        return roots

    def _function(self, fid: FuncId) -> Optional[FunctionInfo]:
        summary = self.modules.get(fid[0])
        return summary.functions.get(fid[1]) if summary else None

    # ------------------------------------------------------------------
    # exception escape analysis

    def escapes(self, fid: FuncId) -> Dict[ClassId, Tuple[str, int]]:
        """Exception classes escaping ``fid`` → (origin module, line)."""
        if self._escapes is None:
            self._escapes = self._escape_fixpoint()
        return self._escapes.get(fid, {})

    def _escape_fixpoint(self) -> Dict[FuncId, Dict[ClassId, Tuple[str, int]]]:
        escapes: Dict[FuncId, Dict[ClassId, Tuple[str, int]]] = {}
        functions: List[Tuple[FuncId, FunctionInfo]] = [
            ((module, qualname), info)
            for module, summary in self.modules.items()
            for qualname, info in summary.functions.items()
        ]
        for fid, info in functions:
            escapes[fid] = self._direct_escapes(fid[0], info)
        changed = True
        while changed:
            changed = False
            for fid, info in functions:
                current = escapes[fid]
                for call in info.calls:
                    target = self.resolve_call(fid[0], call.name)
                    if target is None:
                        continue
                    for cid, witness in escapes.get(target, {}).items():
                        if cid in current:
                            continue
                        if self._caught(cid, call.guards, fid[0]):
                            continue
                        current[cid] = witness
                        changed = True
        return escapes

    def _direct_escapes(
        self, module: str, info: FunctionInfo
    ) -> Dict[ClassId, Tuple[str, int]]:
        out: Dict[ClassId, Tuple[str, int]] = {}
        for site in info.raises:
            names = site.reraise_of if site.reraise_of else (site.type_name,)
            for name in names:
                if not name or name == "*":
                    continue
                if site.reraise_of and name in ("BaseException", "Exception"):
                    # A bare ``raise`` in a catch-all handler passes
                    # through whatever the protected block raised; the
                    # typed escapes of those calls are already tracked
                    # at their own sites, so the catch-all itself adds
                    # no *typed* escape.
                    continue
                cid = self.resolve_class(module, name)
                if cid is None:
                    continue
                if self._caught(cid, site.guards, module):
                    continue
                out.setdefault(cid, (module, site.line))
        return out

    def _caught(
        self, cid: ClassId, guards: Tuple[str, ...], module: str
    ) -> bool:
        for guard in guards:
            if guard == "*":
                return True
            gid = self.resolve_class(module, guard)
            if gid is not None and self.is_exception_subclass(cid, gid):
                return True
        return False

    # ------------------------------------------------------------------
    # non-determinism taint

    def nondet_functions(
        self, allowlist: Tuple[str, ...] = ()
    ) -> Dict[FuncId, str]:
        """Functions whose return value derives from a wall-clock or
        unseeded-RNG read, with the reason — helper chains included.
        Files matching an ``allowlist`` suffix (the sanctioned telemetry
        clock) are not sources."""
        tainted: Dict[FuncId, str] = {}
        for module, summary in self.modules.items():
            relpath = self.module_relpath(module)
            if any(relpath.endswith(entry) for entry in allowlist):
                continue
            for qualname, info in summary.functions.items():
                if info.nondet_return:
                    tainted[(module, qualname)] = info.nondet_reason
        changed = True
        while changed:
            changed = False
            for module, summary in self.modules.items():
                for qualname, info in summary.functions.items():
                    fid = (module, qualname)
                    if fid in tainted:
                        continue
                    for callee in info.return_calls:
                        target = self.resolve_call(module, callee)
                        if target is not None and target in tainted:
                            tainted[fid] = (
                                f"returns the result of `{callee}()` — "
                                + tainted[target]
                            )
                            changed = True
                            break
        return tainted


def project_digest(
    src_root: Path, package: str, fingerprint: str
) -> str:
    """A hash of every analyzed file's content plus the run fingerprint
    (config + rule ids) — the cache key for whole-program findings."""
    src_root = Path(src_root)
    base = src_root / package if package else src_root
    if not base.is_dir():
        base = src_root
    digest = hashlib.sha256()
    digest.update(f"analysis:{ANALYSIS_VERSION}\n".encode())
    digest.update(fingerprint.encode())
    for path in sorted(base.rglob("*.py")):
        relative = path.resolve().relative_to(src_root.resolve()).as_posix()
        digest.update(f"{relative}:{file_sha(path)}\n".encode())
    return digest.hexdigest()
