"""The incremental lint cache: warm runs skip parsing and analysis.

Two tiers, both keyed by content:

* **facts** — one :class:`~repro.quality.symbols.ModuleSummary` per
  module, keyed by the file's SHA-256.  Summaries are pure functions of
  the file bytes, so editing one module invalidates exactly one entry;
  the call graph is rebuilt from summaries (cheap) while unchanged
  modules are never re-parsed.
* **findings** — the per-file finding list, keyed by the file's SHA-256
  *and* a project digest covering every analyzed file, the configuration,
  the selected rules, and :data:`~repro.quality.symbols.ANALYSIS_VERSION`.
  Interprocedural rules make any file's findings a function of the whole
  program, so a single edit anywhere re-runs the rules — but against
  cached facts, and a fully warm run re-runs nothing.

The store is one JSON file written atomically (temp file +
``os.replace``), so a killed run can never leave a torn cache; a cache
that fails to load for any reason is treated as cold, never as an error.
Byte-identical findings warm vs cold is asserted in CI (the
``lint-cache`` job) and in the tier-1 suite.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.quality.symbols import ANALYSIS_VERSION

_CACHE_VERSION = 1


@dataclass
class CacheStats:
    """What one analysis run reused vs recomputed (for tests and CI)."""

    facts_reused: int = 0
    facts_computed: int = 0
    findings_reused: int = 0
    findings_computed: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "facts_reused": self.facts_reused,
            "facts_computed": self.facts_computed,
            "findings_reused": self.findings_reused,
            "findings_computed": self.findings_computed,
        }


@dataclass
class LintCache:
    """On-disk facts + findings store, loaded leniently, saved atomically."""

    path: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.path = Path(self.path)
        self._facts: Dict[str, Dict[str, object]] = {}
        self._findings: Dict[str, Dict[str, object]] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
            if (
                payload.get("cache_version") != _CACHE_VERSION
                or payload.get("analysis_version") != ANALYSIS_VERSION
            ):
                return  # stale schema: start cold
            facts = payload.get("facts", {})
            findings = payload.get("findings", {})
            if isinstance(facts, dict) and isinstance(findings, dict):
                self._facts = facts
                self._findings = findings
        except (OSError, ValueError, TypeError, AttributeError):
            # Unreadable or corrupt caches are cold caches, never errors:
            # the worst outcome of a torn cache must be a slow run.
            return

    # ------------------------------------------------------------------
    # facts tier (per-module summaries, content-addressed)

    def facts_for(self, relpath: str, sha: str) -> Optional[Dict[str, object]]:
        entry = self._facts.get(relpath)
        if isinstance(entry, dict) and entry.get("sha") == sha:
            self.stats.facts_reused += 1
            summary = entry.get("summary")
            return summary if isinstance(summary, dict) else None
        return None

    def store_facts(
        self, relpath: str, sha: str, summary: Dict[str, object]
    ) -> None:
        self.stats.facts_computed += 1
        self._facts[relpath] = {"sha": sha, "summary": summary}
        self._dirty = True

    # ------------------------------------------------------------------
    # findings tier (per-file, keyed by file sha + whole-program digest)

    def findings_for(
        self, relpath: str, sha: str, project_digest: str
    ) -> Optional[List[Dict[str, object]]]:
        entry = self._findings.get(relpath)
        if (
            isinstance(entry, dict)
            and entry.get("sha") == sha
            and entry.get("project") == project_digest
            and isinstance(entry.get("findings"), list)
        ):
            self.stats.findings_reused += 1
            return entry["findings"]  # type: ignore[return-value]
        return None

    def store_findings(
        self,
        relpath: str,
        sha: str,
        project_digest: str,
        findings: List[Dict[str, object]],
    ) -> None:
        self.stats.findings_computed += 1
        self._findings[relpath] = {
            "sha": sha,
            "project": project_digest,
            "findings": findings,
        }
        self._dirty = True

    # ------------------------------------------------------------------

    def save(self) -> None:
        """Atomic write: a concurrent reader sees the old cache or the
        new one, never a torn file."""
        if not self._dirty:
            return
        payload = {
            "cache_version": _CACHE_VERSION,
            "analysis_version": ANALYSIS_VERSION,
            "facts": self._facts,
            "findings": self._findings,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            mode="w",
            encoding="utf-8",
            dir=str(self.path.parent),
            prefix=self.path.name + ".",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(handle.name, self.path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self._dirty = False


def open_cache(path: Optional[Union[str, Path]]) -> Optional[LintCache]:
    """``LintCache`` at ``path``, or ``None`` when caching is off."""
    return LintCache(Path(path)) if path is not None else None
