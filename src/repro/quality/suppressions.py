"""In-source suppressions: ``# repro: noqa[RULE,...]`` directives.

A directive on a line suppresses the named rules *on that line only*,
matching how the repo's invariants are argued: each exception is visible
next to the code it excuses.  Rules may demand a justification — written
after the bracket, e.g.::

    REGISTRY = {}  # repro: noqa[RPR004] -- populated once at import, then read-only

Suppressions without the required justification do not apply (the finding
is still reported), so "I silenced it" always comes with "because".
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Sequence

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\[(?P<rules>[A-Za-z0-9_,\s]+)\]"
    r"(?:\s*(?:--|:)?\s*(?P<reason>\S.*))?"
)


@dataclass(frozen=True)
class Suppression:
    """One noqa directive: which rules it silences, on which line, and why."""

    line: int
    rule_ids: Sequence[str]
    reason: str

    def covers(self, rule_id: str, require_reason: bool = False) -> bool:
        if rule_id.upper() not in self.rule_ids:
            return False
        if require_reason and not self.reason:
            return False
        return True


def parse_suppressions(source: str) -> Dict[int, Suppression]:
    """All noqa directives in ``source``, keyed by 1-based line number.

    Parsing is lexical (a regex over raw lines), which means a directive
    inside a string literal would also count; in exchange the directive
    survives any AST transformation and needs no tokenizer round-trip.
    """
    directives: Dict[int, Suppression] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        rules = tuple(
            part.strip().upper()
            for part in match.group("rules").split(",")
            if part.strip()
        )
        reason = (match.group("reason") or "").strip()
        directives[lineno] = Suppression(line=lineno, rule_ids=rules, reason=reason)
    return directives


def directive_lines(source: str, rule_id: str) -> List[int]:
    """Lines whose directive names ``rule_id`` (diagnostics helper)."""
    return [
        line
        for line, suppression in parse_suppressions(source).items()
        if rule_id.upper() in suppression.rule_ids
    ]
