"""In-source suppressions: ``# repro: noqa[RULE,...]`` directives.

A directive on a line suppresses the named rules *on that line only*,
matching how the repo's invariants are argued: each exception is visible
next to the code it excuses.  Rules may demand a justification — written
after the bracket, e.g.::

    REGISTRY = {}  # repro: noqa[RPR004] -- populated once at import, then read-only

Suppressions without the required justification do not apply (the finding
is still reported), so "I silenced it" always comes with "because".
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.quality.findings import LintError

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\[(?P<rules>[A-Za-z0-9_,\s]+)\]"
    r"(?:\s*(?:--|:)?\s*(?P<reason>\S.*))?"
)

#: A directive was *started* — anything after ``# repro:`` that mentions
#: noqa — but does not parse.  (The ``\s*`` escapes keep this pattern's
#: own source line from matching itself.)
_NOQA_HINT_RE = re.compile(r"#\s*repro:\s*noqa\b")

#: Rule ids are ``RPR`` + digits (case-insensitive); anything else inside
#: the brackets is a typo that would otherwise silently not suppress.
_RULE_ID_RE = re.compile(r"^[A-Za-z]{3}\d{3}$")


class SuppressionError(LintError):
    """A ``# repro: noqa`` directive that does not parse.

    A typoed directive is worse than a missing one: the author believes
    the finding is silenced while the gate still fires (or, worse, a
    *different* rule id is silenced).  Carrying the 1-based source line
    lets the engine surface the problem as a finding at that line.
    """

    def __init__(self, message: str, line: int) -> None:
        super().__init__(message)
        self.line = line


@dataclass(frozen=True)
class Suppression:
    """One noqa directive: which rules it silences, on which line, and why."""

    line: int
    rule_ids: Sequence[str]
    reason: str

    def covers(self, rule_id: str, require_reason: bool = False) -> bool:
        if rule_id.upper() not in self.rule_ids:
            return False
        if require_reason and not self.reason:
            return False
        return True


def parse_suppressions(source: str) -> Dict[int, Suppression]:
    """All noqa directives in ``source``, keyed by 1-based line number.

    Parsing is lexical (a regex over raw lines), which means a directive
    inside a string literal would also count; in exchange the directive
    survives any AST transformation and needs no tokenizer round-trip.

    A line that *starts* a directive but does not parse — missing or
    unbalanced brackets, empty brackets, tokens that are not rule ids —
    raises :class:`SuppressionError` naming the line.  Never a bare
    ``AttributeError``/``IndexError``: the fuzz tests feed this function
    arbitrary garbage and expect typed errors or clean parses only.
    """
    directives: Dict[int, Suppression] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(text)
        if match is None:
            hint = _NOQA_HINT_RE.search(text)
            # Backtick-quoted mentions are documentation (``# repro:
            # noqa[...]`` in docstrings), not directives.
            if hint and not (hint.start() > 0 and text[hint.start() - 1] == "`"):
                raise SuppressionError(
                    f"directive {text.strip()!r} does not parse — expected "
                    "`# repro: noqa[RULE,...] -- reason`",
                    line=lineno,
                )
            continue
        rules = tuple(
            part.strip().upper()
            for part in match.group("rules").split(",")
            if part.strip()
        )
        if not rules:
            raise SuppressionError(
                "noqa directive with empty brackets suppresses nothing",
                line=lineno,
            )
        bad = [rule for rule in rules if not _RULE_ID_RE.match(rule)]
        if bad:
            raise SuppressionError(
                f"noqa directive names invalid rule id(s): {', '.join(bad)}",
                line=lineno,
            )
        reason = (match.group("reason") or "").strip()
        directives[lineno] = Suppression(line=lineno, rule_ids=rules, reason=reason)
    return directives


def directive_lines(source: str, rule_id: str) -> List[int]:
    """Lines whose directive names ``rule_id`` (diagnostics helper)."""
    return [
        line
        for line, suppression in parse_suppressions(source).items()
        if rule_id.upper() in suppression.rule_ids
    ]
