"""repro.quality — the repo-specific static invariant checker.

``repro lint`` walks the source tree's ASTs and enforces the invariants
the test suite can only spot-check: determinism of the seeded synthesis
(RPR001/RPR002), anonymization before export (RPR003), fork-safety of the
worker import closure (RPR004), and order-stable aggregation
(RPR005/RPR006).  On top of the per-file rules sits a whole-program
layer — per-module symbol tables folded into a resolved call graph —
powering the interprocedural rules: cross-process races (RPR008),
typed-error contracts (RPR009), resource leaks (RPR010), and
non-determinism taint through helper chains (RPR011).  Per-module facts
are content-hash cached (:mod:`repro.quality.cache`), so warm runs skip
parsing entirely.  See DESIGN.md "Quality gates" and "Whole-program
analysis" for the rule ↔ invariant ↔ paper-section mapping.

Programmatic use::

    from repro.quality import Analyzer, default_config

    findings = Analyzer(default_config()).analyze()
    assert not findings
"""

from repro.quality.baseline import BaselineError, load_baseline, subtract_baseline, write_baseline
from repro.quality.cache import CacheStats, LintCache, open_cache
from repro.quality.callgraph import ProjectFacts, file_sha, project_digest
from repro.quality.engine import (
    Analyzer,
    FileContext,
    LintConfig,
    LintContext,
    default_config,
    render_json,
    render_text,
    run_lint,
)
from repro.quality.findings import Finding, LintError, Severity, sort_findings
from repro.quality.importgraph import ImportGraph, fork_closure
from repro.quality.registry import Rule, make_rules, register, registered_rules
from repro.quality.sarif import findings_from_sarif, render_sarif, sarif_document
from repro.quality.suppressions import SuppressionError, parse_suppressions
from repro.quality.symbols import ANALYSIS_VERSION, ModuleSummary, summarize_module

__all__ = [
    "ANALYSIS_VERSION",
    "Analyzer",
    "BaselineError",
    "CacheStats",
    "FileContext",
    "Finding",
    "ImportGraph",
    "LintCache",
    "LintConfig",
    "LintContext",
    "LintError",
    "ModuleSummary",
    "ProjectFacts",
    "Rule",
    "Severity",
    "SuppressionError",
    "default_config",
    "file_sha",
    "findings_from_sarif",
    "fork_closure",
    "load_baseline",
    "make_rules",
    "open_cache",
    "parse_suppressions",
    "project_digest",
    "register",
    "registered_rules",
    "render_json",
    "render_sarif",
    "render_text",
    "run_lint",
    "sarif_document",
    "sort_findings",
    "subtract_baseline",
    "summarize_module",
    "write_baseline",
]
