"""repro.quality — the repo-specific static invariant checker.

``repro lint`` walks the source tree's ASTs and enforces the invariants
the test suite can only spot-check: determinism of the seeded synthesis
(RPR001/RPR002), anonymization before export (RPR003), fork-safety of the
worker import closure (RPR004), and order-stable aggregation
(RPR005/RPR006).  See DESIGN.md "Quality gates" for the rule ↔ invariant
↔ paper-section mapping.

Programmatic use::

    from repro.quality import Analyzer, default_config

    findings = Analyzer(default_config()).analyze()
    assert not findings
"""

from repro.quality.baseline import load_baseline, subtract_baseline, write_baseline
from repro.quality.engine import (
    Analyzer,
    FileContext,
    LintConfig,
    LintContext,
    LintError,
    default_config,
    render_json,
    render_text,
    run_lint,
)
from repro.quality.findings import Finding, Severity, sort_findings
from repro.quality.importgraph import ImportGraph, fork_closure
from repro.quality.registry import Rule, make_rules, register, registered_rules

__all__ = [
    "Analyzer",
    "FileContext",
    "Finding",
    "ImportGraph",
    "LintConfig",
    "LintContext",
    "LintError",
    "Rule",
    "Severity",
    "default_config",
    "fork_closure",
    "load_baseline",
    "make_rules",
    "register",
    "registered_rules",
    "render_json",
    "render_text",
    "run_lint",
    "sort_findings",
    "subtract_baseline",
    "write_baseline",
]
