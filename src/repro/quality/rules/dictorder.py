"""RPR006 — iteration over sets must be sorted before it shapes output.

Invariant: the reproduction's outputs are byte-identical across runs and
interpreters.  Python ``set`` iteration order depends on insertion
history and per-process hash randomization; feeding it into a
reduce-by-key, a list, or serialized output makes run-to-run diffs
possible even with identical inputs.  Wrapping the set in ``sorted()``
(or deduplicating in insertion order instead) restores determinism.

Detection is scope-local: expressions that syntactically build a set
(literals, comprehensions, ``set()``/``frozenset()`` calls) and local
names assigned from them are tracked; a finding fires when such a value
is iterated by a ``for`` loop or comprehension, or materialized via
``list``/``tuple``/``enumerate``/``iter``/``"".join``, without a
``sorted()`` in between.  Membership tests, ``len()``, and ``.update()``
never iterate and are not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.quality.findings import Finding
from repro.quality.registry import Rule, function_scopes, register

_SET_CALLS = {"set", "frozenset"}
#: Callables that materialize their argument's iteration order.
_ORDER_SENSITIVE_CALLS = {"list", "tuple", "enumerate", "iter"}


@register
class DictOrderStabilityRule(Rule):
    rule_id = "RPR006"
    description = "set iteration feeding aggregation/output must be sorted()"
    invariant = (
        "no output or reduce-by-key depends on set iteration order; every "
        "such traversal is sorted or insertion-ordered"
    )

    def check(self, file_ctx) -> Iterator[Finding]:
        for scope in function_scopes(file_ctx.tree):
            yield from self._check_scope(file_ctx, scope)

    def _check_scope(self, file_ctx, scope: ast.AST) -> Iterator[Finding]:
        set_names = self._collect_set_names(scope)
        for node in self._scope_walk(scope):
            if isinstance(node, ast.For):
                if self._is_set_valued(node.iter, set_names):
                    yield self._report(file_ctx, node.iter, "for-loop")
            elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
                # SetComp is exempt: its output is itself unordered, so the
                # iteration order of the source set cannot leak through it.
                for generator in node.generators:
                    if self._is_set_valued(generator.iter, set_names):
                        yield self._report(
                            file_ctx, generator.iter, "comprehension"
                        )
            elif isinstance(node, ast.Call):
                yield from self._check_call(file_ctx, node, set_names)

    def _check_call(
        self, file_ctx, node: ast.Call, set_names: Set[str]
    ) -> Iterator[Finding]:
        func = node.func
        name = ""
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute) and func.attr == "join":
            name = "join"
        if name not in _ORDER_SENSITIVE_CALLS and name != "join":
            return
        for arg in node.args:
            if self._is_set_valued(arg, set_names):
                yield self._report(file_ctx, arg, f"{name}()")

    def _report(self, file_ctx, node: ast.AST, consumer: str) -> Finding:
        return self.finding(
            file_ctx,
            node,
            f"set iterated by {consumer} in arbitrary hash order; wrap it in "
            "sorted() or deduplicate in insertion order",
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _scope_walk(scope: ast.AST) -> Iterator[ast.AST]:
        """Walk a scope without descending into nested function bodies."""
        stack: List[ast.AST] = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _collect_set_names(self, scope: ast.AST) -> Set[str]:
        """Local names whose last syntactic binding builds a set."""
        bindings: List[Tuple[int, int, str, bool]] = []
        for node in self._scope_walk(scope):
            if isinstance(node, ast.Assign):
                value_is_set = self._builds_set(node.value)
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        bindings.append(
                            (node.lineno, node.col_offset, target.id, value_is_set)
                        )
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    bindings.append(
                        (
                            node.lineno,
                            node.col_offset,
                            node.target.id,
                            self._builds_set(node.value),
                        )
                    )
        names: Set[str] = set()
        for _, _, name, is_set in sorted(bindings):
            if is_set:
                names.add(name)
            else:
                names.discard(name)
        return names

    @staticmethod
    def _builds_set(value: ast.expr) -> bool:
        if isinstance(value, (ast.Set, ast.SetComp)):
            return True
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            return value.func.id in _SET_CALLS
        return False

    def _is_set_valued(self, expression: ast.expr, set_names: Set[str]) -> bool:
        if isinstance(expression, ast.Name):
            return expression.id in set_names
        return self._builds_set(expression)
