"""RPR007 — no silently swallowed exceptions in the data/compute planes.

Invariant (DESIGN.md §12): corruption must be *routed*, never eaten.  A
``except: pass`` (or ``except Exception: pass``) in ``dataflow/``,
``tstat/``, or ``core/`` turns a torn partition or an undecodable record
into silently wrong ``StudyData`` — the exact failure mode the integrity
tier exists to make loud.  Broad handlers are fine when they *do*
something with the error: re-raise (possibly as a typed error), return a
failure value, record telemetry, or route the record to quarantine.

Detection: a handler whose type is bare, ``Exception``, or
``BaseException`` (alone or in a tuple) and whose body contains neither a
``raise`` nor any call whatsoever is swallowing — with nothing called,
the error cannot have been recorded anywhere.  Narrow handlers
(``except KeyError:``) are out of scope: catching a *specific* expected
condition and moving on is control flow, not swallowing.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.quality.findings import Finding
from repro.quality.registry import Rule, dotted_name, register

_BROAD = {"Exception", "BaseException"}


@register
class SwallowRule(Rule):
    rule_id = "RPR007"
    description = "no silently swallowed broad exceptions in data/compute planes"
    invariant = (
        "errors in the data and compute planes are routed — re-raised, "
        "recorded, or quarantined — never silently discarded"
    )

    def applies_to(self, file_ctx) -> bool:
        return file_ctx.in_scope(file_ctx.ctx.config.swallow_scopes)

    def check(self, file_ctx) -> Iterator[Finding]:
        for node in ast.walk(file_ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node.type):
                continue
            if _handles_error(node):
                continue
            caught = "bare except" if node.type is None else (
                f"except {dotted_name(node.type) or 'Exception'}"
            )
            yield self.finding(
                file_ctx,
                node,
                f"`{caught}` silently swallows the error — re-raise it, "
                "wrap it in a typed error, or record it (telemetry, "
                "quarantine, failure value)",
            )


def _is_broad(node) -> bool:
    """True for ``except:``, ``except Exception``, ``except BaseException``,
    and tuples containing either."""
    if node is None:
        return True
    if isinstance(node, ast.Tuple):
        return any(_is_broad(element) for element in node.elts)
    name = dotted_name(node)
    return name.split(".")[-1] in _BROAD if name else False


def _handles_error(handler: ast.ExceptHandler) -> bool:
    """True when the handler body raises or calls anything at all — the
    minimal evidence that the error was routed rather than eaten."""
    for node in ast.walk(handler):
        if isinstance(node, (ast.Raise, ast.Call)):
            return True
    return False
