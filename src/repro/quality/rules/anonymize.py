"""RPR003 — raw client addresses never cross the export boundary.

Invariant (paper §2.1): subscriber IP addresses are anonymized *at the
probe*; everything downstream — flow logs, CSV exports — sees pseudonyms
only.  This rule is a lightweight taint analysis: expressions that look
like raw client addresses (``client_ip``, ``raw_addr``, ``subscriber_ip``
names or attributes) may not appear as arguments to the write APIs of the
sink modules (``repro.reporting.export``, ``repro.tstat.logs``) unless
they pass through an anonymizer first.

Sanitization is recognized two ways: the value is the result of a call
whose name mentions ``anonymize``/``anonymizer`` (covers bound
``TableAnonymizer`` instances and ``self._anonymize``), or the variable
was reassigned from such a call earlier in the same function.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Set, Tuple

from repro.quality.findings import Finding
from repro.quality.registry import (
    Rule,
    call_name,
    dotted_name,
    function_scopes,
    register,
)

#: Identifiers that denote an un-anonymized subscriber address.
_RAW_IP_RE = re.compile(
    r"(?:^|_)(?:raw|client|subscriber|src|customer)_?(?:ip|addr|address)"
    r"(?:es|s)?(?:$|_)"
)

_SANITIZER_RE = re.compile(r"anonym", re.IGNORECASE)

_WRITE_METHODS = ("write", "write_all", "writerow", "writerows")


def _is_raw_identifier(identifier: str) -> bool:
    return bool(_RAW_IP_RE.search(identifier.lower()))


def _is_sanitizer_call(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and bool(
        _SANITIZER_RE.search(call_name(node) or "")
    )


@register
class AnonymizeBeforeExportRule(Rule):
    rule_id = "RPR003"
    description = "raw client addresses must be anonymized before export sinks"
    invariant = (
        "client identity leaves the probe only as a stable pseudonym "
        "(prefix-preserving or table anonymizer); export/log writers never "
        "see a raw address"
    )

    def check(self, file_ctx) -> Iterator[Finding]:
        sinks = _sink_bindings(file_ctx.tree, file_ctx.ctx.config.sink_modules)
        if not sinks.names and not sinks.module_aliases:
            return
        for scope in function_scopes(file_ctx.tree):
            yield from self._check_scope(file_ctx, scope, sinks)

    def _check_scope(self, file_ctx, scope: ast.AST, sinks) -> Iterator[Finding]:
        events: List[Tuple[int, int, str, ast.AST]] = []
        for node in ast.walk(scope):
            if node is scope:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # inner scopes get their own pass
            if isinstance(node, ast.Assign):
                events.append((node.lineno, node.col_offset, "assign", node))
            elif isinstance(node, ast.Call):
                events.append((node.lineno, node.col_offset, "call", node))
        events.sort(key=lambda event: (event[0], event[1]))
        sanitized: Set[str] = set()
        tainted: Set[str] = set()
        writer_names: Set[str] = set()
        for _, _, kind, node in events:
            if kind == "assign":
                self._track_assign(node, sinks, sanitized, tainted, writer_names)
            elif self._is_sink_call(node, sinks, writer_names):
                yield from self._check_sink_args(file_ctx, node, sanitized, tainted)

    @staticmethod
    def _track_assign(
        node: ast.Assign,
        sinks,
        sanitized: Set[str],
        tainted: Set[str],
        writer_names: Set[str],
    ) -> None:
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if not targets:
            return
        if _is_sanitizer_call(node.value):
            sanitized.update(targets)
            tainted.difference_update(targets)
        elif any(_tainted_subexpressions(node.value, sanitized, tainted)):
            # Taint propagates through plain assignment: rows built from a
            # raw address stay raw under any other name.
            tainted.update(targets)
        else:
            tainted.difference_update(targets)
        if isinstance(node.value, ast.Call):
            callee = call_name(node.value)
            if callee.split(".")[-1] in sinks.writer_classes:
                writer_names.update(targets)

    def _is_sink_call(
        self, node: ast.Call, sinks, writer_names: Set[str]
    ) -> bool:
        name = call_name(node)
        if not name:
            # Chained FlowLogWriter(path).write(record): the receiver is a
            # call expression, so resolve the writer class directly.
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _WRITE_METHODS
                and isinstance(func.value, ast.Call)
                and call_name(func.value).split(".")[-1] in sinks.writer_classes
            ):
                return True
            return False
        parts = name.split(".")
        if parts[0] in sinks.names and len(parts) == 1:
            return True
        # export.write_rows(...) via a module alias.
        if parts[0] in sinks.module_aliases and len(parts) >= 2:
            return True
        # writer.write(record) / writer.write_all(...) on a tracked instance.
        if (
            len(parts) == 2
            and parts[-1] in _WRITE_METHODS
            and parts[0] in writer_names
        ):
            return True
        return False

    def _check_sink_args(
        self, file_ctx, node: ast.Call, sanitized: Set[str], tainted: Set[str]
    ) -> Iterator[Finding]:
        for arg in [*node.args, *(kw.value for kw in node.keywords)]:
            for raw in _tainted_subexpressions(arg, sanitized, tainted):
                label = dotted_name(raw) or ast.dump(raw)[:40]
                yield self.finding(
                    file_ctx,
                    raw,
                    f"raw client address `{label}` reaches export sink "
                    f"`{call_name(node)}` without passing through "
                    "nettypes.anonymize",
                )


class _SinkBindings:
    def __init__(self) -> None:
        self.names: Set[str] = set()  # functions/classes imported from sinks
        self.module_aliases: Set[str] = set()  # the sink modules themselves
        self.writer_classes: Set[str] = set()  # class names (FlowLogWriter)


def _sink_bindings(tree: ast.Module, sink_modules) -> _SinkBindings:
    sinks = _SinkBindings()
    sink_set = set(sink_modules)
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and not node.level and node.module:
            if node.module in sink_set:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    sinks.names.add(bound)
                    if alias.name[:1].isupper():
                        sinks.writer_classes.add(bound)
            else:
                # from repro.reporting import export
                for alias in node.names:
                    candidate = f"{node.module}.{alias.name}"
                    if candidate in sink_set:
                        sinks.module_aliases.add(alias.asname or alias.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in sink_set:
                    sinks.module_aliases.add(
                        alias.asname or alias.name.split(".")[0]
                    )
    return sinks


def _tainted_subexpressions(
    expression: ast.AST,
    sanitized: Set[str],
    tainted: Set[str] = frozenset(),  # type: ignore[assignment]
) -> Iterator[ast.AST]:
    """Raw-address names/attributes (or names carrying propagated taint)
    in ``expression`` that are not inside a sanitizer call."""
    stack: List[ast.AST] = [expression]
    while stack:
        node = stack.pop()
        if _is_sanitizer_call(node):
            continue  # everything below is cleansed
        if isinstance(node, ast.Name):
            if node.id in sanitized:
                continue
            if _is_raw_identifier(node.id) or node.id in tainted:
                yield node
            continue
        if isinstance(node, ast.Attribute):
            if _is_raw_identifier(node.attr):
                yield node
                continue
        stack.extend(ast.iter_child_nodes(node))
    return
