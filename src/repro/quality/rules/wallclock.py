"""RPR001 — no wall-clock reads in deterministic layers.

Invariant (DESIGN.md §6): synthesis, analytics, and figure code is a pure
function of (config, seed, calendar).  A single ``datetime.now()`` or
``time.time()`` makes two runs of the study diverge, which is exactly the
silent-pipeline-drift failure the reproduction guards against.

The telemetry subsystem needs exactly one exception: something has to
read real elapsed time when an operator profiles a run.  The config's
``wallclock_allowlist`` (matched as relative-path suffixes) names the
sanctioned call sites — by default only ``repro/telemetry/clock.py`` —
and this rule skips those files entirely; every other module in scope,
telemetry included, must go through the :class:`~repro.telemetry.clock.
Clock` protocol.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.quality.findings import Finding
from repro.quality.registry import Rule, dotted_name, register


#: ``<attr>`` calls banned when the receiver chain ends in ``<receiver>``.
_BANNED_METHODS = {
    "now": ("datetime",),
    "utcnow": ("datetime",),
    "today": ("datetime", "date"),
}

#: Functions of the stdlib ``time`` module that read the wall clock or an
#: otherwise run-dependent clock.
_BANNED_TIME_FUNCS = {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter"}


@register
class WallClockRule(Rule):
    rule_id = "RPR001"
    description = "no wall-clock reads outside the telemetry clock"
    invariant = (
        "per-day seeded generation is deterministic: outputs depend only on "
        "(config, seed, calendar), never on when the study runs"
    )

    def applies_to(self, file_ctx) -> bool:
        config = file_ctx.ctx.config
        if any(
            file_ctx.relpath.endswith(entry)
            for entry in config.wallclock_allowlist
        ):
            return False
        return file_ctx.in_scope(config.wallclock_scopes)

    def check(self, file_ctx) -> Iterator[Finding]:
        time_aliases = _time_module_aliases(file_ctx.tree)
        from_imports = _banned_from_imports(file_ctx.tree)
        for node in ast.walk(file_ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if not name:
                continue
            offense = _classify(name, time_aliases, from_imports)
            if offense:
                yield self.finding(
                    file_ctx,
                    node,
                    f"wall-clock read `{name}()` — {offense}; derive times "
                    "from the study calendar or the day's seed instead",
                )


def _classify(
    name: str, time_aliases: Set[str], from_imports: Set[str]
) -> str:
    parts = name.split(".")
    head, tail = parts[0], parts[-1]
    receiver = parts[-2] if len(parts) >= 2 else ""
    if tail in _BANNED_METHODS and receiver in _BANNED_METHODS[tail]:
        return "non-deterministic datetime constructor"
    if head in time_aliases and len(parts) == 2 and tail in _BANNED_TIME_FUNCS:
        return "stdlib time module clock"
    if name in from_imports:
        return "clock imported by name"
    return ""


def _time_module_aliases(tree: ast.Module) -> Set[str]:
    """Names the stdlib ``time`` module is bound to (``import time as t``)."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    aliases.add(alias.asname or "time")
    return aliases


def _banned_from_imports(tree: ast.Module) -> Set[str]:
    """Local names bound to banned clocks via ``from`` imports."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.ImportFrom) or node.level:
            continue
        if node.module == "time":
            for alias in node.names:
                if alias.name in _BANNED_TIME_FUNCS:
                    names.add(alias.asname or alias.name)
    return names
