"""RPR008 — module-level state must not race across the fork boundary.

Invariant (DESIGN.md §7/§13): a worker process observes exactly the
module state that existed at import time.  Under ``fork`` a worker
additionally inherits whatever the parent mutated before the pool
spawned; under ``spawn`` it does not.  So a module-level name that is

* **written by parent-side code after import time** (a function that is
  *not* reachable from the fork-worker entry and *not* run while the
  module imports), and
* **read by worker-side code** (a function reachable from the entry),

silently diverges between start methods: fork workers may see the
parent's mutation, spawn workers never do.  The paper's determinism
claim ("parallelism changes wall-clock, never results") cannot survive
that.  RPR004 catches mutable *containers* at module scope; this rule
catches the *flows* — who writes, who reads, on which side of the
process boundary — using the whole-program call graph.

Example violation::

    _LIMIT = 10                     # module global

    def configure(limit):           # parent-side (not in the worker graph)
        global _LIMIT
        _LIMIT = limit              # <- RPR008: worker never sees this

    def _run_chunk(task):           # fork entry
        return task.size > _LIMIT   # worker-side read

Fix guidance: pass the value through the task payload (everything a
worker needs arrives pickled), or confine the write to worker-side code
(a per-process cache written and read on the same side is fine — that is
why ``_STUDY_CACHE`` and the telemetry ``_ACTIVE`` slot pass).  A
``# repro: noqa[RPR008]`` requires a written justification, exactly like
RPR004.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.quality.findings import Finding
from repro.quality.registry import Rule, register

_MEMO_KEY = "RPR008"


@register
class CrossProcessRaceRule(Rule):
    rule_id = "RPR008"
    description = (
        "no parent-side writes to module globals that fork workers read"
    )
    invariant = (
        "worker processes observe only import-time module state; values "
        "computed in the parent travel through task payloads, never "
        "through module globals"
    )
    requires_justification = True

    def check(self, file_ctx) -> Iterator[Finding]:
        results = self._results(file_ctx.ctx)
        for line, column, message in results.get(file_ctx.module or "", ()):
            yield Finding(
                path=file_ctx.relpath,
                line=line,
                column=column,
                rule_id=self.rule_id,
                severity=self.severity,
                message=message,
            )

    # ------------------------------------------------------------------

    def _results(self, ctx) -> Dict[str, List[Tuple[int, int, str]]]:
        """module → [(line, column, message)]; computed once per run."""
        cached = ctx.memo.get(_MEMO_KEY)
        if cached is not None:
            return cached
        facts = ctx.facts()
        closure = ctx.fork_modules()
        entry = facts.entry_function(ctx.config.fork_entry)
        worker_side = facts.reachable([entry] if entry else [])
        import_time = facts.reachable(facts.import_time_roots(facts.modules))
        results: Dict[str, List[Tuple[int, int, str]]] = {}
        for module in sorted(closure):
            summary = facts.modules.get(module)
            if summary is None:
                continue
            # Who reads each global from the worker side?
            worker_readers: Dict[str, str] = {}
            for qualname, info in sorted(summary.functions.items()):
                if (module, qualname) not in worker_side:
                    continue
                for access in info.global_reads:
                    worker_readers.setdefault(access.name, qualname)
            if not worker_readers:
                continue
            for qualname, info in sorted(summary.functions.items()):
                fid = (module, qualname)
                if fid in worker_side or fid in import_time:
                    continue  # worker-side or import-time writes are safe
                for write in info.global_writes:
                    reader = worker_readers.get(write.name)
                    if reader is None:
                        continue
                    results.setdefault(module, []).append(
                        (
                            write.line,
                            0,
                            f"module-level `{write.name}` is written by "
                            f"parent-side `{qualname}()` after import time "
                            f"but read inside the fork-worker closure (by "
                            f"`{reader}()`); under spawn the worker keeps "
                            "the import-time value and results silently "
                            "diverge — ship the value in the task payload "
                            "or confine the write to worker-side code",
                        )
                    )
        ctx.memo[_MEMO_KEY] = results
        return results
