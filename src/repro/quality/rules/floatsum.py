"""RPR005 — float reductions in figures/analytics must be order-stable.

Invariant: merged parallel partials reproduce the serial run bit-for-bit.
``sum()`` over floats associates left-to-right, so reordering the inputs
(different worker partitioning, different set iteration) can change the
last ulp of a figure value.  ``math.fsum`` is exactly rounded — the
result is independent of summation order — and integer sums are exact by
construction, so both are allowed; ``sum()`` over float-producing
expressions is not.

The check is syntactic: a ``sum(...)`` call is flagged when the summed
expression visibly produces floats (a division, a float literal, or a
``float(...)`` conversion) or when the ``start`` argument is a float
literal.  Reductions over plain integer counters stay untouched.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.quality.findings import Finding
from repro.quality.registry import Rule, register


@register
class FloatAccumulationRule(Rule):
    rule_id = "RPR005"
    description = "float reductions use math.fsum, not sum()"
    invariant = (
        "figure and analytics reductions are independent of input order, so "
        "parallel merges and set-iteration order cannot move a figure value"
    )

    def applies_to(self, file_ctx) -> bool:
        return file_ctx.in_scope(file_ctx.ctx.config.floatsum_scopes)

    def check(self, file_ctx) -> Iterator[Finding]:
        for node, float_names in _sum_calls_in_scope(file_ctx.tree):
            if not node.args:
                continue
            reason = _float_evidence(node, float_names)
            if reason:
                yield self.finding(
                    file_ctx,
                    node,
                    f"sum() over a float expression ({reason}) is "
                    "order-sensitive; use math.fsum (exactly rounded) or "
                    "keep the accumulation integral",
                )


def _sum_calls_in_scope(tree: ast.Module):
    """Every ``sum(...)`` call paired with the float-annotated names visible
    at that point under lexical scoping.

    An ``xs: List[float] = []`` annotation is evidence that ``sum(xs)``
    later accumulates floats even though the call itself shows none.  The
    annotation only counts inside the function (or module) scope that
    declares it, plus nested functions — class-body annotations (dataclass
    fields) do not leak into methods, matching Python's scoping rules.
    """
    results: list = []
    _collect_scope(tree.body, frozenset(), results, is_class_scope=False)
    return results


def _collect_scope(body, inherited, results, is_class_scope) -> None:
    local = set(inherited)
    in_scope_nodes = []
    nested = []
    stack = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            nested.append(node)
            continue
        if (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and _mentions_float(node.annotation)
        ):
            local.add(node.target.id)
        in_scope_nodes.append(node)
        stack.extend(ast.iter_child_nodes(node))
    names = frozenset(local)
    for node in in_scope_nodes:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sum"
        ):
            results.append((node, names))
    # Class-body annotations are attribute declarations, not names visible
    # to the methods beneath them.
    passed_down = inherited if is_class_scope else names
    for node in nested:
        _collect_scope(
            node.body, passed_down, results, isinstance(node, ast.ClassDef)
        )


def _mentions_float(annotation: ast.expr) -> bool:
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name) and node.id == "float":
            return True
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and "float" in node.value
        ):
            return True
    return False


def _float_evidence(call: ast.Call, float_names: frozenset = frozenset()) -> str:
    """Why the summed expression is float-valued, or ``""`` if no evidence."""
    summed = call.args[0]
    if isinstance(summed, ast.Name) and summed.id in float_names:
        return "summand annotated as float-typed"
    for node in ast.walk(summed):
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            return "division inside the summand"
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return "float literal inside the summand"
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "float"
        ):
            return "float() conversion inside the summand"
    start_candidates = list(call.args[1:]) + [
        keyword.value for keyword in call.keywords if keyword.arg == "start"
    ]
    for start in start_candidates:
        if isinstance(start, ast.Constant) and isinstance(start.value, float):
            return "float start value"
    return ""
