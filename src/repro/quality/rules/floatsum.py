"""RPR005 — float reductions in figures/analytics must be order-stable.

Invariant: merged parallel partials reproduce the serial run bit-for-bit.
``sum()`` over floats associates left-to-right, so reordering the inputs
(different worker partitioning, different set iteration) can change the
last ulp of a figure value.  ``math.fsum`` is exactly rounded — the
result is independent of summation order — and integer sums are exact by
construction, so both are allowed; ``sum()`` over float-producing
expressions is not.

The check is syntactic: a ``sum(...)`` call is flagged when the summed
expression visibly produces floats (a division, a float literal, or a
``float(...)`` conversion) or when the ``start`` argument is a float
literal.  Reductions over plain integer counters stay untouched.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.quality.findings import Finding
from repro.quality.registry import Rule, register


@register
class FloatAccumulationRule(Rule):
    rule_id = "RPR005"
    description = "float reductions use math.fsum, not sum()"
    invariant = (
        "figure and analytics reductions are independent of input order, so "
        "parallel merges and set-iteration order cannot move a figure value"
    )

    def applies_to(self, file_ctx) -> bool:
        return file_ctx.in_scope(file_ctx.ctx.config.floatsum_scopes)

    def check(self, file_ctx) -> Iterator[Finding]:
        for node in ast.walk(file_ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not (isinstance(node.func, ast.Name) and node.func.id == "sum"):
                continue
            if not node.args:
                continue
            reason = _float_evidence(node)
            if reason:
                yield self.finding(
                    file_ctx,
                    node,
                    f"sum() over a float expression ({reason}) is "
                    "order-sensitive; use math.fsum (exactly rounded) or "
                    "keep the accumulation integral",
                )


def _float_evidence(call: ast.Call) -> str:
    """Why the summed expression is float-valued, or ``""`` if no evidence."""
    summed = call.args[0]
    for node in ast.walk(summed):
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            return "division inside the summand"
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return "float literal inside the summand"
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "float"
        ):
            return "float() conversion inside the summand"
    start_candidates = list(call.args[1:]) + [
        keyword.value for keyword in call.keywords if keyword.arg == "start"
    ]
    for start in start_candidates:
        if isinstance(start, ast.Constant) and isinstance(start.value, float):
            return "float start value"
    return ""
