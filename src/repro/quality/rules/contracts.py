"""RPR009 — typed-error contracts on decode and pool entry points.

Invariant (DESIGN.md §10/§12): failure *routing* is part of an API's
type.  Callers of the decode paths (``parse_record``, ``read_flow_log``,
``parse_ipfix``, ``parse_netflow_v5``) quarantine on
:class:`~repro.dataflow.integrity.RecordDecodeError` — a bare
``ValueError`` escaping instead sails straight past every quarantine
``except`` and kills a five-year scan.  Likewise the pool path
(:func:`~repro.core.parallel.execute_study`) promises ``ChunkError`` /
``PoolError`` / argument-validation ``ValueError`` and nothing else.

The rule runs a raise-propagation analysis over the whole-program call
graph: a function's *escape set* is its own uncaught explicit raises
plus everything escaping its callees minus what the ``except`` guards
around each call site catch (with subclass checks against the project +
builtin exception hierarchy).  Every escaping class outside the
contract's allowed families is a finding at the contract function, with
the origin ``module:line`` of the offending ``raise`` in the message.

Example violation::

    # contract: parse_thing -> RecordDecodeError only
    def parse_thing(blob):
        if not blob:
            raise ValueError("empty")   # <- RPR009: untyped escape

Fix guidance: raise (or wrap into) a subclass of the contracted family —
``raise ThingFormatError("empty")`` where ``ThingFormatError`` derives
from ``RecordDecodeError``.  Catch-and-wrap at the boundary is exactly
what ``parse_record`` does with conversion errors.  Dynamic raises the
analysis cannot type are ignored — the contract covers *typed* escapes.

Contracts live in ``LintConfig.error_contracts``; entries whose module
does not exist under the analysis root are skipped (so the repo config
is inert on fixture trees), but a contract naming a *function* that does
not exist in a present module is a configuration error (LintError).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.quality.findings import Finding, LintError
from repro.quality.registry import Rule, register

_MEMO_KEY = "RPR009"


@register
class ErrorContractRule(Rule):
    rule_id = "RPR009"
    description = "only contracted exception families escape decode/pool entry points"
    invariant = (
        "decode paths surface RecordDecodeError subclasses only; the pool "
        "path surfaces ChunkError/PoolError/ValueError only — callers can "
        "quarantine by type"
    )

    def check(self, file_ctx) -> Iterator[Finding]:
        results = self._results(file_ctx.ctx)
        for line, message in results.get(file_ctx.module or "", ()):
            yield Finding(
                path=file_ctx.relpath,
                line=line,
                column=0,
                rule_id=self.rule_id,
                severity=self.severity,
                message=message,
            )

    # ------------------------------------------------------------------

    def _results(self, ctx):
        cached = ctx.memo.get(_MEMO_KEY)
        if cached is not None:
            return cached
        facts = ctx.facts()
        results: dict = {}
        for entry, allowed_names in ctx.config.error_contracts:
            module, _, function = entry.partition(":")
            summary = facts.modules.get(module)
            if summary is None:
                continue  # contract module absent (fixture tree): inert
            info = summary.functions.get(function)
            if info is None:
                raise LintError(
                    f"error contract {entry!r}: no function "
                    f"{function!r} in {module}"
                )
            allowed: List[Tuple[str, str]] = []
            for name in allowed_names:
                allowed_module, _, allowed_class = name.partition(":")
                allowed.append((allowed_module, allowed_class))
            for cid, witness in sorted(facts.escapes((module, function)).items()):
                if any(facts.is_exception_subclass(cid, base) for base in allowed):
                    continue
                origin_module, origin_line = witness
                families = ", ".join(cls for _, cls in allowed)
                results.setdefault(module, []).append(
                    (
                        info.line,
                        f"`{function}()` contracts to raise only "
                        f"[{families}] but `{cid[1]}` (raised at "
                        f"{origin_module}:{origin_line}) can escape — wrap "
                        "it in a contracted subclass at the boundary",
                    )
                )
        ctx.memo[_MEMO_KEY] = results
        return results
