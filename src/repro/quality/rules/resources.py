"""RPR010 — acquired resources are settled on every path.

Invariant (DESIGN.md §7/§13): a five-year scan opens millions of flow
logs and spawns thousands of workers; a handle leaked "only on the error
path" is a handle leaked in production.  Pipe ends are the sharpest
case: the pool detects worker death by pipe EOF, and EOF only arrives if
the parent has closed its copy of the child end — a leaked
``Connection`` is not just an fd, it is a crash that goes *unnoticed*.

The rule tracks names bound from a configured resource factory
(``LintConfig.resource_factories``: ``open`` → ``close``, ``Pipe`` →
``close``, ``SupervisedPool`` → ``stop``, ...) through the acquiring
function and requires each to be *settled*:

* managed — ``with resource:`` (exception-safe by construction);
* released — ``resource.close()`` / ``resource.stop()``, which must be
  exception-safe when anything that can raise runs first: in a
  ``finally``, in an ``except`` cleanup, or with no intervening calls;
* handed off — returned, yielded, stored into an attribute/subscript,
  aliased, or passed to another call (ownership moves; the receiver
  settles it).  Method calls *on* the resource are use, not hand-off.

Example violation (the exception edge)::

    parent_conn, child_conn = ctx.Pipe(duplex=False)
    process = ctx.Process(args=(child_conn,))   # can raise ->
    process.start()                             #   both ends leak
    child_conn.close()
    self._workers[parent_conn] = process

Fix guidance: bracket the risky region so cleanup runs on the error
path::

    parent_conn, child_conn = ctx.Pipe(duplex=False)
    try:
        process = ctx.Process(args=(child_conn,))
        process.start()
    except BaseException:
        parent_conn.close()
        child_conn.close()
        raise

or use ``with``/``contextlib.ExitStack`` where the resource's lifetime
ends inside the function.  The analysis is lexical per function:
hand-off is trusted (cross-function ownership is the owner's contract),
and a call that both receives the resource and raises on the same line
is treated as completing the hand-off.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.quality.findings import Finding
from repro.quality.registry import Rule, call_name, register


@dataclass
class _Resource:
    name: str
    factory: str
    closer: str
    line: int
    #: (line, in_finally, in_handler) for each ``name.closer()`` site.
    closes: List[Tuple[int, bool, bool]] = field(default_factory=list)
    #: ``with name:`` sites (exception-safe by construction).
    managed: List[int] = field(default_factory=list)
    #: Lines where ownership left this function (return/yield/store/arg).
    escapes: List[int] = field(default_factory=list)


class _FunctionScan:
    """One pass over a function body collecting resource events."""

    def __init__(self, factories: Dict[str, str]) -> None:
        self.factories = factories
        self.resources: Dict[str, _Resource] = {}
        #: Lines of calls that may raise between acquisition and settle.
        self.risky_calls: List[int] = []

    # -- statements ----------------------------------------------------

    def scan(self, body: List[ast.stmt]) -> None:
        self._stmts(body, in_finally=False, in_handler=False)

    def _stmts(
        self, body: List[ast.stmt], in_finally: bool, in_handler: bool
    ) -> None:
        for stmt in body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # nested scopes are scanned separately
            if isinstance(stmt, ast.Try):
                self._stmts(stmt.body, in_finally, in_handler)
                for handler in stmt.handlers:
                    self._stmts(handler.body, in_finally, True)
                self._stmts(stmt.orelse, in_finally, in_handler)
                self._stmts(stmt.finalbody, True, in_handler)
                continue
            if isinstance(stmt, ast.Assign):
                self._assign(stmt, in_finally, in_handler)
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Name) and expr.id in self.resources:
                        self.resources[expr.id].managed.append(stmt.lineno)
                    else:
                        self._expr(expr, in_finally, in_handler)
                self._stmts(stmt.body, in_finally, in_handler)
                continue
            for name in self._escaping_names(stmt):
                self.resources[name].escapes.append(stmt.lineno)
            for value in ast.iter_child_nodes(stmt):
                if isinstance(value, ast.expr):
                    self._expr(value, in_finally, in_handler)
            for _, value in ast.iter_fields(stmt):
                if (
                    isinstance(value, list)
                    and value
                    and isinstance(value[0], ast.stmt)
                ):
                    self._stmts(value, in_finally, in_handler)

    def _assign(
        self, stmt: ast.Assign, in_finally: bool, in_handler: bool
    ) -> None:
        value = stmt.value
        factory = self._factory_of(value)
        if factory is not None:
            assert isinstance(value, ast.Call)
            # Factory-call arguments may still hand off earlier resources.
            for root in list(value.args) + [kw.value for kw in value.keywords]:
                self._expr(root, in_finally, in_handler)
            for name in self._target_names(stmt.targets):
                self.resources[name] = _Resource(
                    name=name,
                    factory=factory,
                    closer=self.factories[factory],
                    line=stmt.lineno,
                )
            return
        # Ownership transfers: direct alias (`g = f`), packing
        # (`pair = (a, b)`), storage into an attribute or subscript
        # (`self.f = f`), or use as a subscript key
        # (`self._workers[conn] = process`).
        handoff = set()
        for element in self._direct_names(value):
            if element in self.resources:
                handoff.add(element)
        for target in stmt.targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                for node in ast.walk(target):
                    if (
                        isinstance(node, ast.Name)
                        and isinstance(node.ctx, ast.Load)
                        and node.id in self.resources
                    ):
                        handoff.add(node.id)
        for name in sorted(handoff):
            self.resources[name].escapes.append(stmt.lineno)
        self._expr(value, in_finally, in_handler)

    # -- expressions ---------------------------------------------------

    def _expr(self, node: ast.AST, in_finally: bool, in_handler: bool) -> None:
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            close_of = self._close_call(sub)
            if close_of is not None:
                close_of.closes.append((sub.lineno, in_finally, in_handler))
                continue
            self.risky_calls.append(sub.lineno)
            # A resource passed as an argument is handed off (recorded at
            # the call's line: a call that raises never completed the
            # hand-off, so earlier risky lines still count).  The
            # *receiver* of a method call (`f.read()`) is use, not
            # hand-off.
            roots = list(sub.args) + [kw.value for kw in sub.keywords]
            if not (
                isinstance(sub.func, ast.Attribute)
                and isinstance(sub.func.value, ast.Name)
            ):
                roots.append(sub.func)
            for root in roots:
                for arg in self._names_outside_nested_calls(root):
                    if arg.id in self.resources:
                        self.resources[arg.id].escapes.append(sub.lineno)

    @staticmethod
    def _names_outside_nested_calls(root: ast.AST) -> Iterator[ast.Name]:
        """Loaded names in ``root``, pruned at nested calls — a name fed
        through another call (``transform(handle.read())``) is that inner
        call's business (it is visited as its own ``sub``), not a direct
        hand-off to this one."""
        stack = [root]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Call):
                continue
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                yield node
                continue
            stack.extend(ast.iter_child_nodes(node))

    def _escaping_names(self, stmt: ast.stmt) -> List[str]:
        if isinstance(stmt, (ast.Return, ast.Raise)):
            roots: List[ast.AST] = [stmt]
        elif isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, (ast.Yield, ast.YieldFrom)
        ):
            roots = [stmt.value]
        else:
            return []
        return [
            node.id
            for root in roots
            for node in ast.walk(root)
            if isinstance(node, ast.Name) and node.id in self.resources
        ]

    @staticmethod
    def _direct_names(value: ast.expr) -> List[str]:
        """Names the value *is* (alias/packing), not names it merely uses."""
        if isinstance(value, ast.Name):
            return [value.id]
        if isinstance(value, (ast.Tuple, ast.List)):
            return [
                element.id
                for element in value.elts
                if isinstance(element, ast.Name)
            ]
        return []

    def _factory_of(self, value: ast.expr) -> Optional[str]:
        if not isinstance(value, ast.Call):
            return None
        name = call_name(value)
        if not name:
            return None
        last = name.rsplit(".", 1)[-1]
        return last if last in self.factories else None

    def _close_call(self, node: ast.Call) -> Optional[_Resource]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return None
        if not isinstance(func.value, ast.Name):
            return None
        resource = self.resources.get(func.value.id)
        if resource is not None and func.attr == resource.closer:
            return resource
        return None

    @staticmethod
    def _target_names(targets: List[ast.expr]) -> List[str]:
        names: List[str] = []
        for target in targets:
            if isinstance(target, ast.Name):
                names.append(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                names.extend(
                    element.id
                    for element in target.elts
                    if isinstance(element, ast.Name)
                )
        return names


@register
class ResourceLeakRule(Rule):
    rule_id = "RPR010"
    description = "resources are closed or handed off on every path"
    invariant = (
        "every acquired handle (file, pipe end, pool) is with-managed, "
        "released on success *and* error paths, or explicitly handed off"
    )

    def check(self, file_ctx) -> Iterator[Finding]:
        factories = dict(file_ctx.ctx.config.resource_factories)
        if not factories:
            return
        for node in ast.walk(file_ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            scan = _FunctionScan(factories)
            scan.scan(node.body)
            for resource in scan.resources.values():
                finding = self._judge(file_ctx, node.name, resource, scan)
                if finding is not None:
                    yield finding

    def _judge(self, file_ctx, func_name, resource, scan) -> Optional[Finding]:
        if resource.managed:
            return None  # with-statement: settled and exception-safe
        settles = [line for line, _, _ in resource.closes] + resource.escapes
        if not settles:
            return Finding(
                path=file_ctx.relpath,
                line=resource.line,
                column=0,
                rule_id=self.rule_id,
                severity=self.severity,
                message=(
                    f"`{resource.name}` acquired from "
                    f"`{resource.factory}()` in `{func_name}()` is never "
                    f"closed on any path — manage it with `with`, call "
                    f"`.{resource.closer}()` in a `finally`, or hand it "
                    "off to an owner that does"
                ),
            )
        protected = any(
            in_finally or in_handler
            for _, in_finally, in_handler in resource.closes
        )
        if protected:
            return None
        first_settle = min(settles)
        risky = [
            line
            for line in scan.risky_calls
            if resource.line < line < first_settle
        ]
        if not risky:
            return None
        return Finding(
            path=file_ctx.relpath,
            line=resource.line,
            column=0,
            rule_id=self.rule_id,
            severity=self.severity,
            message=(
                f"`{resource.name}` from `{resource.factory}()` in "
                f"`{func_name}()` leaks on the exception edge: the call "
                f"on line {risky[0]} can raise before the resource is "
                f"settled on line {first_settle} — release it in a "
                "`finally` or an `except` cleanup that re-raises"
            ),
        )
