"""Built-in lint rules.

Importing this package registers every rule with
:mod:`repro.quality.registry`:

==========  ==========================================================
RPR001      no wall-clock reads outside the telemetry clock
RPR002      only seeded RNGs (no stdlib random, no numpy global state)
RPR003      raw client addresses anonymized before export sinks
RPR004      no mutable module-level state in fork-worker imports
RPR005      float reductions via math.fsum, not order-sensitive sum()
RPR006      set iteration feeding aggregation/output must be sorted
RPR007      no silently swallowed broad exceptions in data/compute planes
RPR008      no parent-side writes to module globals fork workers read
RPR009      only contracted exception families escape decode/pool APIs
RPR010      acquired resources closed or handed off on every path
RPR011      no wall-clock/RNG taint into export sinks, even via helpers
==========  ==========================================================

RPR001–RPR007 are per-file AST checks; RPR008–RPR011 draw on the
whole-program symbol table and call graph (:mod:`repro.quality.symbols`,
:mod:`repro.quality.callgraph`).
"""

from repro.quality.rules import (  # noqa: F401  (import registers the rules)
    anonymize,
    contracts,
    dictorder,
    floatsum,
    forksafe,
    interptaint,
    race,
    resources,
    rng,
    swallow,
    wallclock,
)

__all__ = [
    "anonymize",
    "contracts",
    "dictorder",
    "floatsum",
    "forksafe",
    "interptaint",
    "race",
    "resources",
    "rng",
    "swallow",
    "wallclock",
]
