"""Built-in lint rules.

Importing this package registers every rule with
:mod:`repro.quality.registry`:

==========  ==========================================================
RPR001      no wall-clock reads outside the telemetry clock
RPR002      only seeded RNGs (no stdlib random, no numpy global state)
RPR003      raw client addresses anonymized before export sinks
RPR004      no mutable module-level state in fork-worker imports
RPR005      float reductions via math.fsum, not order-sensitive sum()
RPR006      set iteration feeding aggregation/output must be sorted
RPR007      no silently swallowed broad exceptions in data/compute planes
==========  ==========================================================
"""

from repro.quality.rules import (  # noqa: F401  (import registers the rules)
    anonymize,
    dictorder,
    floatsum,
    forksafe,
    rng,
    swallow,
    wallclock,
)

__all__ = [
    "anonymize",
    "dictorder",
    "floatsum",
    "forksafe",
    "rng",
    "swallow",
    "wallclock",
]
