"""RPR004 — worker-process imports are start-method clean.

Invariant (core/parallel.py): "parallelism changes wall-clock, never
results."  Workers may start via ``fork`` *or* ``spawn`` — the method is
resolved at runtime (:func:`repro.core.pool.resolve_start_method`), so
every module in the transitive import closure of
``core.parallel._run_chunk`` must behave identically under both.  Two
traps are flagged:

* **Mutable module-level containers.**  Under fork the container is
  duplicated into each worker's memory image; mutated in a worker, it
  silently diverges from its siblings and from the parent.  Under spawn
  it is re-initialised per worker instead — a different wrong answer.
  Either way, results start depending on which worker handled which day.
* **Hard-coded start methods.**  A literal ``get_context("fork")`` or
  ``set_start_method("spawn")`` inside the closure pins the whole run to
  one method, breaking the runtime selection contract (and, for
  ``"fork"``, portability to platforms without it).  Pass a resolved
  variable instead.

The closure is computed from the real AST import graph
(:mod:`repro.quality.importgraph`) every run — never from a hard-coded
module list — and includes package ``__init__`` modules and
function-local imports, because workers execute those too.

A flagged assignment is accepted only when it is frozen
(``tuple``/``frozenset``/``MappingProxyType``) or carries a
``# repro: noqa[RPR004] -- <justification>`` explaining why sharing is
safe.  A bare noqa without justification does not count.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.quality.findings import Finding
from repro.quality.registry import (
    Rule,
    call_name,
    module_level_statements,
    register,
)

#: Callables producing mutable containers.
_MUTABLE_FACTORIES = {
    "list",
    "dict",
    "set",
    "defaultdict",
    "OrderedDict",
    "Counter",
    "deque",
    "bytearray",
    "ChainMap",
}

#: Callables whose result is safely shareable across forks.
_FREEZING_FACTORIES = {"tuple", "frozenset", "MappingProxyType", "FrozenInstanceError"}

_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)

#: Calls that pin the multiprocessing start method when given a literal.
_START_METHOD_CALLS = {"get_context", "set_start_method"}


@register
class ForkSafeWorkersRule(Rule):
    rule_id = "RPR004"
    description = "worker-import closure: no mutable module state, no pinned start method"
    invariant = (
        "every module a pool worker executes is free of mutable "
        "module-level state and never pins the multiprocessing start "
        "method, so workers cannot diverge from each other or from a "
        "serial run under either fork or spawn"
    )
    requires_justification = True

    def applies_to(self, file_ctx) -> bool:
        return file_ctx.module is not None

    def check(self, file_ctx) -> Iterator[Finding]:
        if file_ctx.module not in file_ctx.ctx.fork_modules():
            return
        for statement in module_level_statements(file_ctx.tree):
            if isinstance(statement, ast.Assign):
                targets = statement.targets
                value = statement.value
            elif isinstance(statement, ast.AnnAssign) and statement.value:
                targets = [statement.target]
                value = statement.value
            else:
                continue
            names = _target_names(targets)
            if not names or all(_is_dunder(name) for name in names):
                continue
            offense = _mutability(value)
            if offense:
                label = ", ".join(names)
                yield self.finding(
                    file_ctx,
                    statement,
                    f"module-level mutable {offense} `{label}` in fork-worker "
                    f"import closure of `{file_ctx.ctx.config.fork_entry}`; "
                    "freeze it (tuple/frozenset/MappingProxyType) or add "
                    "`# repro: noqa[RPR004] -- <why sharing is safe>`",
                )
        yield from self._pinned_start_methods(file_ctx)

    def _pinned_start_methods(self, file_ctx) -> Iterator[Finding]:
        """Flag literal-argument get_context/set_start_method calls."""
        for node in ast.walk(file_ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node).split(".")[-1]
            if name not in _START_METHOD_CALLS:
                continue
            method = _literal_start_method(node)
            if method is None:
                continue
            yield self.finding(
                file_ctx,
                node,
                f"`{name}({method!r})` pins the start method inside the "
                f"worker-import closure of `{file_ctx.ctx.config.fork_entry}`; "
                "resolve it at runtime (repro.core.pool.resolve_start_method) "
                "and pass the result instead",
            )


def _target_names(targets: List[ast.expr]) -> List[str]:
    names: List[str] = []
    for target in targets:
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            names.extend(
                element.id
                for element in target.elts
                if isinstance(element, ast.Name)
            )
    return names


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


def _literal_start_method(call: ast.Call) -> Optional[str]:
    """The literal method string a start-method call pins, or ``None``."""
    candidates = list(call.args[:1])
    candidates.extend(
        keyword.value for keyword in call.keywords if keyword.arg == "method"
    )
    for candidate in candidates:
        if isinstance(candidate, ast.Constant) and isinstance(
            candidate.value, str
        ):
            return candidate.value
    return None


def _mutability(value: ast.expr) -> str:
    """Human label of the mutable container ``value`` builds, or ``""``."""
    if isinstance(value, ast.Dict) or isinstance(value, ast.DictComp):
        return "dict"
    if isinstance(value, ast.List) or isinstance(value, ast.ListComp):
        return "list"
    if isinstance(value, ast.Set) or isinstance(value, ast.SetComp):
        return "set"
    if isinstance(value, ast.Call):
        name = call_name(value).split(".")[-1]
        if name in _FREEZING_FACTORIES:
            return ""
        if name in _MUTABLE_FACTORIES:
            return f"{name}()"
    return ""
