"""RPR004 — fork-pool workers import no mutable module-level state.

Invariant (core/parallel.py): "parallelism changes wall-clock, never
results."  Worker processes are forked, so every module in the transitive
import closure of ``core.parallel._run_chunk`` is duplicated into each
worker's memory image.  A mutable module-level container in that closure
is a trap: mutated in a worker, it silently diverges from its siblings
and from the parent, and results start depending on which worker handled
which day.

The closure is computed from the real AST import graph
(:mod:`repro.quality.importgraph`) every run — never from a hard-coded
module list — and includes package ``__init__`` modules and
function-local imports, because forked workers execute those too.

A flagged assignment is accepted only when it is frozen
(``tuple``/``frozenset``/``MappingProxyType``) or carries a
``# repro: noqa[RPR004] -- <justification>`` explaining why sharing is
safe.  A bare noqa without justification does not count.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.quality.findings import Finding
from repro.quality.registry import (
    Rule,
    call_name,
    module_level_statements,
    register,
)

#: Callables producing mutable containers.
_MUTABLE_FACTORIES = {
    "list",
    "dict",
    "set",
    "defaultdict",
    "OrderedDict",
    "Counter",
    "deque",
    "bytearray",
    "ChainMap",
}

#: Callables whose result is safely shareable across forks.
_FREEZING_FACTORIES = {"tuple", "frozenset", "MappingProxyType", "FrozenInstanceError"}

_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)


@register
class ForkSafeWorkersRule(Rule):
    rule_id = "RPR004"
    description = "no mutable module-level containers in fork-worker imports"
    invariant = (
        "every module a fork-pool worker executes is free of mutable "
        "module-level state, so workers cannot diverge from each other or "
        "from a serial run"
    )
    requires_justification = True

    def applies_to(self, file_ctx) -> bool:
        return file_ctx.module is not None

    def check(self, file_ctx) -> Iterator[Finding]:
        if file_ctx.module not in file_ctx.ctx.fork_modules():
            return
        for statement in module_level_statements(file_ctx.tree):
            if isinstance(statement, ast.Assign):
                targets = statement.targets
                value = statement.value
            elif isinstance(statement, ast.AnnAssign) and statement.value:
                targets = [statement.target]
                value = statement.value
            else:
                continue
            names = _target_names(targets)
            if not names or all(_is_dunder(name) for name in names):
                continue
            offense = _mutability(value)
            if offense:
                label = ", ".join(names)
                yield self.finding(
                    file_ctx,
                    statement,
                    f"module-level mutable {offense} `{label}` in fork-worker "
                    f"import closure of `{file_ctx.ctx.config.fork_entry}`; "
                    "freeze it (tuple/frozenset/MappingProxyType) or add "
                    "`# repro: noqa[RPR004] -- <why sharing is safe>`",
                )


def _target_names(targets: List[ast.expr]) -> List[str]:
    names: List[str] = []
    for target in targets:
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            names.extend(
                element.id
                for element in target.elts
                if isinstance(element, ast.Name)
            )
    return names


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


def _mutability(value: ast.expr) -> str:
    """Human label of the mutable container ``value`` builds, or ``""``."""
    if isinstance(value, ast.Dict) or isinstance(value, ast.DictComp):
        return "dict"
    if isinstance(value, ast.List) or isinstance(value, ast.ListComp):
        return "list"
    if isinstance(value, ast.Set) or isinstance(value, ast.SetComp):
        return "set"
    if isinstance(value, ast.Call):
        name = call_name(value).split(".")[-1]
        if name in _FREEZING_FACTORIES:
            return ""
        if name in _MUTABLE_FACTORIES:
            return f"{name}()"
    return ""
