"""RPR002 — every random draw flows from an explicit seed.

Invariant (DESIGN.md §6): randomness enters the system only through
``np.random.default_rng(SeedSequence([...]))`` plumbing keyed by
(study seed, day, stream).  The stdlib ``random`` module functions and
NumPy's legacy global generator (``np.random.normal`` etc.) share hidden
process-wide state: they make results depend on call order and on which
worker handled which day — precisely what the parallelism contract
("parallelism changes wall-clock, never results") forbids.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.quality.findings import Finding
from repro.quality.registry import Rule, dotted_name, register

#: The only attributes of ``numpy.random`` the seeded plumbing may touch.
_NUMPY_ALLOWED = {
    "default_rng",
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "Philox",
    "SFC64",
}

#: ``random.<name>`` calls that do not draw from the shared global state.
_STDLIB_ALLOWED = {"Random", "SystemRandom", "getstate", "seed"}


@register
class SeededRngRule(Rule):
    rule_id = "RPR002"
    description = "only seeded RNGs: no stdlib random module, no numpy global generator"
    invariant = (
        "all randomness is drawn from per-day seeded generators; no call "
        "touches interpreter-global RNG state"
    )

    def check(self, file_ctx) -> Iterator[Finding]:
        random_aliases = _module_aliases(file_ctx.tree, "random")
        numpy_aliases = _module_aliases(file_ctx.tree, "numpy")
        numpy_random_aliases = _module_aliases(file_ctx.tree, "numpy.random")
        stdlib_from = _stdlib_from_imports(file_ctx.tree)
        for node in ast.walk(file_ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if not name:
                continue
            parts = name.split(".")
            head, tail = parts[0], parts[-1]
            if (
                head in random_aliases
                and len(parts) == 2
                and tail not in _STDLIB_ALLOWED
            ):
                yield self.finding(
                    file_ctx,
                    node,
                    f"`{name}()` draws from the stdlib random module's shared "
                    "global state; use a seeded np.random.Generator "
                    "(or random.Random(seed)) instead",
                )
            elif name in stdlib_from:
                yield self.finding(
                    file_ctx,
                    node,
                    f"`{name}()` was imported from the stdlib random module "
                    "and draws from shared global state; use a seeded "
                    "generator instead",
                )
            elif self._is_numpy_global(
                parts, numpy_aliases, numpy_random_aliases
            ):
                yield self.finding(
                    file_ctx,
                    node,
                    f"`{name}()` uses NumPy's legacy global generator; draw "
                    "from np.random.default_rng(SeedSequence([...])) so the "
                    "stream is keyed by (seed, day)",
                )

    @staticmethod
    def _is_numpy_global(
        parts, numpy_aliases: Set[str], numpy_random_aliases: Set[str]
    ) -> bool:
        # np.random.<fn>(...) with <fn> outside the seeded-plumbing allowance.
        if (
            len(parts) == 3
            and parts[0] in numpy_aliases
            and parts[1] == "random"
            and parts[2] not in _NUMPY_ALLOWED
        ):
            return True
        # from numpy import random as npr; npr.<fn>(...)
        if (
            len(parts) == 2
            and parts[0] in numpy_random_aliases
            and parts[1] not in _NUMPY_ALLOWED
        ):
            return True
        return False


def _module_aliases(tree: ast.Module, module: str) -> Set[str]:
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or module.split(".")[0])
        elif isinstance(node, ast.ImportFrom) and not node.level:
            parent, _, leaf = module.rpartition(".")
            if parent and node.module == parent:
                for alias in node.names:
                    if alias.name == leaf:
                        aliases.add(alias.asname or leaf)
    return aliases


def _stdlib_from_imports(tree: ast.Module) -> Set[str]:
    """Names bound via ``from random import ...`` (minus the allowed ones)."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.ImportFrom)
            and not node.level
            and node.module == "random"
        ):
            for alias in node.names:
                if alias.name not in _STDLIB_ALLOWED:
                    names.add(alias.asname or alias.name)
    return names
