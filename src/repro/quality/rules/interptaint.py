"""RPR011 — non-determinism must not flow into export sinks, even
through helpers.

Invariant (DESIGN.md §5/§13): the paper's five-year longitudinal claims
rest on byte-identical reruns — "parallelism changes wall-clock, never
results".  RPR001/RPR002 ban *direct* wall-clock and unseeded-RNG reads
in scoped code, but a helper laundered through another module defeats a
per-file rule::

    # helpers.py
    def stamp():
        return time.time()          # RPR001 flags this file...

    # export path, different file
    writer.write({"ts": stamp()})   # ...but the flow is the bug

This rule closes the gap interprocedurally: the call graph computes the
set of functions whose *return value* derives from a wall-clock or
unseeded-RNG read (a fixpoint over helper chains), and every file with
export-sink bindings gets a local taint pass — names assigned from a
non-deterministic call (directly or through such a helper) may not
appear in the arguments of a sink write.

Example violation::

    from repro.reporting import export
    row = {"generated": helpers.stamp()}   # tainted via helper chain
    export.write_rows(path, [row])         # <- RPR011

Fix guidance: pass time through the telemetry
:class:`~repro.telemetry.clock.Clock` protocol (the sanctioned
``perf_counter`` site) or ship it in the task payload / study config;
seed RNGs from the manifest.  The telemetry clock file itself is
allowlisted (``LintConfig.wallclock_allowlist``), so values threaded
through it are legitimate.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.quality.findings import Finding
from repro.quality.registry import (
    Rule,
    call_name,
    dotted_name,
    function_scopes,
    register,
)
from repro.quality.rules.anonymize import _WRITE_METHODS, _sink_bindings
from repro.quality.symbols import nondet_source, summarize_module

_MEMO_KEY = "RPR011"


@register
class InterproceduralTaintRule(Rule):
    rule_id = "RPR011"
    description = (
        "no wall-clock/RNG derived values reach export sinks, even via helpers"
    )
    invariant = (
        "export payloads are pure functions of the input data and the "
        "study config; time and randomness arrive through the Clock "
        "protocol or the manifest, never ambiently"
    )

    def check(self, file_ctx) -> Iterator[Finding]:
        config = file_ctx.ctx.config
        if any(file_ctx.relpath.endswith(e) for e in config.wallclock_allowlist):
            return
        sinks = _sink_bindings(file_ctx.tree, config.sink_modules)
        if not sinks.names and not sinks.module_aliases:
            return
        facts = file_ctx.ctx.facts()
        nondet = self._nondet(file_ctx.ctx)
        module = file_ctx.module or ""
        summary = facts.modules.get(module)
        if summary is not None:
            imports = summary.imports
        else:  # file outside the facts tree: summarize it standalone
            imports = summarize_module(module, file_ctx.tree).imports
        seen = set()
        for scope in function_scopes(file_ctx.tree):
            # The module scope's walk descends into function bodies too,
            # so identical findings surface from both passes: dedupe.
            for finding in self._check_scope(
                file_ctx, scope, sinks, facts, nondet, module, imports
            ):
                key = (finding.line, finding.column, finding.message)
                if key not in seen:
                    seen.add(key)
                    yield finding

    def _nondet(self, ctx) -> Dict[Tuple[str, str], str]:
        cached = ctx.memo.get(_MEMO_KEY)
        if cached is None:
            cached = ctx.facts().nondet_functions(
                allowlist=ctx.config.wallclock_allowlist
            )
            ctx.memo[_MEMO_KEY] = cached
        return cached

    # ------------------------------------------------------------------

    def _check_scope(
        self, file_ctx, scope, sinks, facts, nondet, module, imports
    ) -> Iterator[Finding]:
        events: List[Tuple[int, int, str, ast.AST]] = []
        for node in ast.walk(scope):
            if node is scope:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # inner scopes get their own pass
            if isinstance(node, ast.Assign):
                events.append((node.lineno, node.col_offset, "assign", node))
            elif isinstance(node, ast.Call):
                events.append((node.lineno, node.col_offset, "call", node))
        events.sort(key=lambda event: (event[0], event[1]))
        tainted: Dict[str, str] = {}  # name -> why it is non-deterministic
        writer_names: Set[str] = set()
        for _, _, kind, node in events:
            if kind == "assign":
                self._track_assign(
                    node, facts, nondet, module, imports, tainted, writer_names, sinks
                )
            elif self._is_sink_call(node, sinks, writer_names):
                yield from self._check_sink_args(
                    file_ctx, node, facts, nondet, module, imports, tainted
                )

    def _track_assign(
        self, node, facts, nondet, module, imports, tainted, writer_names, sinks
    ) -> None:
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if not targets:
            return
        reason = self._taint_reason(
            node.value, facts, nondet, module, imports, tainted
        )
        if reason is not None:
            for target in targets:
                tainted[target] = reason
        else:
            for target in targets:
                tainted.pop(target, None)
        if isinstance(node.value, ast.Call):
            callee = call_name(node.value)
            if callee.split(".")[-1] in sinks.writer_classes:
                writer_names.update(targets)

    def _taint_reason(
        self, expr, facts, nondet, module, imports, tainted
    ) -> Optional[str]:
        """Why ``expr`` is non-deterministic, or None if it is clean."""
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.id in tainted:
                return tainted[node.id]
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if not name:
                continue
            direct = nondet_source(name, imports)
            if direct:
                return direct
            target = facts.resolve_call(module, name)
            if target is not None and target in nondet:
                return f"`{name}()` — {nondet[target]}"
        return None

    def _is_sink_call(self, node: ast.Call, sinks, writer_names) -> bool:
        name = call_name(node)
        if not name:
            func = node.func
            return (
                isinstance(func, ast.Attribute)
                and func.attr in _WRITE_METHODS
                and isinstance(func.value, ast.Call)
                and call_name(func.value).split(".")[-1] in sinks.writer_classes
            )
        parts = name.split(".")
        if parts[0] in sinks.names and len(parts) == 1:
            return True
        if parts[0] in sinks.module_aliases and len(parts) >= 2:
            return True
        if (
            len(parts) == 2
            and parts[-1] in _WRITE_METHODS
            and parts[0] in writer_names
        ):
            return True
        return False

    def _check_sink_args(
        self, file_ctx, node, facts, nondet, module, imports, tainted
    ) -> Iterator[Finding]:
        for arg in [*node.args, *(kw.value for kw in node.keywords)]:
            reason = self._taint_reason(
                arg, facts, nondet, module, imports, tainted
            )
            if reason is None:
                continue
            label = dotted_name(arg) or type(arg).__name__
            yield self.finding(
                file_ctx,
                arg,
                f"`{label}` passed to export sink `{call_name(node)}` "
                f"carries non-determinism ({reason}) — exported results "
                "would differ between identical runs; thread time through "
                "the Clock protocol or the study config instead",
            )
