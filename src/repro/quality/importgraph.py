"""Static import graph over a source tree.

The fork-safety rule (RPR004) needs to know which modules a worker
process actually executes, so this module rebuilds the import graph the
same way the interpreter would — from the AST, not from hard-coded
lists:

* ``import a.b.c`` imports ``a.b.c`` *and* executes ``a`` and ``a.b``
  package ``__init__`` modules on the way;
* ``from a.b import c`` imports ``a.b`` (plus ancestors) and, when ``c``
  resolves to a submodule file, ``a.b.c`` as well;
* relative imports (``from . import x``, ``from ..y import z``) resolve
  against the importing module's package;
* imports nested inside functions count too — a fork worker runs them at
  call time, so their module state is just as shared.

Only modules that resolve to files under the analyzed root participate;
stdlib and third-party imports are edges out of the graph and ignored.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set


class ImportGraphError(ValueError):
    """Raised when an entry point cannot be resolved in the source tree."""


class ImportGraph:
    """Lazily parsed module→imports graph rooted at ``src_root``."""

    def __init__(self, src_root: Path) -> None:
        self._root = Path(src_root)
        self._edges: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # module ↔ file resolution

    def module_path(self, module: str) -> Optional[Path]:
        """The file implementing ``module`` under the root, if any."""
        base = self._root.joinpath(*module.split("."))
        init = base / "__init__.py"
        if init.is_file():
            return init
        as_file = base.with_suffix(".py")
        if as_file.is_file():
            return as_file
        return None

    def path_module(self, path: Path) -> Optional[str]:
        """Inverse of :meth:`module_path` for files under the root."""
        try:
            relative = Path(path).resolve().relative_to(self._root.resolve())
        except ValueError:
            return None
        parts = list(relative.parts)
        if not parts or not parts[-1].endswith(".py"):
            return None
        if parts[-1] == "__init__.py":
            parts = parts[:-1]
        else:
            parts[-1] = parts[-1][: -len(".py")]
        return ".".join(parts) if parts else None

    # ------------------------------------------------------------------
    # edges

    @staticmethod
    def _ancestors(module: str) -> List[str]:
        parts = module.split(".")
        return [".".join(parts[:length]) for length in range(1, len(parts))]

    def _expand(self, module: str) -> List[str]:
        """A module plus every package ``__init__`` executed to reach it."""
        return [*self._ancestors(module), module]

    def imports_of(self, module: str) -> Set[str]:
        """In-tree modules that executing ``module`` imports (memoized)."""
        cached = self._edges.get(module)
        if cached is not None:
            return cached
        path = self.module_path(module)
        found: Set[str] = set()
        if path is not None:
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
            package = module if path.name == "__init__.py" else module.rpartition(".")[0]
            for node in ast.walk(tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        found.update(self._resolving(alias.name))
                elif isinstance(node, ast.ImportFrom):
                    found.update(self._from_edges(node, package))
        resolved = {name for name in found if self.module_path(name) is not None}
        self._edges[module] = resolved
        return resolved

    def _resolving(self, dotted: str) -> List[str]:
        return [
            name
            for name in self._expand(dotted)
            if self.module_path(name) is not None
        ]

    def _from_edges(self, node: ast.ImportFrom, package: str) -> Set[str]:
        if node.level:
            base_parts = package.split(".") if package else []
            # level=1 is the current package; each extra level climbs one.
            if node.level - 1 >= len(base_parts) and node.level > 1:
                return set()
            keep = len(base_parts) - (node.level - 1)
            prefix = ".".join(base_parts[:keep])
            source = f"{prefix}.{node.module}" if node.module else prefix
        else:
            source = node.module or ""
        if not source:
            return set()
        edges: Set[str] = set(self._resolving(source))
        for alias in node.names:
            if alias.name == "*":
                continue
            submodule = f"{source}.{alias.name}"
            if self.module_path(submodule) is not None:
                edges.add(submodule)
        return edges

    # ------------------------------------------------------------------
    # closure

    def closure(self, entry_module: str) -> Set[str]:
        """``entry_module``, its package ancestors, and everything imported
        transitively — the modules a fork worker's memory image contains."""
        if self.module_path(entry_module) is None:
            raise ImportGraphError(
                f"entry module {entry_module!r} not found under {self._root}"
            )
        seen: Set[str] = set()
        stack: List[str] = [
            name
            for name in self._expand(entry_module)
            if self.module_path(name) is not None
        ]
        while stack:
            module = stack.pop()
            if module in seen:
                continue
            seen.add(module)
            stack.extend(self.imports_of(module) - seen)
        return seen


def function_exists(src_root: Path, module: str, function: str) -> bool:
    """True if ``module`` (under ``src_root``) defines ``function`` at
    module scope — used to verify a fork entry point really exists."""
    graph = ImportGraph(src_root)
    path = graph.module_path(module)
    if path is None:
        return False
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    return any(
        isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and node.name == function
        for node in tree.body
    )


def fork_closure(src_root: Path, entry: str) -> Set[str]:
    """Transitive import closure for a ``module:function`` entry point.

    Raises :class:`ImportGraphError` unless the function is genuinely
    defined in the entry module — the guarantee that the fork-safety rule
    is anchored to real code, not to a stale configuration string.
    """
    module, _, function = entry.partition(":")
    if not module:
        raise ImportGraphError(f"bad fork entry {entry!r}")
    if function and not function_exists(Path(src_root), module, function):
        raise ImportGraphError(
            f"fork entry {entry!r}: no function {function!r} in {module}"
        )
    return ImportGraph(Path(src_root)).closure(module)


def sorted_closure(modules: Iterable[str]) -> List[str]:
    return sorted(modules)
