"""SARIF 2.1.0 export: ``repro lint --format sarif``.

SARIF (Static Analysis Results Interchange Format) is what code-scanning
UIs ingest; emitting it lets the CI upload lint results as a reviewable
artifact instead of a log dump.  The document carries the required
skeleton — ``version``, ``$schema``, one ``run`` with a ``tool.driver``
(rule metadata from the registry) and one ``result`` per finding with a
``physicalLocation`` — and nothing speculative.

The export is lossless with respect to the JSON format:
:func:`findings_from_sarif` recovers the exact :class:`~repro.quality.
findings.Finding` list, which the round-trip test pins.  Note the
column convention: findings store 0-based columns (AST ``col_offset``),
SARIF requires 1-based ``startColumn``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.quality.findings import Finding, Severity
from repro.quality.registry import registered_rules

_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVEL = {Severity.ERROR: "error", Severity.WARNING: "warning"}
_SEVERITY = {"error": Severity.ERROR, "warning": Severity.WARNING}


def sarif_document(findings: Sequence[Finding]) -> Dict[str, object]:
    """The SARIF log object for ``findings`` (one run, sorted rules)."""
    catalogue = registered_rules()
    used_ids = sorted({finding.rule_id for finding in findings})
    rules = []
    for rule_id in used_ids:
        rule_class = catalogue.get(rule_id)
        descriptor: Dict[str, object] = {"id": rule_id}
        if rule_class is not None:
            descriptor["shortDescription"] = {"text": rule_class.description}
            if rule_class.invariant:
                descriptor["fullDescription"] = {"text": rule_class.invariant}
        else:
            # RPR000 (syntax errors) and friends have no registered class.
            descriptor["shortDescription"] = {"text": rule_id}
        rules.append(descriptor)
    results = [
        {
            "ruleId": finding.rule_id,
            "level": _LEVEL[finding.severity],
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.column + 1,
                        },
                    }
                }
            ],
        }
        for finding in findings
    ]
    return {
        "$schema": _SCHEMA_URI,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(findings: Sequence[Finding]) -> str:
    return json.dumps(sarif_document(findings), indent=2, sort_keys=True)


def findings_from_sarif(document: Dict[str, object]) -> List[Finding]:
    """Invert :func:`sarif_document` — used by the round-trip tests."""
    findings: List[Finding] = []
    for run in document.get("runs", ()):  # type: ignore[union-attr]
        for result in run.get("results", ()):
            location = result["locations"][0]["physicalLocation"]
            region = location["region"]
            findings.append(
                Finding(
                    path=str(location["artifactLocation"]["uri"]),
                    line=int(region["startLine"]),
                    column=int(region["startColumn"]) - 1,
                    rule_id=str(result["ruleId"]),
                    severity=_SEVERITY[str(result["level"])],
                    message=str(result["message"]["text"]),
                )
            )
    return findings
