"""The findings model: what a lint rule reports and how it serializes.

A :class:`Finding` pins one invariant violation to a ``file:line`` with a
rule id, a severity, and a human-readable message.  Findings are value
objects: they sort stably (path, line, column, rule) so reports and
baselines are deterministic, and they round-trip through JSON for the
``repro lint --format json`` output and the baseline file format.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple


class LintError(ValueError):
    """The linter's typed error family: unusable configuration, malformed
    suppression directives, unreadable baselines.

    Defined here (the leaf module of the quality package) so every layer —
    engine, baseline, suppressions, cache — can subclass it without import
    cycles.  Anything ``repro lint`` raises deliberately is a
    :class:`LintError`; a bare ``TypeError``/``KeyError`` escaping the CLI
    is a bug, not an input problem.
    """


class Severity(enum.Enum):
    """How bad a finding is; errors fail the build, warnings inform."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a precise location."""

    path: str  # POSIX-style path relative to the analysis root
    line: int
    column: int
    rule_id: str
    severity: Severity
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Finding":
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            column=int(data.get("column", 0)),  # type: ignore[arg-type]
            rule_id=str(data["rule"]),
            severity=Severity(str(data.get("severity", "error"))),
            message=str(data["message"]),
        )

    def baseline_key(self) -> Tuple[str, str, str]:
        """Line-insensitive identity used by baseline matching.

        Baselines must survive unrelated edits shifting line numbers, so
        the key is (rule, path, message) — the message embeds enough of
        the offending construct to stay specific.
        """
        return (self.rule_id, self.path, self.message)

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule_id} [{self.severity.value}] {self.message}"
        )


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Deterministic report order: by location, then rule id."""
    return sorted(findings)
