"""Per-module symbol summaries: the whole-program analysis' unit of fact.

One :class:`ModuleSummary` condenses everything the interprocedural rules
(RPR008–RPR011) need to know about a module — without keeping its AST
alive:

* every function (nested and methods included, qualified ``Outer.inner``
  style) with its call sites, explicit raise sites, module-global reads
  and writes, and whether its return value carries non-deterministic
  taint (wall-clock or unseeded RNG reads);
* call and raise sites carry their *guard stack*: the exception type
  names of every ``except`` clause lexically protecting them, so the
  call-graph layer can subtract caught exception families when it
  propagates escapes;
* classes with their base-class names (the project side of the exception
  hierarchy);
* the import map (local name → module or module symbol), which is how
  the call graph resolves dotted call names across files;
* module-level state: global names bound at import time and the calls
  the module makes while being imported (both feed RPR008's
  "written-at-import-time is safe" exemption).

Summaries are **pure functions of the file's bytes** — no configuration,
no file-system context — which is what makes them cacheable by content
hash (:mod:`repro.quality.cache`).  They serialize to plain JSON dicts
via :meth:`ModuleSummary.to_dict` / :meth:`ModuleSummary.from_dict`;
:data:`ANALYSIS_VERSION` is bumped whenever the summary shape or the
extraction semantics change, invalidating every cached fact at once.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.quality.registry import dotted_name

#: Bump to invalidate all cached facts when extraction semantics change.
ANALYSIS_VERSION = 1

#: Method names that mutate their receiver in place — a call to one of
#: these on a module-global name counts as a write to that global.
_MUTATOR_METHODS = {
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "remove",
    "discard",
    "clear",
    "sort",
    "reverse",
}

#: ``random.<fn>`` names that do NOT read hidden global RNG state.
_RNG_ALLOWED = {"Random", "SystemRandom", "getstate", "seed"}

#: ``numpy.random.<fn>`` names that are seeded-plumbing, not draws.
_NP_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "Philox",
    "SFC64",
}

#: ``time.<fn>`` / ``datetime.<method>`` reads of a run-dependent clock.
_CLOCK_FUNCS = {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter"}
_CLOCK_METHODS = {"now": ("datetime",), "utcnow": ("datetime",), "today": ("datetime", "date")}


@dataclass
class CallSite:
    """One call expression inside a function body."""

    name: str  # dotted callee name, locals rewritten to ``Cls.method``
    line: int
    guards: Tuple[str, ...] = ()  # exception type names protecting the call

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "line": self.line, "guards": list(self.guards)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CallSite":
        return cls(
            name=str(data["name"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            guards=tuple(str(g) for g in data.get("guards", ())),  # type: ignore[union-attr]
        )


@dataclass
class RaiseSite:
    """One explicit ``raise`` inside a function body.

    ``type_name`` is the raised exception's dotted name (``""`` for
    dynamic raises the analysis cannot type).  A bare ``raise`` or a
    re-raise of the handler's bound name inside an ``except T as e``
    block instead records the handler's caught types in
    ``reraise_of`` — the call-graph layer substitutes whatever the
    handler caught.
    """

    type_name: str
    line: int
    guards: Tuple[str, ...] = ()
    reraise_of: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "type": self.type_name,
            "line": self.line,
            "guards": list(self.guards),
            "reraise_of": list(self.reraise_of),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RaiseSite":
        return cls(
            type_name=str(data.get("type", "")),
            line=int(data["line"]),  # type: ignore[arg-type]
            guards=tuple(str(g) for g in data.get("guards", ())),  # type: ignore[union-attr]
            reraise_of=tuple(str(g) for g in data.get("reraise_of", ())),  # type: ignore[union-attr]
        )


@dataclass
class GlobalAccess:
    """A read or write of a module-level name from inside a function."""

    name: str
    line: int
    kind: str  # "read" | "rebind" | "mutate"

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "line": self.line, "kind": self.kind}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "GlobalAccess":
        return cls(
            name=str(data["name"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            kind=str(data["kind"]),
        )


@dataclass
class FunctionInfo:
    """Summary of one function or method body."""

    qualname: str  # "f", "Outer.inner", "Cls.method"
    line: int
    calls: List[CallSite] = field(default_factory=list)
    raises: List[RaiseSite] = field(default_factory=list)
    global_reads: List[GlobalAccess] = field(default_factory=list)
    global_writes: List[GlobalAccess] = field(default_factory=list)
    #: Direct wall-clock / unseeded-RNG reads feeding the return value.
    nondet_return: bool = False
    #: The nondet source call that taints the return, for diagnostics.
    nondet_reason: str = ""
    #: Callee names whose results flow into the return value — if one of
    #: them resolves to a nondet-returning function, so is this one.
    return_calls: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "calls": [c.to_dict() for c in self.calls],
            "raises": [r.to_dict() for r in self.raises],
            "global_reads": [g.to_dict() for g in self.global_reads],
            "global_writes": [g.to_dict() for g in self.global_writes],
            "nondet_return": self.nondet_return,
            "nondet_reason": self.nondet_reason,
            "return_calls": list(self.return_calls),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FunctionInfo":
        return cls(
            qualname=str(data["qualname"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            calls=[CallSite.from_dict(c) for c in data.get("calls", ())],  # type: ignore[union-attr]
            raises=[RaiseSite.from_dict(r) for r in data.get("raises", ())],  # type: ignore[union-attr]
            global_reads=[
                GlobalAccess.from_dict(g) for g in data.get("global_reads", ())  # type: ignore[union-attr]
            ],
            global_writes=[
                GlobalAccess.from_dict(g) for g in data.get("global_writes", ())  # type: ignore[union-attr]
            ],
            nondet_return=bool(data.get("nondet_return", False)),
            nondet_reason=str(data.get("nondet_reason", "")),
            return_calls=tuple(str(n) for n in data.get("return_calls", ())),  # type: ignore[union-attr]
        )


@dataclass
class ModuleSummary:
    """Everything the call-graph layer keeps about one module."""

    module: str
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, Tuple[str, ...]] = field(default_factory=dict)  # name -> bases
    #: local name -> "pkg.mod" (module import) or "pkg.mod:symbol".
    imports: Dict[str, str] = field(default_factory=dict)
    #: Names bound by module-level statements (import-time state).
    module_globals: Tuple[str, ...] = ()
    #: Call names executed at import time (module-level statements).
    module_calls: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "module": self.module,
            "functions": {q: f.to_dict() for q, f in sorted(self.functions.items())},
            "classes": {n: list(b) for n, b in sorted(self.classes.items())},
            "imports": dict(sorted(self.imports.items())),
            "module_globals": sorted(self.module_globals),
            "module_calls": sorted(self.module_calls),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ModuleSummary":
        return cls(
            module=str(data["module"]),
            functions={
                str(q): FunctionInfo.from_dict(f)
                for q, f in data.get("functions", {}).items()  # type: ignore[union-attr]
            },
            classes={
                str(n): tuple(str(b) for b in bases)
                for n, bases in data.get("classes", {}).items()  # type: ignore[union-attr]
            },
            imports={
                str(k): str(v) for k, v in data.get("imports", {}).items()  # type: ignore[union-attr]
            },
            module_globals=tuple(str(n) for n in data.get("module_globals", ())),  # type: ignore[union-attr]
            module_calls=tuple(str(n) for n in data.get("module_calls", ())),  # type: ignore[union-attr]
        )


# ----------------------------------------------------------------------
# extraction


def summarize_module(module: str, tree: ast.Module) -> ModuleSummary:
    """Extract a :class:`ModuleSummary` from a parsed module."""
    summary = ModuleSummary(module=module)
    summary.imports = _import_map(tree)
    module_globals: Set[str] = set()
    module_calls: Set[str] = set()
    for statement in _import_time_statements(tree.body):
        _collect_bound_names(statement, module_globals)
        for node in ast.walk(statement):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                break  # function bodies don't run at import time
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name:
                    module_calls.add(name)
    summary.module_globals = tuple(sorted(module_globals))
    summary.module_calls = tuple(sorted(module_calls))
    for qualname, node, class_name in _walk_functions(tree):
        summary.functions[qualname] = _summarize_function(
            qualname, node, module_globals, class_name
        )
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            bases = tuple(
                name for name in (dotted_name(base) for base in node.bases) if name
            )
            summary.classes[node.name] = bases
    # Direct non-determinism: a return fed by a wall-clock/RNG call in
    # this very module.  Helper-chain taint is the call graph's fixpoint.
    for info in summary.functions.values():
        for callee in info.return_calls:
            reason = nondet_source(callee, summary.imports)
            if reason:
                info.nondet_return = True
                info.nondet_reason = reason
                break
    return summary


def _import_time_statements(body: Sequence[ast.stmt]):
    """Top-level statements, descending into if/try (they run on import)."""
    for statement in body:
        yield statement
        if isinstance(statement, ast.If):
            yield from _import_time_statements(statement.body)
            yield from _import_time_statements(statement.orelse)
        elif isinstance(statement, ast.Try):
            yield from _import_time_statements(statement.body)
            yield from _import_time_statements(statement.orelse)
            yield from _import_time_statements(statement.finalbody)
            for handler in statement.handlers:
                yield from _import_time_statements(handler.body)


def _collect_bound_names(statement: ast.stmt, into: Set[str]) -> None:
    if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        into.add(statement.name)
        return
    if isinstance(statement, ast.Assign):
        for target in statement.targets:
            _target_names(target, into)
    elif isinstance(statement, (ast.AnnAssign, ast.AugAssign)):
        _target_names(statement.target, into)
    elif isinstance(statement, (ast.Import, ast.ImportFrom)):
        for alias in statement.names:
            if alias.name == "*":
                continue
            into.add(alias.asname or alias.name.split(".")[0])


def _target_names(target: ast.AST, into: Set[str]) -> None:
    if isinstance(target, ast.Name):
        into.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _target_names(element, into)


def _import_map(tree: ast.Module) -> Dict[str, str]:
    """Local name → imported module (``a.b``) or symbol (``a.b:c``)."""
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                imports[bound] = alias.name if alias.asname else alias.name.split(".")[0]
                if alias.asname:
                    imports[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = f"{node.module}:{alias.name}"
        elif isinstance(node, ast.ImportFrom) and node.level:
            # Relative imports are resolved by the call-graph layer, which
            # knows the module's package; mark them with the level prefix.
            source = "." * node.level + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = f"{source}:{alias.name}"
    return imports


def _walk_functions(tree: ast.Module):
    """Yield (qualname, node, enclosing_class_name) for every function."""

    def visit(nodes, prefix: str, class_name: Optional[str]):
        for node in nodes:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{node.name}"
                yield qualname, node, class_name
                yield from visit(node.body, f"{qualname}.", class_name)
            elif isinstance(node, ast.ClassDef):
                yield from visit(node.body, f"{prefix}{node.name}.", node.name)
            elif isinstance(node, (ast.If, ast.Try)):
                yield from visit(ast.iter_child_nodes(node), prefix, class_name)

    yield from visit(tree.body, "", None)


class _GuardedWalker:
    """Walks one function body tracking the enclosing ``except`` guards."""

    def __init__(self) -> None:
        self.calls: List[Tuple[ast.Call, Tuple[str, ...]]] = []
        self.raises: List[Tuple[ast.Raise, Tuple[str, ...], Tuple[str, ...]]] = []

    def walk(self, body: Sequence[ast.stmt]) -> None:
        self._walk(body, guards=(), handler_ctx=())

    def _walk(
        self,
        nodes,
        guards: Tuple[str, ...],
        handler_ctx: Tuple[Tuple[str, Tuple[str, ...]], ...],
    ) -> None:
        for node in nodes:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested scopes are summarized separately
            if isinstance(node, ast.Try):
                inner = guards + tuple(
                    name
                    for handler in node.handlers
                    for name in _handler_type_names(handler)
                )
                self._walk(node.body, inner, handler_ctx)
                # else/finally and the handlers themselves are NOT
                # protected by this try's handlers.
                self._walk(node.orelse, guards, handler_ctx)
                self._walk(node.finalbody, guards, handler_ctx)
                for handler in node.handlers:
                    caught = tuple(_handler_type_names(handler))
                    bound = handler.name or ""
                    self._walk(
                        handler.body,
                        guards,
                        handler_ctx + ((bound, caught),),
                    )
                continue
            if isinstance(node, ast.Raise):
                self._record_raise(node, guards, handler_ctx)
            for _, value in ast.iter_fields(node):
                if isinstance(value, list):
                    statements = [v for v in value if isinstance(v, ast.stmt)]
                    if statements:
                        self._walk(statements, guards, handler_ctx)
                    for element in value:
                        if isinstance(element, ast.AST) and not isinstance(
                            element, ast.stmt
                        ):
                            self._walk_expr(element, guards)
                elif isinstance(value, ast.AST):
                    self._walk_expr(value, guards)

    def _walk_expr(self, node: ast.AST, guards: Tuple[str, ...]) -> None:
        stack: List[ast.AST] = [node]
        while stack:
            sub = stack.pop()
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue  # pruned: nested scopes get their own summary
            if isinstance(sub, ast.Call):
                self.calls.append((sub, guards))
            stack.extend(ast.iter_child_nodes(sub))

    def _record_raise(self, node: ast.Raise, guards, handler_ctx) -> None:
        if node.exc is None:
            # Bare ``raise``: re-raises whatever the innermost handler caught.
            caught = handler_ctx[-1][1] if handler_ctx else ()
            self.raises.append((node, guards, caught))
            return
        root = node.exc
        while isinstance(root, (ast.Call, ast.Attribute)):
            root = root.func if isinstance(root, ast.Call) else root.value
        if isinstance(root, ast.Name):
            for bound, caught in reversed(handler_ctx):
                if bound and root.id == bound:
                    # ``raise e`` / ``raise e.with_context(...)``: the
                    # escaping types are whatever the handler caught.
                    self.raises.append((node, guards, caught))
                    return
        self.raises.append((node, guards, ()))


def _handler_type_names(handler: ast.ExceptHandler) -> List[str]:
    if handler.type is None:
        return ["*"]
    if isinstance(handler.type, ast.Tuple):
        return [dotted_name(el) or "*" for el in handler.type.elts]
    return [dotted_name(handler.type) or "*"]


def _summarize_function(
    qualname: str,
    node,
    module_globals: Set[str],
    class_name: Optional[str],
) -> FunctionInfo:
    info = FunctionInfo(qualname=qualname, line=node.lineno)
    local_names = _local_bindings(node)
    declared_global = {
        name
        for stmt in ast.walk(node)
        if isinstance(stmt, ast.Global)
        for name in stmt.names
    }
    receiver_types = _local_constructors(node)
    if class_name:
        receiver_types.setdefault("self", class_name)

    walker = _GuardedWalker()
    walker.walk(node.body)
    for call, guards in walker.calls:
        name = dotted_name(call.func)
        if not name:
            continue
        parts = name.split(".")
        if parts[0] in receiver_types and len(parts) > 1:
            name = ".".join([receiver_types[parts[0]], *parts[1:]])
        info.calls.append(CallSite(name=name, line=call.lineno, guards=guards))
    for raise_node, guards, reraise_of in walker.raises:
        type_name = ""
        if raise_node.exc is not None and not reraise_of:
            exc = raise_node.exc
            if isinstance(exc, ast.Call):
                type_name = dotted_name(exc.func)
            else:
                type_name = dotted_name(exc)
        info.raises.append(
            RaiseSite(
                type_name=type_name,
                line=raise_node.lineno,
                guards=guards,
                reraise_of=reraise_of,
            )
        )

    _collect_global_accesses(node, module_globals, local_names, declared_global, info)
    _analyze_return_taint(node, info)
    return info


def _local_bindings(node) -> Set[str]:
    """Names bound locally in the function (so not module-global reads)."""
    bound: Set[str] = set()
    args = node.args
    for arg in [
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *([args.vararg] if args.vararg else []),
        *([args.kwarg] if args.kwarg else []),
    ]:
        bound.add(arg.arg)
    for sub in ast.walk(node):
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if sub is not node:
                bound.add(sub.name)
        elif isinstance(sub, ast.Assign):
            for target in sub.targets:
                _target_names(target, bound)
        elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
            _target_names(sub.target, bound)
        elif isinstance(sub, (ast.For, ast.AsyncFor)):
            _target_names(sub.target, bound)
        elif isinstance(sub, (ast.With, ast.AsyncWith)):
            for item in sub.items:
                if item.optional_vars is not None:
                    _target_names(item.optional_vars, bound)
        elif isinstance(sub, ast.ExceptHandler) and sub.name:
            bound.add(sub.name)
        elif isinstance(sub, ast.comprehension):
            _target_names(sub.target, bound)
        elif isinstance(sub, (ast.Import, ast.ImportFrom)):
            for alias in sub.names:
                if alias.name != "*":
                    bound.add(alias.asname or alias.name.split(".")[0])
    return bound


def _local_constructors(node) -> Dict[str, str]:
    """``name -> ClassName`` for locals assigned from a constructor call,
    so ``pool.submit`` resolves as ``SupervisedPool.submit``."""
    ctors: Dict[str, str] = {}
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Assign) or not isinstance(sub.value, ast.Call):
            continue
        callee = dotted_name(sub.value.func)
        if not callee or not callee.split(".")[-1][:1].isupper():
            continue
        for target in sub.targets:
            if isinstance(target, ast.Name):
                ctors[target.id] = callee.split(".")[-1]
    return ctors


def _collect_global_accesses(
    node,
    module_globals: Set[str],
    local_names: Set[str],
    declared_global: Set[str],
    info: FunctionInfo,
) -> None:
    visible_globals = (module_globals | declared_global) - (
        local_names - declared_global
    )
    for sub in ast.walk(node):
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) and sub is not node:
            continue
        if isinstance(sub, ast.Assign):
            for target in sub.targets:
                _global_write_targets(target, declared_global, visible_globals, info)
        elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
            _global_write_targets(sub.target, declared_global, visible_globals, info)
        elif isinstance(sub, ast.Delete):
            for target in sub.targets:
                _global_write_targets(target, declared_global, visible_globals, info)
        elif isinstance(sub, ast.Call):
            func = sub.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATOR_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id in visible_globals
            ):
                info.global_writes.append(
                    GlobalAccess(name=func.value.id, line=sub.lineno, kind="mutate")
                )
        elif isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
            if sub.id in visible_globals:
                info.global_reads.append(
                    GlobalAccess(name=sub.id, line=sub.lineno, kind="read")
                )


def _global_write_targets(
    target: ast.AST,
    declared_global: Set[str],
    visible_globals: Set[str],
    info: FunctionInfo,
) -> None:
    if isinstance(target, ast.Name):
        if target.id in declared_global:
            info.global_writes.append(
                GlobalAccess(name=target.id, line=target.lineno, kind="rebind")
            )
    elif isinstance(target, ast.Subscript):
        base = target.value
        if isinstance(base, ast.Name) and base.id in visible_globals:
            info.global_writes.append(
                GlobalAccess(name=base.id, line=target.lineno, kind="mutate")
            )
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _global_write_targets(element, declared_global, visible_globals, info)


# ----------------------------------------------------------------------
# non-determinism taint (feeds RPR011)


def nondet_source(name: str, imports: Dict[str, str]) -> str:
    """If ``name`` is a wall-clock or unseeded-RNG call, say which; ``""``
    otherwise.  Resolution uses the module's import map, so aliases
    (``import time as t``) are seen through."""
    parts = name.split(".")
    head, tail = parts[0], parts[-1]
    target = imports.get(head, "")
    if tail in _CLOCK_METHODS and len(parts) >= 2:
        if parts[-2] in _CLOCK_METHODS[tail]:
            return f"wall-clock read `{name}()`"
    if target == "time" and len(parts) == 2 and tail in _CLOCK_FUNCS:
        return f"wall-clock read `{name}()`"
    if target.startswith("time:") and target.split(":")[1] in _CLOCK_FUNCS:
        return f"wall-clock read `{name}()`"
    if target == "random" and len(parts) == 2 and tail not in _RNG_ALLOWED:
        return f"unseeded RNG draw `{name}()`"
    if (
        target.startswith("random:")
        and len(parts) == 1
        and target.split(":")[1] not in _RNG_ALLOWED
    ):
        return f"unseeded RNG draw `{name}()`"
    if (
        target == "numpy"
        and len(parts) == 3
        and parts[1] == "random"
        and parts[2] not in _NP_RANDOM_ALLOWED
    ):
        return f"unseeded RNG draw `{name}()`"
    if (
        target in ("numpy.random", "numpy:random")
        and len(parts) == 2
        and parts[1] not in _NP_RANDOM_ALLOWED
    ):
        return f"unseeded RNG draw `{name}()`"
    if name in ("os.urandom", "uuid.uuid1", "uuid.uuid4") and target in ("os", "uuid"):
        return f"non-deterministic source `{name}()`"
    return ""


def _scope_walk(node):
    """``ast.walk`` pruned at nested function/lambda boundaries."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        sub = stack.pop()
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield sub
        stack.extend(ast.iter_child_nodes(sub))


def _analyze_return_taint(node, info: FunctionInfo) -> None:
    """Record which callee results feed the function's return value.

    The pass is local and coarse: a name assigned *anywhere* in the
    function from a call feeds the return if that name is returned.
    Whether any of those callees is a non-deterministic source is decided
    later — by :func:`summarize_module` for direct sources (it holds the
    import map) and by the call graph's fixpoint for helper chains.
    """
    assigned_from: Dict[str, List[str]] = {}
    for sub in _scope_walk(node):
        if isinstance(sub, ast.Assign):
            calls = [
                dotted_name(c.func)
                for c in ast.walk(sub.value)
                if isinstance(c, ast.Call) and dotted_name(c.func)
            ]
            if not calls:
                continue
            for target in sub.targets:
                if isinstance(target, ast.Name):
                    assigned_from.setdefault(target.id, []).extend(calls)
    return_calls: List[str] = []
    for sub in _scope_walk(node):
        if not isinstance(sub, (ast.Return, ast.Yield)) or sub.value is None:
            continue
        for inner in ast.walk(sub.value):
            if isinstance(inner, ast.Call):
                name = dotted_name(inner.func)
                if name:
                    return_calls.append(name)
            elif isinstance(inner, ast.Name) and isinstance(inner.ctx, ast.Load):
                return_calls.extend(assigned_from.get(inner.id, ()))
    info.return_calls = tuple(dict.fromkeys(return_calls))
