"""The active telemetry context: how instrumented layers find the sinks.

Hot layers (flow expansion, stage-1 analytics, the dataflow engine, the
checkpoint store) cannot thread a registry argument through every call —
that would churn a dozen public signatures for a subsystem that is off
by default.  Instead one process-local *active* :class:`Telemetry` is
installed with :func:`activate`; the module-level helpers (:func:`count`,
:func:`observe`, :func:`span`, :func:`event`) route to it and collapse to
no-ops when nothing is active.

Per-process by design: each pool worker activates a fresh bundle around
each day task and ships the resulting snapshot back on the result pipe,
so nothing telemetric ever crosses a process boundary live — only
immutable snapshots do (which is why the fork-safety lint accepts the
``_ACTIVE`` slot below).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.telemetry.clock import Clock, MonotonicClock, clock_for
from repro.telemetry.metrics import (
    MetricRegistry,
    MetricsSnapshot,
    NoopRegistry,
    Number,
)
from repro.telemetry.spans import NoopSpanRecorder, SpanRecord, SpanRecorder


@dataclass(frozen=True)
class TelemetrySnapshot:
    """The picklable result of one collection scope (e.g. one day task)."""

    metrics: MetricsSnapshot
    spans: tuple  # Tuple[SpanRecord, ...]

    def is_empty(self) -> bool:
        return self.metrics.is_empty() and not self.spans


class Telemetry:
    """One clock + one registry + one span recorder, enabled or inert."""

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock: Clock = clock if clock is not None else MonotonicClock()
        self.registry: MetricRegistry = MetricRegistry()
        self.spans: SpanRecorder = SpanRecorder(self.clock)

    @property
    def enabled(self) -> bool:
        return True

    @classmethod
    def for_spec(cls, clock_spec: str) -> "Telemetry":
        return cls(clock_for(clock_spec))

    def snapshot(self) -> TelemetrySnapshot:
        return TelemetrySnapshot(
            metrics=self.registry.snapshot(),
            spans=tuple(self.spans.records()),
        )


class _NullTelemetry(Telemetry):
    """Disabled telemetry: shared no-op instruments, no clock reads."""

    def __init__(self) -> None:
        self.clock = None  # type: ignore[assignment]
        self.registry = NoopRegistry()
        self.spans = NoopSpanRecorder()

    @property
    def enabled(self) -> bool:
        return False

    def snapshot(self) -> TelemetrySnapshot:
        return TelemetrySnapshot(metrics=MetricsSnapshot(), spans=())


#: The shared inert bundle — also the safe default.
NULL = _NullTelemetry()

_ACTIVE = NULL


def get() -> Telemetry:
    """The process's active telemetry (the inert NULL when none is)."""
    return _ACTIVE


@contextmanager
def activate(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Install ``telemetry`` as the process-local sink for the block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = telemetry
    try:
        yield telemetry
    finally:
        _ACTIVE = previous


# -- instrumentation helpers (one call per site on the hot path) ----------


def count(name: str, amount: Number = 1, **labels: object) -> None:
    _ACTIVE.registry.counter(name, **labels).inc(amount)


def set_gauge(name: str, value: Number, **labels: object) -> None:
    _ACTIVE.registry.gauge(name, **labels).set(value)


def observe(
    name: str,
    value: Number,
    buckets: Optional[Sequence[float]] = None,
    **labels: object,
) -> None:
    _ACTIVE.registry.histogram(name, buckets=buckets, **labels).observe(value)


def span(name: str, **attrs: object):
    """Context manager for a span on the active recorder."""
    return _ACTIVE.spans.span(name, **attrs)


def event(name: str, **attrs: object) -> None:
    _ACTIVE.spans.event(name, **attrs)


def spans_of(snapshot: TelemetrySnapshot) -> List[SpanRecord]:
    return list(snapshot.spans)
