"""Structured tracing: spans and point events over a pluggable clock.

A :class:`SpanRecorder` produces a flat list of :class:`SpanRecord`\\ s
that encode a tree through sequential ids and parent pointers — the
structure the paper's operators needed from their cluster's job history
("what did the platform do, stage by stage, for this day?").  Typical
trace of one study day::

    day(2017-04-12)
    ├── aggregate
    ├── hourly
    └── flows
        ├── expand
        └── stage1

Ids are assigned in *start* order by a plain counter, never from a
global or a wall clock, so a recorder driven by deterministic code on a
:class:`~repro.telemetry.clock.VirtualClock` emits byte-identical traces
run after run.  Records are picklable; pool workers ship their per-day
trace back alongside the day's partial and the parent re-ids them into
the run-wide forest in sorted-day order.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.telemetry.clock import Clock


@dataclass(frozen=True)
class EventRecord:
    """A point annotation inside a span (retry fired, checkpoint hit...)."""

    name: str
    at: float
    attrs: Tuple[Tuple[str, str], ...] = ()


@dataclass(frozen=True)
class SpanRecord:
    """One completed span; ``parent`` is the id of the enclosing span."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: float
    attrs: Tuple[Tuple[str, str], ...] = ()
    events: Tuple[EventRecord, ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start


class _LiveSpan:
    """Context manager handed out by :meth:`SpanRecorder.span`."""

    __slots__ = ("_recorder", "_span_id", "_name", "_attrs", "_start", "_events")

    def __init__(
        self,
        recorder: "SpanRecorder",
        span_id: int,
        name: str,
        attrs: Tuple[Tuple[str, str], ...],
    ) -> None:
        self._recorder = recorder
        self._span_id = span_id
        self._name = name
        self._attrs = attrs
        self._start = 0.0
        self._events: List[EventRecord] = []

    def __enter__(self) -> "_LiveSpan":
        self._start = self._recorder.clock.now()
        self._recorder._stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = self._recorder.clock.now()
        stack = self._recorder._stack
        assert stack and stack[-1] is self, "spans must close LIFO"
        stack.pop()
        attrs = self._attrs
        if exc_type is not None:
            attrs = attrs + (("error", exc_type.__name__),)
        parent = stack[-1]._span_id if stack else None
        self._recorder._records.append(
            SpanRecord(
                span_id=self._span_id,
                parent_id=parent,
                name=self._name,
                start=self._start,
                end=end,
                attrs=attrs,
                events=tuple(self._events),
            )
        )

    def event(self, name: str, **attrs: object) -> None:
        self._events.append(
            EventRecord(
                name=name,
                at=self._recorder.clock.now(),
                attrs=tuple(sorted((k, str(v)) for k, v in attrs.items())),
            )
        )


class SpanRecorder:
    """Issues spans over one clock; collects completed records."""

    enabled = True

    def __init__(self, clock: Clock) -> None:
        self.clock = clock
        self._next_id = 0
        self._stack: List[_LiveSpan] = []
        self._records: List[SpanRecord] = []

    def span(self, name: str, **attrs: object) -> _LiveSpan:
        span_id = self._next_id
        self._next_id += 1
        return _LiveSpan(
            self,
            span_id,
            name,
            tuple(sorted((k, str(v)) for k, v in attrs.items())),
        )

    def event(self, name: str, **attrs: object) -> None:
        """Attach an event to the innermost open span (dropped if none)."""
        if self._stack:
            self._stack[-1].event(name, **attrs)

    def records(self) -> List[SpanRecord]:
        """Completed spans, ordered by completion; ids are start-ordered."""
        return list(self._records)


class _NoopLiveSpan:
    __slots__ = ()

    def __enter__(self) -> "_NoopLiveSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def event(self, name: str, **attrs: object) -> None:
        pass


_NOOP_SPAN = _NoopLiveSpan()


class NoopSpanRecorder(SpanRecorder):
    """Disabled tracing: every span is the same inert context manager."""

    enabled = False

    def __init__(self) -> None:
        self.clock = None  # type: ignore[assignment]
        self._records = []

    def span(self, name: str, **attrs: object):  # type: ignore[override]
        return _NOOP_SPAN

    def event(self, name: str, **attrs: object) -> None:
        pass

    def records(self) -> List[SpanRecord]:
        return []


# ----------------------------------------------------------------------
# Forest assembly (used when merging worker traces into the run trace)


def reparent(
    records: List[SpanRecord],
    id_offset: int,
    root_parent: Optional[int],
    extra_root_attrs: Tuple[Tuple[str, str], ...] = (),
) -> List[SpanRecord]:
    """Shift a trace's ids by ``id_offset`` and graft its roots.

    Worker traces all start at id 0; the parent offsets each day's trace
    past everything merged before it and hangs the day's root spans under
    its own run span, yielding one globally consistent forest.
    """
    out: List[SpanRecord] = []
    for record in records:
        parent: Optional[int]
        attrs = record.attrs
        if record.parent_id is None:
            parent = root_parent
            if extra_root_attrs:
                attrs = tuple(sorted(attrs + extra_root_attrs))
        else:
            parent = record.parent_id + id_offset
        out.append(
            replace(
                record,
                span_id=record.span_id + id_offset,
                parent_id=parent,
                attrs=attrs,
            )
        )
    return out


def span_tree(records: List[SpanRecord]) -> List[Tuple[SpanRecord, int]]:
    """Flatten a record list to (record, depth) rows in tree order.

    Children sort by span id (start order) under their parent; roots by
    id.  Purely structural — no clock reads — so it is safe anywhere.
    """
    children: Dict[Optional[int], List[SpanRecord]] = {}
    for record in records:
        children.setdefault(record.parent_id, []).append(record)
    for siblings in children.values():
        siblings.sort(key=lambda record: record.span_id)

    rows: List[Tuple[SpanRecord, int]] = []

    def walk(parent: Optional[int], depth: int) -> None:
        for record in children.get(parent, []):
            rows.append((record, depth))
            walk(record.span_id, depth + 1)

    walk(None, 0)
    return rows
