"""Deterministic metric instruments: counters, gauges, histograms.

A :class:`MetricRegistry` hands out instruments keyed by ``(name, sorted
label items)``.  Everything is built for two properties the paper's own
platform accounting needed (Section 2.2 — per-stage record counts are
what kept 247 billion flows trustworthy):

* **Determinism.**  Label sets are canonicalized by sorting, snapshots
  iterate in sorted key order, and merging float sums uses ``math.fsum``
  over a caller-sorted snapshot sequence — so merged values never depend
  on dict insertion order, hash seeds, or which worker finished first.
* **Zero cost when disabled.**  The default registry is
  :class:`NoopRegistry`, whose instruments are shared singletons with
  empty method bodies; instrumented hot paths pay one attribute lookup
  and one no-op call per site (benchmarked < 2% on the pipeline bench).

Snapshots (:class:`MetricsSnapshot`) are plain picklable containers:
pool workers ship them back through the existing result pipes and the
parent merges them in sorted-day order (:func:`merge_snapshots`).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]
LabelItems = Tuple[Tuple[str, str], ...]
MetricKey = Tuple[str, LabelItems]

#: Default latency buckets (seconds): micro-day tasks up to slow minutes.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0
)


def canonical_labels(labels: Dict[str, object]) -> LabelItems:
    """Labels as a sorted, hashable, string-valued tuple."""
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


# ----------------------------------------------------------------------
# Instruments


class Counter:
    """A monotonically increasing count (int until a float is added)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self._value += amount

    @property
    def value(self) -> Number:
        return self._value


class Gauge:
    """A point-in-time value (workers in flight, live flows, ...)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value: Number = 0

    def set(self, value: Number) -> None:
        self._value = value

    def inc(self, amount: Number = 1) -> None:
        self._value += amount

    def dec(self, amount: Number = 1) -> None:
        self._value -= amount

    @property
    def value(self) -> Number:
        return self._value


class Histogram:
    """Fixed-bucket histogram (cumulative-style export, Prometheus `le`).

    Bucket bounds are fixed at construction; observations land in the
    first bucket whose upper bound is >= the value, with an implicit
    +Inf overflow bucket.  ``sum`` is tracked per-instrument; cross-
    worker sums are recombined with ``fsum`` at merge time.
    """

    __slots__ = ("bounds", "counts", "overflow", "total", "_sum")

    def __init__(self, bounds: Sequence[float]) -> None:
        ordered = tuple(float(bound) for bound in bounds)
        if not ordered or any(
            later <= earlier for later, earlier in zip(ordered[1:], ordered)
        ):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bounds = ordered
        self.counts = [0] * len(ordered)
        self.overflow = 0
        self.total = 0
        self._sum = 0.0

    def observe(self, value: Number) -> None:
        index = bisect.bisect_left(self.bounds, value)
        if index == len(self.bounds):
            self.overflow += 1
        else:
            self.counts[index] += 1
        self.total += 1
        self._sum += float(value)

    @property
    def sum(self) -> float:
        return self._sum


# ----------------------------------------------------------------------
# Snapshots: plain, picklable, deterministic


@dataclass(frozen=True)
class HistogramValue:
    """One histogram's state, decoupled from the live instrument."""

    bounds: Tuple[float, ...]
    counts: Tuple[int, ...]
    overflow: int
    total: int
    sum: float


@dataclass
class MetricsSnapshot:
    """Every instrument's value at one instant, in sorted key order."""

    counters: Dict[MetricKey, Number] = field(default_factory=dict)
    gauges: Dict[MetricKey, Number] = field(default_factory=dict)
    histograms: Dict[MetricKey, HistogramValue] = field(default_factory=dict)

    def is_empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms)


def merge_snapshots(snapshots: Iterable[MetricsSnapshot]) -> MetricsSnapshot:
    """Fold snapshots into one, independent of per-snapshot key order.

    The *sequence* order matters only for gauges (last writer wins), so
    callers pass snapshots in a deterministic order — the study runner
    merges per-day snapshots sorted by calendar day.  Counter and
    histogram sums are order-independent: integer sums exactly, float
    sums via ``fsum`` over the collected addends.
    """
    counter_parts: Dict[MetricKey, List[Number]] = {}
    gauges: Dict[MetricKey, Number] = {}
    histogram_parts: Dict[MetricKey, List[HistogramValue]] = {}
    for snapshot in snapshots:
        for key, value in snapshot.counters.items():
            counter_parts.setdefault(key, []).append(value)
        for key, value in snapshot.gauges.items():
            gauges[key] = value
        for key, value in snapshot.histograms.items():
            histogram_parts.setdefault(key, []).append(value)
    merged = MetricsSnapshot()
    for key in sorted(counter_parts):
        parts = counter_parts[key]
        if any(isinstance(part, float) for part in parts):
            merged.counters[key] = math.fsum(parts)
        else:
            merged.counters[key] = sum(parts)
    for key in sorted(gauges):
        merged.gauges[key] = gauges[key]
    for key in sorted(histogram_parts):
        parts = histogram_parts[key]
        bounds = parts[0].bounds
        if any(part.bounds != bounds for part in parts):
            raise ValueError(
                f"histogram {key!r} merged across differing bucket bounds"
            )
        merged.histograms[key] = HistogramValue(
            bounds=bounds,
            counts=tuple(
                sum(part.counts[i] for part in parts)
                for i in range(len(bounds))
            ),
            overflow=sum(part.overflow for part in parts),
            total=sum(part.total for part in parts),
            sum=math.fsum(part.sum for part in parts),
        )
    return merged


# ----------------------------------------------------------------------
# Registries


class MetricRegistry:
    """Hands out instruments; the unit of collection and snapshotting."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[MetricKey, Counter] = {}
        self._gauges: Dict[MetricKey, Gauge] = {}
        self._histograms: Dict[MetricKey, Histogram] = {}

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, canonical_labels(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, canonical_labels(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: object,
    ) -> Histogram:
        key = (name, canonical_labels(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(
                buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS
            )
        return instrument

    def snapshot(self) -> MetricsSnapshot:
        """Current values in sorted key order (picklable, detached)."""
        snap = MetricsSnapshot()
        for key in sorted(self._counters):
            snap.counters[key] = self._counters[key].value
        for key in sorted(self._gauges):
            snap.gauges[key] = self._gauges[key].value
        for key in sorted(self._histograms):
            hist = self._histograms[key]
            snap.histograms[key] = HistogramValue(
                bounds=hist.bounds,
                counts=tuple(hist.counts),
                overflow=hist.overflow,
                total=hist.total,
                sum=hist.sum,
            )
        return snap


class _NoopCounter(Counter):
    __slots__ = ()

    def inc(self, amount: Number = 1) -> None:
        pass


class _NoopGauge(Gauge):
    __slots__ = ()

    def set(self, value: Number) -> None:
        pass

    def inc(self, amount: Number = 1) -> None:
        pass

    def dec(self, amount: Number = 1) -> None:
        pass


class _NoopHistogram(Histogram):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__((1.0,))

    def observe(self, value: Number) -> None:
        pass


class NoopRegistry(MetricRegistry):
    """The disabled-by-default registry: shared inert singletons.

    Every lookup returns the same do-nothing instrument, so instrumented
    code costs one method call per site and allocates nothing.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._counter = _NoopCounter()
        self._gauge = _NoopGauge()
        self._histogram = _NoopHistogram()

    def counter(self, name: str, **labels: object) -> Counter:
        return self._counter

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._gauge

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: object,
    ) -> Histogram:
        return self._histogram

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot()
