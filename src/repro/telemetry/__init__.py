"""Deterministic telemetry: counters, histograms, and stage spans.

The observability tier of the reproduction (DESIGN.md §11).  Everything
is zero-dependency and deterministic by construction: metrics merge in
sorted label order with ``fsum`` for float sums, spans are id-ordered
over a pluggable clock, and the disabled default (:data:`runtime.NULL`)
costs one no-op call per instrumentation site.

Quick tour::

    from repro.telemetry import Telemetry, runtime
    from repro.telemetry.clock import VirtualClock

    tele = Telemetry(VirtualClock())
    with runtime.activate(tele):
        with runtime.span("stage", day="2017-04-12"):
            runtime.count("records", 42)
    snap = tele.snapshot()
"""

from repro.telemetry import runtime
from repro.telemetry.clock import (
    CLOCK_SPECS,
    Clock,
    MonotonicClock,
    VirtualClock,
    clock_for,
)
from repro.telemetry.export import (
    RunEvent,
    RunTelemetry,
    ascii_summary,
    jsonl_lines,
    prometheus_text,
    write_jsonl,
    write_prometheus,
    write_summary,
)
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramValue,
    MetricRegistry,
    MetricsSnapshot,
    NoopRegistry,
    merge_snapshots,
)
from repro.telemetry.runtime import NULL, Telemetry, TelemetrySnapshot, activate
from repro.telemetry.spans import (
    EventRecord,
    NoopSpanRecorder,
    SpanRecord,
    SpanRecorder,
    reparent,
    span_tree,
)

__all__ = [
    "CLOCK_SPECS",
    "Clock",
    "MonotonicClock",
    "VirtualClock",
    "clock_for",
    "RunEvent",
    "RunTelemetry",
    "ascii_summary",
    "jsonl_lines",
    "prometheus_text",
    "write_jsonl",
    "write_prometheus",
    "write_summary",
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramValue",
    "MetricRegistry",
    "MetricsSnapshot",
    "NoopRegistry",
    "merge_snapshots",
    "NULL",
    "Telemetry",
    "TelemetrySnapshot",
    "activate",
    "EventRecord",
    "NoopSpanRecorder",
    "SpanRecord",
    "SpanRecorder",
    "reparent",
    "span_tree",
    "runtime",
]
