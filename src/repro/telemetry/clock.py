"""Telemetry clocks: the single sanctioned wall-clock call site.

The reproduction's core invariant is that results are a pure function of
(config, seed, calendar) — `repro lint` (RPR001) bans wall-clock reads
across synthesis, analytics, figures, dataflow, tstat, and core.  But a
telemetry layer *exists* to measure elapsed time, so the ban needs one
carefully fenced exception.  This module is it: the lint allowlist names
``repro/telemetry/clock.py`` as the only file permitted to touch
``time.perf_counter``, and everything else — span durations in
:mod:`repro.telemetry.spans`, task latency in
:mod:`repro.core.parallel`, retry backoff scheduling — reads time through
the :class:`Clock` protocol defined here.

Two implementations:

* :class:`MonotonicClock` — real monotonic time for production runs;
* :class:`VirtualClock` — a deterministic counter for tests: every read
  advances by a fixed tick, so two runs of the same seed produce
  byte-identical span durations and telemetry exports (tier-1 tests run
  entirely on it, keeping RPR001's no-wall-clock invariant meaningful).
"""

from __future__ import annotations

import time


class Clock:
    """Protocol: anything with a ``now() -> float`` in seconds."""

    def now(self) -> float:  # pragma: no cover - protocol stub
        raise NotImplementedError


class MonotonicClock(Clock):
    """Real monotonic time (the only sanctioned ``perf_counter`` caller)."""

    def now(self) -> float:
        return time.perf_counter()


class VirtualClock(Clock):
    """A deterministic clock: every read advances by ``tick`` seconds.

    Monotonic by construction and independent of when or where the code
    runs, so span durations become a deterministic function of *how many*
    clock reads the instrumented code performed — which is itself a pure
    function of (config, seed, calendar).
    """

    def __init__(self, start: float = 0.0, tick: float = 0.001) -> None:
        if tick <= 0:
            raise ValueError("tick must be positive")
        self._now = float(start)
        self._tick = float(tick)

    def now(self) -> float:
        value = self._now
        self._now = value + self._tick
        return value

    def advance(self, seconds: float) -> None:
        """Jump forward without counting as a read (test convenience)."""
        if seconds < 0:
            raise ValueError("cannot move a monotonic clock backwards")
        self._now += seconds


#: Spec strings accepted by :func:`clock_for` (shipped in pickled tasks so
#: pool workers build the same kind of clock as the parent).
CLOCK_SPECS = ("monotonic", "virtual")


def clock_for(spec: str) -> Clock:
    """Build a clock from its picklable spec string."""
    if spec == "monotonic":
        return MonotonicClock()
    if spec == "virtual":
        return VirtualClock()
    raise ValueError(f"unknown clock spec {spec!r} (choose from {CLOCK_SPECS})")
