"""Telemetry exporters: JSONL event stream, Prometheus textfile, ASCII.

All three render the same :class:`RunTelemetry` — the merged metrics,
span forest, and execution events of one study run — and all three are
deterministic: keys sort lexically, spans export in id order, events in
(day, name, attrs) order, floats through ``repr`` via ``json.dumps``.
Two runs of the same seed on the virtual clock produce *byte-identical*
files (asserted in tier-1 tests), which is what makes telemetry diffable
across code changes — the meta-measurement analogue of the paper's
"results must not depend on when the pipeline ran".
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.telemetry.metrics import HistogramValue, MetricKey, MetricsSnapshot
from repro.telemetry.spans import SpanRecord, span_tree

#: Format version stamped into every export.
EXPORT_VERSION = 1

#: Prefix for the Prometheus textfile exposition.
PROM_PREFIX = "repro_"


@dataclass(frozen=True)
class RunEvent:
    """One execution event (retry, worker crash, checkpoint hit...)."""

    name: str
    day: str = ""  # ISO date, or "" for run-scoped events
    attrs: Tuple[Tuple[str, str], ...] = ()

    def sort_key(self) -> Tuple[str, str, Tuple[Tuple[str, str], ...]]:
        return (self.day, self.name, self.attrs)


@dataclass
class RunTelemetry:
    """Everything one run measured about itself, merged and ordered."""

    config_hash: str = ""
    seed: int = 0
    clock: str = "monotonic"
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    spans: List[SpanRecord] = field(default_factory=list)
    events: List[RunEvent] = field(default_factory=list)


# ----------------------------------------------------------------------
# JSONL


def _labels_dict(key: MetricKey) -> Dict[str, str]:
    return {label: value for label, value in key[1]}


def _dump(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def jsonl_lines(run: RunTelemetry) -> List[str]:
    """One JSON object per line: meta, metrics, spans, events."""
    lines = [
        _dump(
            {
                "type": "meta",
                "version": EXPORT_VERSION,
                "config_hash": run.config_hash,
                "seed": run.seed,
                "clock": run.clock,
            }
        )
    ]
    for key in sorted(run.metrics.counters):
        lines.append(
            _dump(
                {
                    "type": "counter",
                    "name": key[0],
                    "labels": _labels_dict(key),
                    "value": run.metrics.counters[key],
                }
            )
        )
    for key in sorted(run.metrics.gauges):
        lines.append(
            _dump(
                {
                    "type": "gauge",
                    "name": key[0],
                    "labels": _labels_dict(key),
                    "value": run.metrics.gauges[key],
                }
            )
        )
    for key in sorted(run.metrics.histograms):
        hist = run.metrics.histograms[key]
        lines.append(
            _dump(
                {
                    "type": "histogram",
                    "name": key[0],
                    "labels": _labels_dict(key),
                    "bounds": list(hist.bounds),
                    "counts": list(hist.counts),
                    "overflow": hist.overflow,
                    "total": hist.total,
                    "sum": hist.sum,
                }
            )
        )
    for record in sorted(run.spans, key=lambda r: r.span_id):
        lines.append(
            _dump(
                {
                    "type": "span",
                    "id": record.span_id,
                    "parent": record.parent_id,
                    "name": record.name,
                    "start": record.start,
                    "end": record.end,
                    "attrs": dict(record.attrs),
                    "events": [
                        {"name": e.name, "at": e.at, "attrs": dict(e.attrs)}
                        for e in record.events
                    ],
                }
            )
        )
    for event in sorted(run.events, key=RunEvent.sort_key):
        lines.append(
            _dump(
                {
                    "type": "event",
                    "name": event.name,
                    "day": event.day,
                    "attrs": dict(event.attrs),
                }
            )
        )
    return lines


def write_jsonl(run: RunTelemetry, path: Union[str, Path]) -> Path:
    path = Path(path)
    path.write_text("\n".join(jsonl_lines(run)) + "\n", encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# Prometheus textfile


def _prom_labels(key: MetricKey, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    items = tuple(key[1]) + extra
    if not items:
        return ""
    body = ",".join(f'{label}="{value}"' for label, value in items)
    return "{" + body + "}"


def _prom_number(value: Union[int, float]) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(value)


def prometheus_text(run: RunTelemetry) -> str:
    """Prometheus exposition-format textfile (node_exporter compatible)."""
    lines: List[str] = []
    seen_types: Dict[str, str] = {}

    def typ(name: str, kind: str) -> None:
        if seen_types.get(name) != kind:
            seen_types[name] = kind
            lines.append(f"# TYPE {PROM_PREFIX}{name} {kind}")

    for key in sorted(run.metrics.counters):
        typ(key[0], "counter")
        lines.append(
            f"{PROM_PREFIX}{key[0]}{_prom_labels(key)} "
            f"{_prom_number(run.metrics.counters[key])}"
        )
    for key in sorted(run.metrics.gauges):
        typ(key[0], "gauge")
        lines.append(
            f"{PROM_PREFIX}{key[0]}{_prom_labels(key)} "
            f"{_prom_number(run.metrics.gauges[key])}"
        )
    for key in sorted(run.metrics.histograms):
        hist = run.metrics.histograms[key]
        typ(key[0], "histogram")
        cumulative = 0
        for bound, bucket in zip(hist.bounds, hist.counts):
            cumulative += bucket
            lines.append(
                f"{PROM_PREFIX}{key[0]}_bucket"
                f"{_prom_labels(key, (('le', repr(bound)),))} {cumulative}"
            )
        lines.append(
            f"{PROM_PREFIX}{key[0]}_bucket"
            f"{_prom_labels(key, (('le', '+Inf'),))} {hist.total}"
        )
        lines.append(
            f"{PROM_PREFIX}{key[0]}_sum{_prom_labels(key)} "
            f"{_prom_number(hist.sum)}"
        )
        lines.append(
            f"{PROM_PREFIX}{key[0]}_count{_prom_labels(key)} {hist.total}"
        )
    return "\n".join(lines) + "\n"


def write_prometheus(run: RunTelemetry, path: Union[str, Path]) -> Path:
    path = Path(path)
    path.write_text(prometheus_text(run), encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# ASCII summary


def _format_value(value: Union[int, float]) -> str:
    if isinstance(value, int):
        return str(value)
    return f"{value:.6g}"


def _histogram_mean(hist: HistogramValue) -> float:
    return hist.sum / hist.total if hist.total else 0.0


def _span_aggregates(
    spans: List[SpanRecord],
) -> List[Tuple[str, int, float]]:
    """(name, count, total duration) per span name, sorted by total desc."""
    totals: Dict[str, Tuple[int, float]] = {}
    for record in spans:
        count, total = totals.get(record.name, (0, 0.0))
        totals[record.name] = (count + 1, total + record.duration)
    rows = [
        (name, count, total) for name, (count, total) in totals.items()
    ]
    rows.sort(key=lambda row: (-row[2], row[0]))
    return rows


def ascii_summary(
    run: RunTelemetry, max_tree_rows: Optional[int] = 40
) -> List[str]:
    """Human-oriented report: counters, histograms, stage totals, tree."""
    lines: List[str] = [
        f"telemetry for run {run.config_hash or '(unkeyed)'} "
        f"seed={run.seed} clock={run.clock}"
    ]
    if run.metrics.counters or run.metrics.gauges:
        lines.append("")
        lines.append("counters")
        width = max(
            (len(_metric_label(key)) for key in run.metrics.counters),
            default=0,
        )
        for key in sorted(run.metrics.counters):
            lines.append(
                f"  {_metric_label(key):<{width}}  "
                f"{_format_value(run.metrics.counters[key])}"
            )
        for key in sorted(run.metrics.gauges):
            lines.append(
                f"  {_metric_label(key)}  "
                f"{_format_value(run.metrics.gauges[key])} (gauge)"
            )
    if run.metrics.histograms:
        lines.append("")
        lines.append("histograms          count      mean       sum")
        for key in sorted(run.metrics.histograms):
            hist = run.metrics.histograms[key]
            lines.append(
                f"  {_metric_label(key):<16} {hist.total:>7} "
                f"{_histogram_mean(hist):>9.4f} {hist.sum:>9.3f}"
            )
    if run.spans:
        lines.append("")
        lines.append("stage totals        count  total(s)")
        for name, count, total in _span_aggregates(run.spans):
            lines.append(f"  {name:<16} {count:>7}  {total:8.3f}")
        lines.append("")
        lines.append("span tree (truncated)" if max_tree_rows else "span tree")
        rows = span_tree(run.spans)
        shown = rows if max_tree_rows is None else rows[:max_tree_rows]
        for record, depth in shown:
            attrs = " ".join(f"{k}={v}" for k, v in record.attrs)
            lines.append(
                f"  {'  ' * depth}{record.name}"
                + (f"[{attrs}]" if attrs else "")
                + f" {record.duration * 1000:.3f}ms"
            )
        if max_tree_rows is not None and len(rows) > max_tree_rows:
            lines.append(f"  ... {len(rows) - max_tree_rows} more span(s)")
    if run.events:
        lines.append("")
        lines.append(f"events ({len(run.events)})")
        for event in sorted(run.events, key=RunEvent.sort_key)[:20]:
            attrs = " ".join(f"{k}={v}" for k, v in event.attrs)
            prefix = f"{event.day}  " if event.day else ""
            lines.append(f"  {prefix}{event.name}" + (f"  {attrs}" if attrs else ""))
    return lines


def _metric_label(key: MetricKey) -> str:
    if not key[1]:
        return key[0]
    labels = ",".join(f"{label}={value}" for label, value in key[1])
    return f"{key[0]}{{{labels}}}"


def write_summary(run: RunTelemetry, path: Union[str, Path]) -> Path:
    path = Path(path)
    path.write_text("\n".join(ascii_summary(run)) + "\n", encoding="utf-8")
    return path
