"""Infrastructure-evolution analytics (Fig. 11).

Three views per service, all computed from flow records:

* **server addresses per day** (Fig. 11a-c): distinct server IPs contacted
  for the service, split into *dedicated* (seen only for this service that
  day) and *shared* (also seen serving other services);
* **ASN breakdown** (Fig. 11d-f): the same addresses joined against the
  monthly RIB archive;
* **domain shares** (Fig. 11g-i): traffic per second-level domain.

Every job accepts either a :class:`FlowRecord` iterable (row path) or a
columnar :class:`~repro.tstat.flowbatch.FlowBatch` (vectorized path); the
two produce identical results.  Batch callers that run several jobs over
the same day pass the shared :class:`BatchServiceView` via ``codes=`` so
classification happens exactly once per batch.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

import numpy as np

from repro.analytics.aggregate import classify_flow
from repro.routing.rib import RibArchive
from repro.services.rules import RuleSet
from repro.tstat.flow import FlowRecord, second_level_domain
from repro.tstat.flowbatch import BatchServiceView, FlowBatch

#: Every stage-1 flow analytic accepts rows or a columnar batch.
Flows = Union[FlowBatch, Iterable[FlowRecord]]


def _batch_view(
    batch: FlowBatch, rules: RuleSet, codes: Optional[BatchServiceView]
) -> BatchServiceView:
    """The caller-shared classification, or one computed (and memoized) now."""
    return codes if codes is not None else batch.service_view(rules)


def _ip_service_pairs(
    batch: FlowBatch, view: BatchServiceView
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Distinct (server IP, service code) pairs plus the per-pair shared flag.

    Returns ``(ips, service_codes, shared)`` aligned by pair; ``shared[i]``
    is True when ``ips[i]`` also serves some other service that day.
    """
    if len(batch) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.zeros(0, dtype=bool)
    pairs = np.unique(
        np.stack((batch.server_ip, view.flow_codes)), axis=1
    )
    ips, service_codes = pairs[0], pairs[1]
    # Pairs are distinct, so each IP's multiplicity is its service count.
    _, inverse, counts = np.unique(ips, return_inverse=True, return_counts=True)
    return ips, service_codes, counts[inverse] > 1


def ip_service_pairs(
    batch: FlowBatch,
    rules: RuleSet,
    codes: Optional[BatchServiceView] = None,
) -> Tuple[np.ndarray, np.ndarray, Tuple[str, ...]]:
    """Distinct (ip, service-code) pairs plus the code→name table.

    The shard-portable form of the census raw material: pairs from
    disjoint flow subsets union into the full day's pairs, and the
    shared flag is recomputed over the union (an address dedicated
    within one shard may be shared across shards).
    """
    view = _batch_view(batch, rules, codes)
    ips, service_codes, _ = _ip_service_pairs(batch, view)
    return ips, service_codes, view.services


@dataclass(frozen=True)
class DailyServerStats:
    """Fig. 11 top row: one service's server-address census for one day."""

    day: datetime.date
    service: str
    dedicated_ips: int
    shared_ips: int

    @property
    def total_ips(self) -> int:
        return self.dedicated_ips + self.shared_ips


def daily_server_census(
    flows: Flows,
    rules: RuleSet,
    services: List[str],
    day: datetime.date,
    codes: Optional[BatchServiceView] = None,
) -> List[DailyServerStats]:
    """Distinct per-service server IPs for one day, shared vs dedicated.

    An address is *shared* if, on the same day, it also served traffic
    classified to any other service (including the unnamed rest).
    """
    if isinstance(flows, FlowBatch):
        view = _batch_view(flows, rules, codes)
        ips, service_codes, shared = _ip_service_pairs(flows, view)
        stats = []
        for service in services:
            member = service_codes == view.code_of(service)
            shared_ips = int(np.count_nonzero(shared & member))
            stats.append(
                DailyServerStats(
                    day=day,
                    service=service,
                    dedicated_ips=int(np.count_nonzero(member)) - shared_ips,
                    shared_ips=shared_ips,
                )
            )
        return stats
    ips_by_service: Dict[str, Set[int]] = {service: set() for service in services}
    services_by_ip: Dict[int, Set[str]] = {}
    for record in flows:
        service = classify_flow(record, rules)
        services_by_ip.setdefault(record.server_ip, set()).add(service)
        if service in ips_by_service:
            ips_by_service[service].add(record.server_ip)
    stats = []
    for service in services:
        dedicated = 0
        shared = 0
        for address in ips_by_service[service]:
            if len(services_by_ip[address]) > 1:
                shared += 1
            else:
                dedicated += 1
        stats.append(
            DailyServerStats(
                day=day, service=service, dedicated_ips=dedicated, shared_ips=shared
            )
        )
    return stats


@dataclass(frozen=True)
class AsnBreakdown:
    """Fig. 11 middle row: per-day share of a service's IPs per AS name."""

    day: datetime.date
    service: str
    counts: Dict[str, int]

    def share(self, asn_name: str) -> float:
        total = sum(self.counts.values())
        if total == 0:
            return 0.0
        return self.counts.get(asn_name, 0) / total

    def dominant(self) -> Optional[str]:
        if not self.counts:
            return None
        return max(self.counts, key=lambda name: self.counts[name])


def asn_breakdown(
    flows: Flows,
    rules: RuleSet,
    rib: RibArchive,
    service: str,
    day: datetime.date,
    top_asns: Optional[List[str]] = None,
    codes: Optional[BatchServiceView] = None,
) -> AsnBreakdown:
    """Join a service's daily server IPs against the monthly RIB."""
    ordered: List[int]
    if isinstance(flows, FlowBatch):
        view = _batch_view(flows, rules, codes)
        ordered = np.unique(flows.server_ip[view.flow_mask(service)]).tolist()
    else:
        addresses: Set[int] = set()
        for record in flows:
            if classify_flow(record, rules) == service:
                addresses.add(record.server_ip)
        ordered = sorted(addresses)
    counts: Dict[str, int] = {}
    for address in ordered:
        name = rib.origin_of(address, day).name
        if top_asns is not None and name not in top_asns:
            name = "OTHER"
        counts[name] = counts.get(name, 0) + 1
    return AsnBreakdown(day=day, service=service, counts=counts)


def domain_shares(
    flows: Flows,
    rules: RuleSet,
    service: str,
    codes: Optional[BatchServiceView] = None,
) -> Dict[str, float]:
    """Fig. 11 bottom row: traffic share per second-level domain."""
    if isinstance(flows, FlowBatch):
        return _domain_shares_batch(flows, rules, service, codes)
    volumes: Dict[str, int] = {}
    total = 0
    for record in flows:
        if classify_flow(record, rules) != service:
            continue
        if not record.server_name:
            continue
        sld = second_level_domain(record.server_name)
        volumes[sld] = volumes.get(sld, 0) + record.total_bytes
        total += record.total_bytes
    if total == 0:
        return {}
    return {domain: volume / total for domain, volume in volumes.items()}


def domain_byte_totals(
    batch: FlowBatch,
    rules: RuleSet,
    service: str,
    codes: Optional[BatchServiceView] = None,
) -> Dict[str, int]:
    """Integer byte totals per second-level domain for one service.

    The additive core of :func:`domain_shares`: totals sum exactly across
    disjoint flow subsets, so shard partials carry these and the fan-in
    divides once over the merged day (shares themselves do not compose).
    Zero-byte flows still claim their SLD, matching the row path's dict.
    """
    view = _batch_view(batch, rules, codes)
    mask = view.flow_mask(service)
    if not mask.any():
        return {}
    slds, sld_of_name = batch.sld_table()
    sld_ids = sld_of_name[batch.name_id[mask]]
    named = sld_ids >= 0
    sld_ids = sld_ids[named]
    if sld_ids.size == 0:
        return {}
    volumes = batch.total_bytes[mask][named]
    totals = np.zeros(len(slds), dtype=np.int64)
    np.add.at(totals, sld_ids, volumes)
    return {
        slds[sld_id]: int(totals[sld_id])
        for sld_id in np.unique(sld_ids).tolist()
    }


def shares_from_totals(totals: Dict[str, int]) -> Dict[str, float]:
    """Divide SLD byte totals into shares (int/int division, exact)."""
    total = sum(totals.values())
    if total == 0:
        return {}
    return {domain: volume / total for domain, volume in totals.items()}


def _domain_shares_batch(
    batch: FlowBatch,
    rules: RuleSet,
    service: str,
    codes: Optional[BatchServiceView],
) -> Dict[str, float]:
    """Vectorized domain shares: group int64 byte totals by interned SLD.

    Byte sums stay integral (``np.add.at`` on an int64 accumulator), so the
    final share divisions are the same exact int/int divisions the row path
    performs — identical floats, any input order.
    """
    return shares_from_totals(domain_byte_totals(batch, rules, service, codes))


@dataclass(frozen=True)
class InfrastructureTimeline:
    """The assembled Fig. 11 panels for one service."""

    service: str
    census: List[DailyServerStats]
    asn: List[AsnBreakdown]
    domains: List[Tuple[datetime.date, Dict[str, float]]]

    def ip_count_series(self) -> List[Tuple[datetime.date, int]]:
        return [(entry.day, entry.total_ips) for entry in self.census]

    def shared_share_series(self) -> List[Tuple[datetime.date, float]]:
        series = []
        for entry in self.census:
            if entry.total_ips:
                series.append((entry.day, entry.shared_ips / entry.total_ips))
        return series

    def cumulative_unique_ips(
        self, daily_ip_sets: List[Tuple[datetime.date, Set[int]]]
    ) -> List[Tuple[datetime.date, int]]:
        """Cumulative distinct addresses over time ("new IPs keep appearing")."""
        seen: Set[int] = set()
        series = []
        for day, addresses in sorted(daily_ip_sets, key=lambda pair: pair[0]):
            seen.update(addresses)
            series.append((day, len(seen)))
        return series


def service_ip_set(
    flows: Flows,
    rules: RuleSet,
    service: str,
    codes: Optional[BatchServiceView] = None,
) -> Set[int]:
    """All server addresses of a service in a flow set."""
    if isinstance(flows, FlowBatch):
        view = _batch_view(flows, rules, codes)
        return set(np.unique(flows.server_ip[view.flow_mask(service)]).tolist())
    return {
        record.server_ip
        for record in flows
        if classify_flow(record, rules) == service
    }


def daily_ip_roles(
    flows: Flows,
    rules: RuleSet,
    services: List[str],
    day: datetime.date,
    codes: Optional[BatchServiceView] = None,
) -> Dict[str, Dict[int, bool]]:
    """Per service: its addresses of the day, flagged shared (True) or not.

    This is the raw material of Fig. 11's top panels: each (ip, day) cell
    is a red dot (dedicated) or a blue dot (also served another service).
    """
    if isinstance(flows, FlowBatch):
        view = _batch_view(flows, rules, codes)
        ips, service_codes, shared = _ip_service_pairs(flows, view)
        batch_roles: Dict[str, Dict[int, bool]] = {
            service: {} for service in services
        }
        for service in services:
            member = service_codes == view.code_of(service)
            batch_roles[service] = dict(
                zip(
                    ips[member].tolist(),
                    shared[member].tolist(),
                )
            )
        return batch_roles
    services_by_ip: Dict[int, Set[str]] = {}
    for record in flows:
        service = classify_flow(record, rules)
        services_by_ip.setdefault(record.server_ip, set()).add(service)
    roles: Dict[str, Dict[int, bool]] = {service: {} for service in services}
    for address, owners in services_by_ip.items():
        shared = len(owners) > 1
        for service in owners:
            if service in roles:
                roles[service][address] = shared
    return roles


@dataclass(frozen=True)
class IpRaster:
    """Fig. 11 top panel: servers (rows, by first appearance) × days.

    ``cells[row][column]`` is 0 (absent), 1 (dedicated) or 2 (shared).
    """

    service: str
    days: Tuple[datetime.date, ...]
    addresses: Tuple[int, ...]  # sorted by first appearance
    cells: Tuple[Tuple[int, ...], ...]

    ABSENT = 0
    DEDICATED = 1
    SHARED = 2

    def appearance_counts(self) -> List[Tuple[datetime.date, int]]:
        """New addresses first seen on each day (cumulative growth driver)."""
        counts: Dict[datetime.date, int] = {day: 0 for day in self.days}
        for row in range(len(self.addresses)):
            for column, day in enumerate(self.days):
                if self.cells[row][column] != self.ABSENT:
                    counts[day] += 1
                    break
        return [(day, counts[day]) for day in self.days]


def build_ip_raster(
    service: str,
    daily_roles: List[Tuple[datetime.date, Dict[int, bool]]],
) -> IpRaster:
    """Assemble the raster from per-day (address → shared?) maps."""
    ordered = sorted(daily_roles, key=lambda pair: pair[0])
    days = tuple(day for day, _ in ordered)
    first_seen: Dict[int, int] = {}
    for column, (_, roles) in enumerate(ordered):
        for address in roles:
            first_seen.setdefault(address, column)
    addresses = tuple(
        sorted(first_seen, key=lambda address: (first_seen[address], address))
    )
    index_of = {address: row for row, address in enumerate(addresses)}
    cells = [[IpRaster.ABSENT] * len(days) for _ in addresses]
    for column, (_, roles) in enumerate(ordered):
        for address, shared in roles.items():
            cells[index_of[address]][column] = (
                IpRaster.SHARED if shared else IpRaster.DEDICATED
            )
    return IpRaster(
        service=service,
        days=days,
        addresses=addresses,
        cells=tuple(tuple(row) for row in cells),
    )
