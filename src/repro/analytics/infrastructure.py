"""Infrastructure-evolution analytics (Fig. 11).

Three views per service, all computed from flow records:

* **server addresses per day** (Fig. 11a-c): distinct server IPs contacted
  for the service, split into *dedicated* (seen only for this service that
  day) and *shared* (also seen serving other services);
* **ASN breakdown** (Fig. 11d-f): the same addresses joined against the
  monthly RIB archive;
* **domain shares** (Fig. 11g-i): traffic per second-level domain.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analytics.aggregate import classify_flow
from repro.routing.rib import RibArchive
from repro.services.rules import RuleSet
from repro.tstat.flow import FlowRecord, second_level_domain


@dataclass(frozen=True)
class DailyServerStats:
    """Fig. 11 top row: one service's server-address census for one day."""

    day: datetime.date
    service: str
    dedicated_ips: int
    shared_ips: int

    @property
    def total_ips(self) -> int:
        return self.dedicated_ips + self.shared_ips


def daily_server_census(
    flows: Iterable[FlowRecord],
    rules: RuleSet,
    services: List[str],
    day: datetime.date,
) -> List[DailyServerStats]:
    """Distinct per-service server IPs for one day, shared vs dedicated.

    An address is *shared* if, on the same day, it also served traffic
    classified to any other service (including the unnamed rest).
    """
    ips_by_service: Dict[str, Set[int]] = {service: set() for service in services}
    services_by_ip: Dict[int, Set[str]] = {}
    for record in flows:
        service = classify_flow(record, rules)
        services_by_ip.setdefault(record.server_ip, set()).add(service)
        if service in ips_by_service:
            ips_by_service[service].add(record.server_ip)
    stats = []
    for service in services:
        dedicated = 0
        shared = 0
        for address in ips_by_service[service]:
            if len(services_by_ip[address]) > 1:
                shared += 1
            else:
                dedicated += 1
        stats.append(
            DailyServerStats(
                day=day, service=service, dedicated_ips=dedicated, shared_ips=shared
            )
        )
    return stats


@dataclass(frozen=True)
class AsnBreakdown:
    """Fig. 11 middle row: per-day share of a service's IPs per AS name."""

    day: datetime.date
    service: str
    counts: Dict[str, int]

    def share(self, asn_name: str) -> float:
        total = sum(self.counts.values())
        if total == 0:
            return 0.0
        return self.counts.get(asn_name, 0) / total

    def dominant(self) -> Optional[str]:
        if not self.counts:
            return None
        return max(self.counts, key=lambda name: self.counts[name])


def asn_breakdown(
    flows: Iterable[FlowRecord],
    rules: RuleSet,
    rib: RibArchive,
    service: str,
    day: datetime.date,
    top_asns: Optional[List[str]] = None,
) -> AsnBreakdown:
    """Join a service's daily server IPs against the monthly RIB."""
    addresses: Set[int] = set()
    for record in flows:
        if classify_flow(record, rules) == service:
            addresses.add(record.server_ip)
    counts: Dict[str, int] = {}
    for address in sorted(addresses):
        name = rib.origin_of(address, day).name
        if top_asns is not None and name not in top_asns:
            name = "OTHER"
        counts[name] = counts.get(name, 0) + 1
    return AsnBreakdown(day=day, service=service, counts=counts)


def domain_shares(
    flows: Iterable[FlowRecord],
    rules: RuleSet,
    service: str,
) -> Dict[str, float]:
    """Fig. 11 bottom row: traffic share per second-level domain."""
    volumes: Dict[str, int] = {}
    total = 0
    for record in flows:
        if classify_flow(record, rules) != service:
            continue
        if not record.server_name:
            continue
        sld = second_level_domain(record.server_name)
        volumes[sld] = volumes.get(sld, 0) + record.total_bytes
        total += record.total_bytes
    if total == 0:
        return {}
    return {domain: volume / total for domain, volume in volumes.items()}


@dataclass(frozen=True)
class InfrastructureTimeline:
    """The assembled Fig. 11 panels for one service."""

    service: str
    census: List[DailyServerStats]
    asn: List[AsnBreakdown]
    domains: List[Tuple[datetime.date, Dict[str, float]]]

    def ip_count_series(self) -> List[Tuple[datetime.date, int]]:
        return [(entry.day, entry.total_ips) for entry in self.census]

    def shared_share_series(self) -> List[Tuple[datetime.date, float]]:
        series = []
        for entry in self.census:
            if entry.total_ips:
                series.append((entry.day, entry.shared_ips / entry.total_ips))
        return series

    def cumulative_unique_ips(
        self, daily_ip_sets: List[Tuple[datetime.date, Set[int]]]
    ) -> List[Tuple[datetime.date, int]]:
        """Cumulative distinct addresses over time ("new IPs keep appearing")."""
        seen: Set[int] = set()
        series = []
        for day, addresses in sorted(daily_ip_sets, key=lambda pair: pair[0]):
            seen.update(addresses)
            series.append((day, len(seen)))
        return series


def service_ip_set(
    flows: Iterable[FlowRecord], rules: RuleSet, service: str
) -> Set[int]:
    """All server addresses of a service in a flow set."""
    return {
        record.server_ip
        for record in flows
        if classify_flow(record, rules) == service
    }


def daily_ip_roles(
    flows: Iterable[FlowRecord],
    rules: RuleSet,
    services: List[str],
    day: datetime.date,
) -> Dict[str, Dict[int, bool]]:
    """Per service: its addresses of the day, flagged shared (True) or not.

    This is the raw material of Fig. 11's top panels: each (ip, day) cell
    is a red dot (dedicated) or a blue dot (also served another service).
    """
    services_by_ip: Dict[int, Set[str]] = {}
    for record in flows:
        service = classify_flow(record, rules)
        services_by_ip.setdefault(record.server_ip, set()).add(service)
    roles: Dict[str, Dict[int, bool]] = {service: {} for service in services}
    for address, owners in services_by_ip.items():
        shared = len(owners) > 1
        for service in owners:
            if service in roles:
                roles[service][address] = shared
    return roles


@dataclass(frozen=True)
class IpRaster:
    """Fig. 11 top panel: servers (rows, by first appearance) × days.

    ``cells[row][column]`` is 0 (absent), 1 (dedicated) or 2 (shared).
    """

    service: str
    days: Tuple[datetime.date, ...]
    addresses: Tuple[int, ...]  # sorted by first appearance
    cells: Tuple[Tuple[int, ...], ...]

    ABSENT = 0
    DEDICATED = 1
    SHARED = 2

    def appearance_counts(self) -> List[Tuple[datetime.date, int]]:
        """New addresses first seen on each day (cumulative growth driver)."""
        counts: Dict[datetime.date, int] = {day: 0 for day in self.days}
        for row in range(len(self.addresses)):
            for column, day in enumerate(self.days):
                if self.cells[row][column] != self.ABSENT:
                    counts[day] += 1
                    break
        return [(day, counts[day]) for day in self.days]


def build_ip_raster(
    service: str,
    daily_roles: List[Tuple[datetime.date, Dict[int, bool]]],
) -> IpRaster:
    """Assemble the raster from per-day (address → shared?) maps."""
    ordered = sorted(daily_roles, key=lambda pair: pair[0])
    days = tuple(day for day, _ in ordered)
    first_seen: Dict[int, int] = {}
    for column, (_, roles) in enumerate(ordered):
        for address in roles:
            first_seen.setdefault(address, column)
    addresses = tuple(
        sorted(first_seen, key=lambda address: (first_seen[address], address))
    )
    index_of = {address: row for row, address in enumerate(addresses)}
    cells = [[IpRaster.ABSENT] * len(days) for _ in addresses]
    for column, (_, roles) in enumerate(ordered):
        for address, shared in roles.items():
            cells[index_of[address]][column] = (
                IpRaster.SHARED if shared else IpRaster.DEDICATED
            )
    return IpRaster(
        service=service,
        days=days,
        addresses=addresses,
        cells=tuple(tuple(row) for row in cells),
    )
