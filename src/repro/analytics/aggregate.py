"""Stage-1 analytics: per-day aggregation of raw flow records.

"Our analytics methodology follows a two-stage approach: firstly data is
aggregated on a per day basis, secondly, advanced analytics and
visualizations are computed.  In the aggregation stage, queries compute
per-day and per-subscription aggregates about traffic consumption,
protocol usage, and contacted services." (Section 2.2)

The jobs here run over :class:`~repro.dataflow.engine.Dataset`\\ s of flow
records and produce the same row types the aggregate-tier generator emits,
so the two tiers are interchangeable downstream (and tested against each
other).
"""

from __future__ import annotations

import datetime
from typing import Dict, Optional, Tuple

from repro.dataflow.engine import Dataset
from repro.services.rules import RuleSet
from repro.synthesis.flowgen import DailyUsage, ProtocolUsage
from repro.synthesis.population import Technology
from repro.tstat.flow import FlowRecord, WebProtocol


def classify_flow(record: FlowRecord, rules: RuleSet, p2p_as_service: bool = True) -> str:
    """Service of one flow: domain rules first, then the P2P port/DPI label."""
    service = rules.classify(record.server_name)
    if service is not None:
        return service
    if p2p_as_service and record.protocol is WebProtocol.P2P:
        return "Peer-To-Peer"
    return "Other"


def aggregate_usage(
    flows: Dataset[FlowRecord],
    rules: RuleSet,
    day: datetime.date,
    technologies: Optional[Dict[int, Technology]] = None,
    pops: Optional[Dict[int, str]] = None,
) -> Dataset[DailyUsage]:
    """Stage-1 job: flows → per (subscriber, service) daily aggregates.

    ``technologies``/``pops`` map anonymized subscriber ids to their access
    line metadata (the deployment knows which DSLAM/OLT each id sits on);
    unknown ids default to ADSL at the flow's vantage.
    """
    technologies = technologies or {}
    pops = pops or {}

    def key_of(record: FlowRecord) -> Tuple[int, str, str]:
        return (
            record.client_id,
            classify_flow(record, rules),
            record.vantage,
        )

    def zero() -> Tuple[int, int, int]:
        return (0, 0, 0)

    def fold(
        acc: Tuple[int, int, int], record: FlowRecord
    ) -> Tuple[int, int, int]:
        return (
            acc[0] + record.bytes_down,
            acc[1] + record.bytes_up,
            acc[2] + 1,
        )

    def to_usage(
        item: Tuple[Tuple[int, str, str], Tuple[int, int, int]]
    ) -> DailyUsage:
        (client_id, service, vantage), (down, up, flow_count) = item
        return DailyUsage(
            day=day,
            subscriber_id=client_id,
            technology=technologies.get(client_id, Technology.ADSL),
            pop=pops.get(client_id, vantage),
            service=service,
            bytes_down=down,
            bytes_up=up,
            flows=flow_count,
        )

    return (
        flows.key_by(key_of)
        .aggregate_by_key(zero, fold)
        .map(to_usage)
    )


def aggregate_protocols(
    flows: Dataset[FlowRecord], rules: RuleSet, day: datetime.date
) -> Dataset[ProtocolUsage]:
    """Stage-1 job: flows → per (service, reported protocol) byte totals."""

    def key_of(record: FlowRecord) -> Tuple[str, WebProtocol]:
        return (classify_flow(record, rules), record.protocol)

    return (
        flows.map(lambda record: (key_of(record), record.total_bytes))
        .reduce_by_key(lambda left, right: left + right)
        .map(
            lambda item: ProtocolUsage(
                day=day,
                service=item[0][0],
                protocol=item[0][1],
                total_bytes=item[1],
            )
        )
    )


def subscriber_day_totals(
    usage: Dataset[DailyUsage],
) -> Dataset[Tuple[Tuple[datetime.date, int], Tuple[int, int, int, Technology]]]:
    """Roll usage rows up to (day, subscriber) → (down, up, flows, tech)."""

    def zero() -> Tuple[int, int, int, Optional[Technology]]:
        return (0, 0, 0, None)

    def fold(acc, row: DailyUsage):
        return (
            acc[0] + row.bytes_down,
            acc[1] + row.bytes_up,
            acc[2] + row.flows,
            row.technology,
        )

    return usage.key_by(lambda row: (row.day, row.subscriber_id)).aggregate_by_key(
        zero, fold
    )
