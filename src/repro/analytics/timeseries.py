"""Monthly time-series analytics (Fig. 3, 6, 7, 9 backbones).

Rolls subscriber-day data up to monthly means, keeping missing months
(probe outages) as genuine gaps — the paper's curves "contain
interruptions caused by outages in monitoring probes, without affecting
trends".
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.analytics.activity import SubscriberDay
from repro.synthesis.flowgen import DailyUsage
from repro.synthesis.population import Technology

Month = Tuple[int, int]


def month_of(day: datetime.date) -> Month:
    return (day.year, day.month)


@dataclass(frozen=True)
class MonthlySeries:
    """A per-month series with explicit gaps (None) for missing months."""

    months: Tuple[Month, ...]
    values: Tuple[Optional[float], ...]

    def value_at(self, year: int, month: int) -> Optional[float]:
        try:
            index = self.months.index((year, month))
        except ValueError:
            return None
        return self.values[index]

    def defined(self) -> List[Tuple[Month, float]]:
        return [
            (month, value)
            for month, value in zip(self.months, self.values)
            if value is not None
        ]

    def gap_months(self) -> List[Month]:
        return [
            month
            for month, value in zip(self.months, self.values)
            if value is None
        ]


def monthly_mean(
    samples: Iterable[Tuple[datetime.date, float]],
    months: List[Month],
) -> MonthlySeries:
    """Mean of daily samples per month; months with no samples become None."""
    sums: Dict[Month, float] = {}
    counts: Dict[Month, int] = {}
    for day, value in samples:
        month = month_of(day)
        sums[month] = sums.get(month, 0.0) + value
        counts[month] = counts.get(month, 0) + 1
    values: List[Optional[float]] = []
    for month in months:
        if counts.get(month):
            values.append(sums[month] / counts[month])
        else:
            values.append(None)
    return MonthlySeries(months=tuple(months), values=tuple(values))


def mean_daily_traffic_per_subscriber(
    days: Iterable[SubscriberDay],
    months: List[Month],
    technology: Technology,
    direction: str = "down",
    active_only: bool = True,
) -> MonthlySeries:
    """Fig. 3: average per-subscription daily traffic, by month and tech.

    Per day, the mean over (active) subscribers of that day's bytes; per
    month, the mean over days.
    """
    if direction not in ("down", "up"):
        raise ValueError(f"bad direction {direction!r}")
    by_day: Dict[datetime.date, List[int]] = {}
    for entry in days:
        if entry.technology is not technology:
            continue
        if active_only and not entry.active:
            continue
        value = entry.bytes_down if direction == "down" else entry.bytes_up
        by_day.setdefault(entry.day, []).append(value)
    daily_means = [
        (day, sum(values) / len(values)) for day, values in by_day.items() if values
    ]
    return monthly_mean(daily_means, months)


def per_user_service_volume(
    usage: Iterable[DailyUsage],
    visited: Callable[[DailyUsage], bool],
    months: List[Month],
    technology: Technology,
    direction: str = "total",
) -> MonthlySeries:
    """Figs. 6/7/9 bottom: mean daily bytes per subscriber *using* a service.

    ``usage`` must already be filtered to the service of interest;
    ``visited`` applies the per-service visit threshold (Section 4.1).
    """
    by_day: Dict[datetime.date, List[int]] = {}
    for row in usage:
        if row.technology is not technology or not visited(row):
            continue
        if direction == "down":
            value = row.bytes_down
        elif direction == "up":
            value = row.bytes_up
        else:
            value = row.bytes_down + row.bytes_up
        by_day.setdefault(row.day, []).append(value)
    daily_means = [
        (day, sum(values) / len(values)) for day, values in by_day.items() if values
    ]
    return monthly_mean(daily_means, months)


def daily_series(
    samples: Iterable[Tuple[datetime.date, float]]
) -> List[Tuple[datetime.date, float]]:
    """Sort (day, value) samples by day (Fig. 9 uses daily resolution)."""
    return sorted(samples, key=lambda pair: pair[0])


def growth_factor(series: MonthlySeries) -> Optional[float]:
    """Last defined value over first defined value (trend summary)."""
    defined = series.defined()
    if len(defined) < 2 or defined[0][1] == 0:
        return None
    return defined[-1][1] / defined[0][1]
