"""Hour-of-day analytics (Fig. 4).

"We consider the downloaded volume in each 10 minute-long time interval.
We then average all values seen for the same time bin in all days of a
month.  At last we compute the ratio between April 2017 and April 2014...
curves are smoothed using a Bezier interpolation."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.synthesis.flowgen import HourlyVolume
from repro.synthesis.population import Technology
from repro.synthesis.studycalendar import BINS_PER_DAY


@dataclass(frozen=True)
class HourlyProfile:
    """Mean bytes per 10-minute bin over the days of one month."""

    technology: Technology
    month: Tuple[int, int]
    bins: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.bins) != BINS_PER_DAY:
            raise ValueError(f"expected {BINS_PER_DAY} bins, got {len(self.bins)}")


def monthly_profile(
    volumes: Iterable[HourlyVolume],
    technology: Technology,
    year: int,
    month: int,
) -> HourlyProfile:
    """Average the per-bin volumes over all days of (year, month)."""
    sums = [0.0] * BINS_PER_DAY
    day_set = set()
    for volume in volumes:
        if volume.technology is not technology:
            continue
        if (volume.day.year, volume.day.month) != (year, month):
            continue
        sums[volume.bin_index] += volume.bytes_down
        day_set.add(volume.day)
    if not day_set:
        raise ValueError(f"no hourly data for {technology} in {year}-{month:02d}")
    count = len(day_set)
    return HourlyProfile(
        technology=technology,
        month=(year, month),
        bins=tuple(total / count for total in sums),
    )


def profile_ratio(later: HourlyProfile, earlier: HourlyProfile) -> List[float]:
    """Per-bin ratio later/earlier (the Fig. 4 series before smoothing)."""
    if later.technology is not earlier.technology:
        raise ValueError("profiles of different technologies")
    ratios = []
    for late, early in zip(later.bins, earlier.bins):
        ratios.append(late / early if early > 0 else 0.0)
    return ratios


def bezier_smooth(values: List[float], window: int = 9) -> List[float]:
    """Smooth a series the way gnuplot's Bézier option does, approximately.

    A full Bernstein-polynomial fit over 144 points is numerically
    degenerate; like gnuplot we approximate with an iterated
    binomial-weighted moving average, which converges to the Bézier curve
    shape for interior points.
    """
    if window < 1 or window % 2 == 0:
        raise ValueError("window must be odd and positive")
    half = window // 2
    weights = _binomial_weights(window)
    smoothed = []
    count = len(values)
    for index in range(count):
        total = 0.0
        weight_sum = 0.0
        for offset in range(-half, half + 1):
            neighbor = index + offset
            if 0 <= neighbor < count:
                weight = weights[offset + half]
                total += values[neighbor] * weight
                weight_sum += weight
        smoothed.append(total / weight_sum)
    return smoothed


def _binomial_weights(window: int) -> List[float]:
    weights = [1.0]
    for _ in range(window - 1):
        weights = [1.0] + [
            weights[i] + weights[i + 1] for i in range(len(weights) - 1)
        ] + [1.0]
    total = sum(weights)
    return [weight / total for weight in weights]


def bins_to_hours(values: List[float]) -> Dict[int, float]:
    """Average 10-minute bins into hourly values (for compact reporting)."""
    bins_per_hour = BINS_PER_DAY // 24
    hours: Dict[int, float] = {}
    for hour in range(24):
        chunk = values[hour * bins_per_hour : (hour + 1) * bins_per_hour]
        hours[hour] = sum(chunk) / len(chunk)
    return hours
