"""Per-service protocol drill-down (the breakdown the paper omitted).

Section 7: "our data would allow us to drill down on per-protocol
breakdowns... these details are left out for the sake of brevity."  This
module implements that drill-down as an extension: for any service, the
monthly mix of reported protocols, plus migration summaries (when did a
service's dominant protocol change, and to what).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analytics.timeseries import Month, month_of
from repro.synthesis.flowgen import ProtocolUsage
from repro.tstat.flow import WebProtocol


@dataclass(frozen=True)
class ServiceProtocolTimeline:
    """Monthly protocol mix of one service."""

    service: str
    months: Tuple[Month, ...]
    mixes: Tuple[Dict[WebProtocol, float], ...]  # aligned with months

    def mix_at(self, year: int, month: int) -> Optional[Dict[WebProtocol, float]]:
        try:
            index = self.months.index((year, month))
        except ValueError:
            return None
        mix = self.mixes[index]
        return mix if mix else None

    def dominant_at(self, year: int, month: int) -> Optional[WebProtocol]:
        mix = self.mix_at(year, month)
        if not mix:
            return None
        return max(mix, key=lambda protocol: mix[protocol])

    def migrations(self) -> List[Tuple[Month, WebProtocol, WebProtocol]]:
        """Months where the dominant protocol changed: (month, old, new)."""
        changes = []
        previous: Optional[WebProtocol] = None
        for month, mix in zip(self.months, self.mixes):
            if not mix:
                continue
            dominant = max(mix, key=lambda protocol: mix[protocol])
            if previous is not None and dominant is not previous:
                changes.append((month, previous, dominant))
            previous = dominant
        return changes


def service_protocol_timeline(
    rows: Iterable[ProtocolUsage], service: str, months: List[Month]
) -> ServiceProtocolTimeline:
    """Build the monthly protocol mix of ``service`` from stage-1 rows."""
    totals: Dict[Month, Dict[WebProtocol, int]] = {}
    for row in rows:
        if row.service != service:
            continue
        bucket = totals.setdefault(month_of(row.day), {})
        bucket[row.protocol] = bucket.get(row.protocol, 0) + row.total_bytes
    mixes: List[Dict[WebProtocol, float]] = []
    for month in months:
        bucket = totals.get(month, {})
        month_total = sum(bucket.values())
        if month_total == 0:
            mixes.append({})
        else:
            mixes.append(
                {
                    protocol: volume / month_total
                    for protocol, volume in bucket.items()
                }
            )
    return ServiceProtocolTimeline(
        service=service, months=tuple(months), mixes=tuple(mixes)
    )


def all_timelines(
    rows: Iterable[ProtocolUsage], months: List[Month]
) -> Dict[str, ServiceProtocolTimeline]:
    """Timelines for every service present in the rows."""
    rows = list(rows)
    services = sorted({row.service for row in rows})
    return {
        service: service_protocol_timeline(rows, service, months)
        for service in services
    }
