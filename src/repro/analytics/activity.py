"""Active-subscriber determination (Section 3).

"Subscribers are considered active if they have generated at least
10 flows, downloaded more than 15 kB and uploaded more than 5 kB."  On
average ~80 % of subscribers observed in the trace are active on a day.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.services.thresholds import ActiveSubscriberCriterion
from repro.synthesis.flowgen import DailyUsage
from repro.synthesis.population import Technology


@dataclass(frozen=True)
class SubscriberDay:
    """One subscriber's totals on one day."""

    day: datetime.date
    subscriber_id: int
    technology: Technology
    bytes_down: int
    bytes_up: int
    flows: int
    active: bool


def subscriber_days(
    usage: Iterable[DailyUsage],
    criterion: ActiveSubscriberCriterion = ActiveSubscriberCriterion(),
) -> List[SubscriberDay]:
    """Roll per-service rows up to per-subscriber days with the activity flag."""
    totals: Dict[Tuple[datetime.date, int], List] = {}
    for row in usage:
        key = (row.day, row.subscriber_id)
        entry = totals.get(key)
        if entry is None:
            totals[key] = [row.technology, row.bytes_down, row.bytes_up, row.flows]
        else:
            entry[1] += row.bytes_down
            entry[2] += row.bytes_up
            entry[3] += row.flows
    result = []
    for (day, subscriber_id), (technology, down, up, flows) in totals.items():
        result.append(
            SubscriberDay(
                day=day,
                subscriber_id=subscriber_id,
                technology=technology,
                bytes_down=down,
                bytes_up=up,
                flows=flows,
                active=criterion.is_active(flows, down, up),
            )
        )
    return result


def active_subscribers_by_day(
    days: Iterable[SubscriberDay],
) -> Dict[datetime.date, Set[int]]:
    """day → the set of active subscriber ids."""
    active: Dict[datetime.date, Set[int]] = {}
    for entry in days:
        if entry.active:
            active.setdefault(entry.day, set()).add(entry.subscriber_id)
    return active


def activity_rate(days: Iterable[SubscriberDay]) -> float:
    """Fraction of observed subscriber-days that are active (paper: ~0.8)."""
    total = 0
    active = 0
    for entry in days:
        total += 1
        active += int(entry.active)
    if total == 0:
        return 0.0
    return active / total
