"""Subscriber-dynamics analytics: churn and heavy-day behaviour.

Two observations of the paper that sit outside its numbered figures:

* Section 2.1 — "a steady reduction on the number of active ADSL users
  and an increase in FTTH installations" (churn and technology upgrades);
* Section 3.1 — "many different subscribers present days of heavy usage,
  often alternating between days of light and heavy usage".

Both are measurable from the per-subscriber day rows; this module
computes them so the claims can be asserted instead of eyeballed.
"""

from __future__ import annotations

import datetime
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analytics.activity import SubscriberDay
from repro.analytics.timeseries import Month, MonthlySeries
from repro.synthesis.population import Technology

GB = 1_000_000_000


def observed_subscribers(
    days: Iterable[SubscriberDay],
    months: List[Month],
    technology: Technology,
) -> MonthlySeries:
    """Mean daily count of observed subscribers per month, one technology."""
    per_day: Dict[datetime.date, int] = {}
    for entry in days:
        if entry.technology is technology:
            per_day[entry.day] = per_day.get(entry.day, 0) + 1
    samples = [(day, float(count)) for day, count in per_day.items()]
    from repro.analytics.timeseries import monthly_mean

    return monthly_mean(samples, months)


def churn_trend(
    days: Iterable[SubscriberDay], months: List[Month]
) -> Dict[Technology, Optional[float]]:
    """End-over-start ratio of observed subscribers per technology.

    The paper's expectation: ADSL < 1 (decline), FTTH > 1 (growth).
    """
    days = list(days)
    trends: Dict[Technology, Optional[float]] = {}
    for technology in Technology:
        series = observed_subscribers(days, months, technology)
        defined = series.defined()
        if len(defined) < 2 or defined[0][1] == 0:
            trends[technology] = None
            continue
        first = sum(value for _, value in defined[:3]) / min(3, len(defined))
        last = sum(value for _, value in defined[-3:]) / min(3, len(defined))
        trends[technology] = last / first if first else None
    return trends


@dataclass(frozen=True)
class HeavyDayStats:
    """Section 3.1's alternation claim, quantified."""

    threshold_bytes: int
    subscribers_observed: int
    subscribers_with_heavy_days: int
    mean_heavy_fraction: float  # among subscribers with ≥1 heavy day
    alternation_rate: float  # P(next observed day is light | heavy day)

    @property
    def heavy_subscriber_share(self) -> float:
        if self.subscribers_observed == 0:
            return 0.0
        return self.subscribers_with_heavy_days / self.subscribers_observed


def heavy_day_stats(
    days: Iterable[SubscriberDay],
    threshold_bytes: int = GB,
    active_only: bool = True,
) -> HeavyDayStats:
    """Quantify who has heavy (>threshold download) days and whether they
    alternate with light days rather than clustering."""
    by_subscriber: Dict[int, List[Tuple[datetime.date, bool]]] = {}
    for entry in days:
        if active_only and not entry.active:
            continue
        by_subscriber.setdefault(entry.subscriber_id, []).append(
            (entry.day, entry.bytes_down > threshold_bytes)
        )
    with_heavy: Set[int] = set()
    heavy_fractions: List[float] = []
    transitions = 0
    alternations = 0
    for subscriber_id, entries in by_subscriber.items():
        entries.sort(key=lambda pair: pair[0])
        flags = [heavy for _, heavy in entries]
        if any(flags):
            with_heavy.add(subscriber_id)
            heavy_fractions.append(sum(flags) / len(flags))
        for previous, current in zip(flags, flags[1:]):
            if previous:
                transitions += 1
                if not current:
                    alternations += 1
    return HeavyDayStats(
        threshold_bytes=threshold_bytes,
        subscribers_observed=len(by_subscriber),
        subscribers_with_heavy_days=len(with_heavy),
        mean_heavy_fraction=(
            math.fsum(heavy_fractions) / len(heavy_fractions)
            if heavy_fractions
            else 0.0
        ),
        alternation_rate=alternations / transitions if transitions else 0.0,
    )
