"""Traffic concentration: "The Internet of few giants" (Section 6.2).

The paper confirms Labovitz et al.'s finding that Internet traffic is
concentrating around a handful of big players.  This module quantifies
it from the measured mix: the share of total bytes attributable to the
giants' service families over time, plus a standard concentration index
(HHI) over the per-service byte distribution.
"""

from __future__ import annotations

import datetime
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analytics.timeseries import Month, MonthlySeries, monthly_mean
from repro.services import catalog
from repro.synthesis.flowgen import DailyUsage

#: The giants' service families, as the paper groups them.
GIANT_FAMILIES: Mapping[str, Tuple[str, ...]] = {
    "Google": (catalog.GOOGLE, catalog.YOUTUBE),
    "Facebook": (catalog.FACEBOOK, catalog.INSTAGRAM, catalog.WHATSAPP),
    "Netflix": (catalog.NETFLIX,),
    "Microsoft": (catalog.BING, catalog.SKYPE, catalog.LINKEDIN),
    "Amazon": (catalog.AMAZON,),
}


def _family_of(service: str) -> Optional[str]:
    for family, services in GIANT_FAMILIES.items():
        if service in services:
            return family
    return None


def giant_share_series(
    usage: Iterable[DailyUsage], months: List[Month]
) -> MonthlySeries:
    """Monthly share of total bytes served by the giants' families."""
    per_day_total: Dict[datetime.date, int] = {}
    per_day_giant: Dict[datetime.date, int] = {}
    for row in usage:
        volume = row.bytes_down + row.bytes_up
        per_day_total[row.day] = per_day_total.get(row.day, 0) + volume
        if _family_of(row.service) is not None:
            per_day_giant[row.day] = per_day_giant.get(row.day, 0) + volume
    samples = [
        (day, per_day_giant.get(day, 0) / total)
        for day, total in per_day_total.items()
        if total > 0
    ]
    return monthly_mean(samples, months)


def family_share_series(
    usage: Iterable[DailyUsage], months: List[Month]
) -> Dict[str, MonthlySeries]:
    """Per-family monthly byte shares."""
    usage = list(usage)
    per_day_total: Dict[datetime.date, int] = {}
    per_day_family: Dict[Tuple[str, datetime.date], int] = {}
    for row in usage:
        volume = row.bytes_down + row.bytes_up
        per_day_total[row.day] = per_day_total.get(row.day, 0) + volume
        family = _family_of(row.service)
        if family is not None:
            key = (family, row.day)
            per_day_family[key] = per_day_family.get(key, 0) + volume
    series: Dict[str, MonthlySeries] = {}
    for family in GIANT_FAMILIES:
        samples = [
            (day, per_day_family.get((family, day), 0) / total)
            for day, total in per_day_total.items()
            if total > 0
        ]
        series[family] = monthly_mean(samples, months)
    return series


def herfindahl_index(shares: Sequence[float]) -> float:
    """HHI over a share distribution (0 = dispersed, 1 = monopoly)."""
    total = sum(shares)
    if total <= 0:
        return 0.0
    return math.fsum((share / total) ** 2 for share in shares)


def service_hhi_series(
    usage: Iterable[DailyUsage], months: List[Month]
) -> MonthlySeries:
    """Monthly HHI of the per-service byte distribution.

    A rising HHI is the concentration claim in one number.
    """
    volumes: Dict[Tuple[datetime.date, str], int] = {}
    for row in usage:
        key = (row.day, row.service)
        volumes[key] = volumes.get(key, 0) + row.bytes_down + row.bytes_up
    per_day: Dict[datetime.date, List[int]] = {}
    for (day, _service), volume in volumes.items():
        per_day.setdefault(day, []).append(volume)
    samples = [
        (day, herfindahl_index(day_volumes)) for day, day_volumes in per_day.items()
    ]
    return monthly_mean(samples, months)


def giant_share_from_stats(
    stats: Iterable, months: List[Month]
) -> MonthlySeries:
    """Giant share computed from per-(day, service) stats cells.

    Accepts :class:`~repro.analytics.popularity.DailyServiceStats`
    (``bytes_total`` per cell), the reduced form a study run retains.
    """
    per_day_total: Dict[datetime.date, int] = {}
    per_day_giant: Dict[datetime.date, int] = {}
    for cell in stats:
        per_day_total[cell.day] = per_day_total.get(cell.day, 0) + cell.bytes_total
        if _family_of(cell.service) is not None:
            per_day_giant[cell.day] = per_day_giant.get(cell.day, 0) + cell.bytes_total
    samples = [
        (day, per_day_giant.get(day, 0) / total)
        for day, total in per_day_total.items()
        if total > 0
    ]
    return monthly_mean(samples, months)


def hhi_from_stats(stats: Iterable, months: List[Month]) -> MonthlySeries:
    """Per-service HHI computed from stats cells (summed over techs)."""
    volumes: Dict[Tuple[datetime.date, str], int] = {}
    for cell in stats:
        key = (cell.day, cell.service)
        volumes[key] = volumes.get(key, 0) + cell.bytes_total
    per_day: Dict[datetime.date, List[int]] = {}
    for (day, _service), volume in volumes.items():
        per_day.setdefault(day, []).append(volume)
    samples = [
        (day, herfindahl_index(day_volumes)) for day, day_volumes in per_day.items()
    ]
    return monthly_mean(samples, months)


@dataclass(frozen=True)
class ConcentrationSummary:
    """Start-vs-end concentration comparison."""

    giant_share_start: float
    giant_share_end: float
    hhi_start: float
    hhi_end: float

    @property
    def concentrating(self) -> bool:
        return (
            self.giant_share_end > self.giant_share_start
            and self.hhi_end >= self.hhi_start * 0.95
        )


def summarize(
    giant_series: MonthlySeries, hhi_series: MonthlySeries
) -> Optional[ConcentrationSummary]:
    """Reduce the two series to the start/end comparison."""
    giants = giant_series.defined()
    hhi = hhi_series.defined()
    if len(giants) < 2 or len(hhi) < 2:
        return None

    def edge(values, first: bool) -> float:
        chunk = values[:3] if first else values[-3:]
        return sum(value for _, value in chunk) / len(chunk)

    return ConcentrationSummary(
        giant_share_start=edge(giants, True),
        giant_share_end=edge(giants, False),
        hhi_start=edge(hhi, True),
        hhi_end=edge(hhi, False),
    )
