"""Server-distance analytics from per-flow RTT (Fig. 10).

"For all TCP connections to a given service, we extract the minimum
per-flow RTT, and plot the corresponding CDF... we focus on the body of
the distribution of minimum per-flow RTT, ignoring samples in the tails."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Union

from repro.analytics.distributions import EmpiricalDistribution
from repro.services.rules import RuleSet
from repro.tstat.flow import FlowRecord, Transport
from repro.tstat.flowbatch import TCP_CODE, BatchServiceView, FlowBatch

#: RTT analytics accept rows or a columnar batch (identical results).
Flows = Union[FlowBatch, Iterable[FlowRecord]]


def min_rtt_mask(
    flows: FlowBatch,
    rules: RuleSet,
    service: str,
    min_samples: int = 1,
    codes: Optional[BatchServiceView] = None,
):
    """Boolean mask of the batch flows :func:`min_rtt_samples` selects.

    Exposed separately so shard partials can tag each sample with its
    flow position (the merged sample list is order-sensitive)."""
    view = codes if codes is not None else flows.service_view(rules)
    return (
        (flows.transport == TCP_CODE)
        & (flows.rtt_samples >= min_samples)
        & view.name_mask(service)
    )


def min_rtt_samples(
    flows: Flows,
    rules: RuleSet,
    service: str,
    min_samples: int = 1,
    codes: Optional[BatchServiceView] = None,
) -> List[float]:
    """Per-flow minimum RTTs (ms) of TCP flows classified to ``service``.

    Classification here is by domain rules alone (``rules.classify``): the
    P2P fallback label never names an RTT-tracked service.  On a batch the
    three filters reduce to one boolean mask over the columns, reusing the
    caller's shared classification when ``codes`` is given.
    """
    if isinstance(flows, FlowBatch):
        mask = min_rtt_mask(flows, rules, service, min_samples, codes)
        return flows.rtt_min[mask].tolist()
    samples = []
    for record in flows:
        if record.transport is not Transport.TCP:
            continue
        if record.rtt.samples < min_samples:
            continue
        if rules.classify(record.server_name) != service:
            continue
        samples.append(record.rtt.min_ms)
    return samples


def rtt_distribution(
    flows: Flows,
    rules: RuleSet,
    service: str,
    trim_tails: float = 0.01,
) -> Optional[EmpiricalDistribution]:
    """The body of the min-RTT distribution for a service.

    ``trim_tails`` removes the given fraction at both ends (queueing and
    processing outliers), as the paper does.
    """
    samples = sorted(min_rtt_samples(flows, rules, service))
    if not samples:
        return None
    cut = int(len(samples) * trim_tails)
    trimmed = samples[cut : len(samples) - cut] if cut else samples
    if not trimmed:
        trimmed = samples
    return EmpiricalDistribution.from_samples(trimmed)


@dataclass(frozen=True)
class RttSummaryStats:
    """Headline distances used in the EXPERIMENTS comparisons."""

    service: str
    flows: int
    median_ms: float
    p10_ms: float
    p90_ms: float
    share_below_1ms: float
    share_below_5ms: float
    share_above_100ms: float

    @classmethod
    def from_distribution(
        cls, service: str, distribution: EmpiricalDistribution
    ) -> "RttSummaryStats":
        return cls(
            service=service,
            flows=len(distribution),
            median_ms=distribution.median,
            p10_ms=distribution.quantile(0.10),
            p90_ms=distribution.quantile(0.90),
            share_below_1ms=distribution.cdf(1.0),
            share_below_5ms=distribution.cdf(5.0),
            share_above_100ms=distribution.ccdf(100.0),
        )


def summarize_services(
    flows: Flows, rules: RuleSet, services: Iterable[str]
) -> Dict[str, RttSummaryStats]:
    """RTT summaries for several services over one flow set."""
    summaries = {}
    for service in services:
        distribution = rtt_distribution(flows, rules, service)
        if distribution is not None:
            summaries[service] = RttSummaryStats.from_distribution(
                service, distribution
            )
    return summaries
